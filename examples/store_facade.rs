//! The `Store` facade end to end: one generic workload function runs
//! unchanged over a single cluster and over a sharded multi-cluster
//! deployment — the topology is a builder axis, not an API fork.
//!
//! Demonstrates the three layers of the public API:
//!
//! * `StoreBuilder` — fluent construction with named profiles and
//!   validation at `build()` time;
//! * `Store` — the unified data plane (typed keys, borrowed values,
//!   blocking + pipelined + non-blocking submission);
//! * `Admin` — the consolidated control plane (liveness, metrics, online
//!   repair).
//!
//! Run with: `cargo run --example store_facade`

use lds_cluster::api::{ObjectId, ServerRef, Store, StoreBuilder, StoreError, StoreHandle};
use lds_core::backend::BackendKind;

/// A mixed workload written ONCE against the `Store` trait: pipelined
/// writes, a non-blocking burst that respects backpressure, and blocking
/// read-back. Works identically over any topology.
fn run_workload<S: Store>(client: &mut S, keys: u64) -> usize {
    // Pipelined: fill the window, then drain.
    for k in 0..keys {
        client.submit_write(ObjectId(k), format!("pipelined value {k}").as_bytes());
    }
    let completed = client.wait_all().expect("pipelined writes complete").len();

    // Non-blocking: submit as long as the pipeline accepts, never queue.
    let mut accepted = 0;
    for k in 0..keys {
        match client.try_submit_read(ObjectId(k)) {
            Ok(_) => accepted += 1,
            Err(StoreError::WouldBlock) => break, // pipeline full: back off
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    client.wait_all().expect("burst reads complete");

    // Blocking: read-your-writes on every key.
    for k in 0..keys {
        assert_eq!(
            client.read(ObjectId(k)).expect("read completes"),
            format!("pipelined value {k}").into_bytes()
        );
    }
    completed + accepted
}

fn demo(label: &str, store: &StoreHandle) {
    println!(
        "[{label}] topology = {:?}, backend = {}, n1 = {}, n2 = {}",
        store.topology(),
        store.backend(),
        store.params().n1(),
        store.params().n2()
    );

    let mut client = store.client_with_depth(8);
    let ops = run_workload(&mut client, 12);
    println!("[{label}] generic workload completed {ops} operations");

    // Control plane: crash + online repair restores the failure budget.
    let admin = store.admin();
    admin.kill(ServerRef::l2(1)).unwrap();
    assert!(!admin.liveness().all_live());
    let report = admin.repair(ServerRef::l2(1)).expect("online repair");
    println!(
        "[{label}] repaired L2[1]: {} objects, {} B moved (ratio {:.3} of full decode)",
        report.objects,
        report.bytes_total,
        report.bandwidth_ratio()
    );
    assert!(admin.liveness().all_live());

    let metrics = admin.metrics();
    println!(
        "[{label}] metrics: {} clusters, {} live L1 + {} live L2, {} repairs, \
         {} metadata entries",
        metrics.clusters,
        metrics.live_l1,
        metrics.live_l2,
        metrics.repairs_completed,
        metrics.l1_metadata_entries
    );
    store.shutdown();
}

fn main() {
    // The same builder chain, differing only in the topology axis.
    let single = StoreBuilder::new()
        .failures(1, 1)
        .code(2, 3)
        .backend(BackendKind::Mbr)
        .build()
        .expect("valid configuration");
    demo("single", &single);

    let sharded = StoreBuilder::new()
        .failures(1, 1)
        .code(2, 3)
        .backend(BackendKind::Mbr)
        .high_throughput(2)
        .clusters(2)
        .build()
        .expect("valid configuration");
    demo("sharded", &sharded);

    // Misconfiguration is caught before anything boots.
    match StoreBuilder::new().code(5, 3).build() {
        Err(StoreError::InvalidConfig(reason)) => {
            println!("invalid configuration rejected at build(): {reason}");
        }
        other => panic!("k > d must be rejected, got {other:?}"),
    }
    println!("done.");
}
