//! **Real-network** demo: a 3-daemon `ldsd` deployment on localhost, driven
//! by a network client — the TCP twin of `examples/self_healing.rs`.
//!
//! Three [`ldsd::Daemon`]s start in this one process (so the example needs
//! no orchestration), but nothing about that is a simulation: each daemon
//! binds its own mesh, RPC and HTTP listeners, hosts only its own slice of
//! the L1/L2 servers, and every cross-daemon protocol message is encoded by
//! the versioned wire codec and carried over a real TCP socket. The client
//! talks to the daemons exactly as a remote process would: request/response
//! frames over the RPC port.
//!
//! The run: write through daemon 0 and read through daemon 1 (blocking and
//! pipelined), kill an L2 server hosted by daemon 2 over the admin RPC,
//! keep writing through the degraded window, and wait while daemon 2's
//! self-healing control plane detects and repairs the crash on its own —
//! helper reads crossing the mesh. `ldsd --config` runs the same daemon as
//! a standalone process; see the README's multi-host recipe.
//!
//! Run with: `cargo run --example network_cluster`

use lds_cluster::ObjectId;
use ldsd::{Config, Daemon, NetClient};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Daemons and servers of the demo deployment: f1 = 1, f2 = 1, k = 2,
/// d = 3 → 4 L1 + 5 L2 servers striped over 3 daemons.
const DAEMONS: usize = 3;
const SERVERS: usize = 9;

/// Reserves distinct loopback ports by binding (then dropping) ephemeral
/// listeners.
fn free_ports(count: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..count)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// The TOML config of daemon `index` — the same text an operator would put
/// in `/etc/ldsd.toml` on that daemon's host.
fn config_for(index: usize, mesh: &[u16], rpc: &[u16], http: &[u16]) -> Config {
    let mut text = format!(
        "[daemon]\n\
         listen = \"127.0.0.1:{}\"\n\
         client_listen = \"127.0.0.1:{}\"\n\
         http_listen = \"127.0.0.1:{}\"\n\n\
         [cluster]\n\
         f1 = 1\n\
         f2 = 1\n\
         k = 2\n\
         d = 3\n\
         backend = \"mbr\"\n\n\
         [heal]\n\
         enabled = true\n\
         beat_interval_ms = 15\n\
         suspicion_intervals = 3\n\
         backoff_base_ms = 25\n\n\
         [membership]\n",
        mesh[index], rpc[index], http[index]
    );
    for pid in 0..SERVERS {
        text.push_str(&format!("{pid} = \"127.0.0.1:{}\"\n", mesh[pid % DAEMONS]));
    }
    Config::parse(&text).expect("demo config is valid")
}

fn main() {
    let ports = free_ports(3 * DAEMONS);
    let (mesh, rest) = ports.split_at(DAEMONS);
    let (rpc, http) = rest.split_at(DAEMONS);

    let daemons: Vec<Daemon> = (0..DAEMONS)
        .map(|index| {
            let daemon = Daemon::start(config_for(index, mesh, rpc, http)).expect("daemon starts");
            let scope = daemon.config().host_scope();
            println!(
                "daemon {index}: mesh 127.0.0.1:{}, hosts L1 {:?} and L2 {:?}",
                mesh[index], scope.l1, scope.l2
            );
            daemon
        })
        .collect();

    let connect = |index: usize| {
        NetClient::connect_retry(daemons[index].client_addr(), Duration::from_secs(10))
            .expect("connect to daemon")
    };
    let mut via_d0 = connect(0);
    let mut via_d1 = connect(1);
    let mut via_d2 = connect(2);

    // Blocking ops, crossing daemons: what 0 commits, 1 must read.
    via_d0
        .write(ObjectId(0), b"hello from a real socket")
        .unwrap();
    assert_eq!(
        via_d1.read(ObjectId(0)).unwrap(),
        b"hello from a real socket"
    );
    println!("blocking write via daemon 0, read back via daemon 1");

    // Pipelined burst: ids come back immediately, responses are harvested
    // out of order.
    let ids: Vec<u64> = (0..8u64)
        .map(|obj| {
            via_d0
                .submit_write(ObjectId(1 + obj), &vec![obj as u8; 1024])
                .unwrap()
        })
        .collect();
    for &id in ids.iter().rev() {
        via_d0.wait_written(id).unwrap();
    }
    println!("pipelined 8 writes of 1 KiB through daemon 0");

    // Crash an L2 server hosted by daemon 2 (pid 5 → index 1 in L2). Its
    // own heartbeat monitor must notice; nobody calls repair.
    via_d2.kill(1, 1).unwrap();
    via_d0
        .write(ObjectId(1), b"written while degraded")
        .unwrap();
    println!("killed L2[1] on daemon 2; operations still complete");

    // Daemon 2's liveness RPC is the heartbeat monitor's *suspicion* view:
    // right after the kill it still answers all-live for one detection
    // window, so the heal-wait also checks its repair-success counter.
    let start = Instant::now();
    let deadline = start + Duration::from_secs(30);
    loop {
        let healed = daemons[2].store().admin().metrics().heal_repairs_succeeded >= 1;
        let (live_l1, live_l2) = via_d2.liveness().unwrap();
        if healed && live_l1 == 4 && live_l2 == 5 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "self-heal should finish well within 30 s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "daemon 2 self-healed its server in {:?} — helper reads crossed the mesh",
        start.elapsed()
    );
    assert_eq!(via_d1.read(ObjectId(1)).unwrap(), b"written while degraded");

    // What a Prometheus scrape of daemon 2 would ingest (excerpt).
    let metrics = daemons[2].store().admin().metrics().to_prometheus();
    let excerpt: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("lds_heal") || l.starts_with("lds_transport"))
        .collect();
    println!("--- /metrics excerpt from daemon 2 ---");
    for line in excerpt {
        println!("{line}");
    }

    for daemon in daemons {
        daemon.stop();
    }
    println!("all daemons stopped");
}
