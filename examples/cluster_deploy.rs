//! Running the *same* protocol automata on a real multi-threaded cluster
//! through the `Store` facade: each server is an OS thread, clients issue
//! synchronous reads and writes from several application threads, and a
//! couple of servers are killed along the way via the `Admin` control
//! plane.
//!
//! Run with: `cargo run --example cluster_deploy`

use lds_cluster::api::{ObjectId, ServerRef, Store, StoreBuilder};
use lds_core::backend::BackendKind;

fn main() {
    // 5 edge (L1) servers tolerating 1 crash, 7 back-end (L2) servers
    // tolerating 1 crash; the derived MBR code has k = 3, d = 5.
    let store = StoreBuilder::new()
        .failures(1, 1)
        .code(3, 5)
        .backend(BackendKind::Mbr)
        .build()
        .expect("valid configuration");
    let params = store.params();
    println!(
        "started store: {} L1 threads + {} L2 threads",
        params.n1(),
        params.n2()
    );

    // A few application threads hammer different objects concurrently.
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let store = store.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = store.client();
            for i in 0..5u64 {
                let key = ObjectId(t); // one object per thread
                let value = format!("thread-{t} update-{i}").into_bytes();
                let tag = client.write(key, &value).expect("write completes");
                let read_back = client.read(key).expect("read completes");
                assert!(String::from_utf8_lossy(&read_back).starts_with(&format!("thread-{t}")));
                if i == 2 {
                    println!("thread {t}: wrote update {i} with tag {tag}");
                }
            }
        }));
    }

    // Crash one server in each layer while traffic is flowing.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let admin = store.admin();
    admin.kill(ServerRef::l1(0)).unwrap();
    admin.kill(ServerRef::l2(6)).unwrap();
    println!("killed one L1 server and one L2 server while clients were active");
    assert_eq!(admin.liveness().crashed().len(), 2);

    for handle in handles {
        handle.join().expect("client thread succeeded");
    }

    // Final check from a fresh client.
    let mut checker = store.client();
    for t in 0..3u64 {
        let value = checker.read(ObjectId(t)).expect("read completes");
        println!(
            "object {t}: final value = {:?}",
            String::from_utf8_lossy(&value)
        );
        assert!(String::from_utf8_lossy(&value).contains("update-4"));
    }

    store.shutdown();
    println!("store shut down cleanly");
}
