//! Running the *same* protocol automata on a real multi-threaded cluster:
//! each server is an OS thread, clients issue synchronous reads and writes
//! from several application threads, and a couple of servers are killed along
//! the way.
//!
//! Run with: `cargo run --example cluster_deploy`

use lds_cluster::Cluster;
use lds_core::backend::BackendKind;
use lds_core::params::SystemParams;
use std::sync::Arc;

fn main() {
    let params = SystemParams::for_failures(1, 1, 3, 5).expect("valid parameters");
    let cluster = Cluster::start(params, BackendKind::Mbr);
    println!(
        "started cluster: {} L1 threads + {} L2 threads",
        params.n1(),
        params.n2()
    );

    // A few application threads hammer different objects concurrently.
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let mut client = cluster.client();
            for i in 0..5u64 {
                let obj = t; // one object per thread
                let value = format!("thread-{t} update-{i}").into_bytes();
                let tag = client.write(obj, value).expect("write completes");
                let read_back = client.read(obj).expect("read completes");
                assert!(String::from_utf8_lossy(&read_back).starts_with(&format!("thread-{t}")));
                if i == 2 {
                    println!("thread {t}: wrote update {i} with tag {tag}");
                }
            }
        }));
    }

    // Crash one server in each layer while traffic is flowing.
    std::thread::sleep(std::time::Duration::from_millis(20));
    cluster.kill_l1(0);
    cluster.kill_l2(6);
    println!("killed one L1 server and one L2 server while clients were active");

    for handle in handles {
        handle.join().expect("client thread succeeded");
    }

    // Final check from a fresh client.
    let mut checker = cluster.client();
    for t in 0..3u64 {
        let value = checker.read(t).expect("read completes");
        println!(
            "object {t}: final value = {:?}",
            String::from_utf8_lossy(&value)
        );
        assert!(String::from_utf8_lossy(&value).contains("update-4"));
    }

    cluster.shutdown();
    println!("cluster shut down cleanly");
}
