//! **Self-healing** demo: crashes are detected and repaired by the store
//! itself — no `Admin::repair` call anywhere in this file.
//!
//! With `StoreBuilder::self_heal` the deployment runs a heartbeat monitor
//! (every server's worker shards stamp a beat each time they pass their
//! inbox; stale beats turn into per-server *suspicion*, visible through
//! `Admin::liveness`) and an auto-repair supervisor (suspected crashed
//! servers are regenerated online with jittered exponential backoff, at a
//! bounded number of concurrent repairs). This example kills a server in
//! each layer, writes through the degraded window, and just *waits* for the
//! failure budget to come back — then prints the heal counters and the
//! Prometheus text exposition a metrics endpoint would serve.
//!
//! Runs entirely offline (in-process threads, no network).
//! Run with: `cargo run --example self_healing`

use lds_cluster::api::{Admin, ObjectId, ServerRef, Store, StoreBuilder};
use lds_cluster::HealConfig;
use lds_core::backend::BackendKind;
use std::time::{Duration, Instant};

/// Every server live by engine ground truth AND unsuspected by the
/// heartbeat monitor. Right after a kill, `liveness()` alone still reports
/// all-live for one detection window (the monitor has not missed enough
/// beats yet), so a heal-wait must check both views.
fn fully_healed(admin: &Admin) -> bool {
    let m = admin.metrics();
    let p = (m.live_l1, m.live_l2);
    p == (4, 5) && admin.liveness().all_live()
}

fn main() {
    // Tight tuning so the demo heals in hundreds of milliseconds; the
    // defaults (50 ms beats, 4 missed beats to suspect) suit real runs.
    let store = StoreBuilder::new()
        .failures(1, 1)
        .code(2, 3)
        .backend(BackendKind::Mbr)
        .self_heal_with(HealConfig {
            beat_interval: Duration::from_millis(15),
            suspicion_intervals: 3,
            backoff_base: Duration::from_millis(25),
            ..HealConfig::default()
        })
        .build()
        .expect("valid configuration");
    println!("system parameters: {}", store.params());
    let admin = store.admin();
    let mut client = store.client();

    for obj in 0..8u64 {
        client.write(ObjectId(obj), &vec![obj as u8; 1024]).unwrap();
    }
    println!("wrote 8 objects of 1 KiB");

    // Crash one server per layer. Nobody will repair these by hand.
    admin.kill(ServerRef::l1(0)).unwrap();
    admin.kill(ServerRef::l2(2)).unwrap();
    client
        .write(ObjectId(1), b"written while degraded")
        .unwrap();
    println!("killed L1[0] and L2[2]; operations still complete");

    // Wait for the monitor to suspect them and the supervisor to heal them.
    let start = Instant::now();
    let deadline = start + Duration::from_secs(30);
    while !fully_healed(&admin) {
        assert!(
            Instant::now() < deadline,
            "self-heal should finish well within 30 s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "self-healed in {:?}: no Admin::repair call in this whole example",
        start.elapsed()
    );

    // Budget restored: a second crash round is tolerated (and healed too).
    admin.kill(ServerRef::l2(4)).unwrap();
    assert_eq!(
        client.read(ObjectId(1)).unwrap(),
        b"written while degraded".to_vec()
    );
    while !fully_healed(&admin) {
        assert!(Instant::now() < deadline, "second heal round stalled");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("second crash tolerated and healed");

    // The supervisor counts a success when it reaps the finished repair
    // worker, up to one beat interval after the server is back — poll
    // briefly instead of racing that bookkeeping.
    while admin.metrics().heal_repairs_succeeded < 3 {
        assert!(Instant::now() < deadline, "heal counters never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }
    let metrics = admin.metrics();
    println!(
        "heal counters: {} suspicions, {} attempts, {} succeeded, {} backed off",
        metrics.heal_suspicions_raised,
        metrics.heal_repairs_attempted,
        metrics.heal_repairs_succeeded,
        metrics.heal_repairs_backed_off,
    );
    println!("--- Prometheus exposition (what a /metrics endpoint serves) ---");
    print!("{}", metrics.to_prometheus());

    drop(client);
    store.shutdown();
}
