//! Quickstart: a small two-layer LDS deployment in the deterministic
//! simulator — one writer, one reader, atomicity checked at the end.
//!
//! Run with: `cargo run --example quickstart`

use lds_core::backend::BackendKind;
use lds_core::params::SystemParams;
use lds_workload::runner::{RunnerConfig, SimRunner};

fn main() {
    // A deployment with 5 edge (L1) servers tolerating 1 crash and 7 back-end
    // (L2) servers tolerating 1 crash; the derived MBR code has k = 3, d = 5.
    let params = SystemParams::for_failures(1, 1, 3, 5).expect("valid parameters");
    println!("system parameters: {params}");

    let mut runner = SimRunner::new(
        RunnerConfig::new(params)
            .backend(BackendKind::Mbr)
            .seed(2024)
            // Edge links are fast (tau0 = tau1 = 1); the back-end is 10x away.
            .latencies(1.0, 1.0, 10.0),
    );

    let writer = runner.add_writer();
    let reader = runner.add_reader();

    // A write at t = 0 and a read well after the write finished.
    runner.invoke_write(writer, 0.0, b"hello, layered storage".to_vec());
    runner.invoke_read(reader, 100.0);

    let report = runner.run();

    for op in report.history.operations() {
        let kind = if op.is_write() { "write" } else { "read " };
        println!(
            "{kind} {:<6} tag={} value={:?} latency={:.1}",
            op.op.to_string(),
            op.tag,
            String::from_utf8_lossy(op.value().as_bytes()),
            op.completed_at - op.invoked_at,
        );
    }

    report
        .history
        .check_atomicity()
        .expect("the execution must be atomic");
    println!(
        "atomicity check passed; {} messages exchanged, {} data bytes",
        report.metrics.messages_sent(),
        report.metrics.data_bytes_sent()
    );
    println!(
        "final storage: L1 (temporary) = {} bytes, L2 (permanent, coded) = {} bytes",
        report.l1_storage_bytes, report.l2_storage_bytes
    );
}
