//! Crash-fault tolerance and **online repair** demo, on the `Store` facade.
//!
//! The algorithm tolerates `f1 < n1/2` crashes in the edge layer and
//! `f2 < n2/3` crashes in the back-end layer — but in a long-lived cluster a
//! fixed budget is eventually spent. This example runs the real threaded
//! store, burns part of the budget with crashes, then *repairs* the crashed
//! servers online through the `Admin` control plane: replacements rejoin
//! under the same process ids, regenerate their state from live helpers —
//! the L2 share at MBR repair bandwidth, a `β`-sized helper symbol per
//! object per helper instead of whole elements — and restore the budget, so
//! the store survives a *second* round of failures.
//!
//! Runs entirely offline (in-process threads, no network).
//! Run with: `cargo run --example fault_tolerance`

use lds_cluster::api::{ObjectId, ServerRef, Store, StoreBuilder};
use lds_core::backend::BackendKind;
use lds_workload::generator::ValueGenerator;

fn main() {
    // n1 = 4 (f1 = 1, k = 2), n2 = 7 (f2 = 1, d = 5): MBR repair helpers are
    // 1/α = 1/5 of an element.
    let store = StoreBuilder::new()
        .failures(1, 1)
        .code(2, 5)
        .backend(BackendKind::Mbr)
        .build()
        .expect("valid configuration");
    println!("system parameters: {}", store.params());
    let admin = store.admin();
    let mut client = store.client();
    let mut values = ValueGenerator::new(2048, 5);

    for obj in 0..8u64 {
        client
            .write(ObjectId(obj), values.next_value().as_bytes())
            .unwrap();
    }
    println!("wrote 8 objects of 2 KiB");

    // Spend the failure budget: one crash in each layer.
    admin.kill(ServerRef::l1(0)).unwrap();
    admin.kill(ServerRef::l2(2)).unwrap();
    client
        .write(ObjectId(0), values.next_value().as_bytes())
        .unwrap();
    let readback = client.read(ObjectId(3)).unwrap();
    println!(
        "after f1 + f2 crashes: operations still complete ({}-byte read)",
        readback.len()
    );

    // The budget is spent — repair both servers online. The L2 replacement
    // regenerates every object's coded element from any d live helpers at
    // MBR repair bandwidth; the L1 replacement reconstructs its metadata
    // (committed tags + lists) from its live peers.
    let l2_report = admin.repair(ServerRef::l2(2)).expect("online L2 repair");
    println!(
        "repaired L2 server 2: {} objects from {} helpers, {} B moved \
         (full-decode fallback: {} B — {:.1}x saving)",
        l2_report.objects,
        l2_report.helpers,
        l2_report.bytes_total,
        l2_report.fallback_bytes,
        l2_report.fallback_bytes as f64 / l2_report.bytes_total.max(1) as f64,
    );
    assert!(
        l2_report.bytes_total < l2_report.fallback_bytes,
        "MBR repair must undercut full-object decode"
    );
    let l1_report = admin.repair(ServerRef::l1(0)).expect("online L1 repair");
    println!(
        "repaired L1 server 0: metadata for {} objects from {} peers",
        l1_report.objects, l1_report.helpers,
    );
    assert!(admin.liveness().all_live());
    assert_eq!(admin.metrics().repairs_completed, 2);

    // Budget restored: the store survives a SECOND round of failures — and
    // with them dead, quorums must route through the repaired servers.
    admin.kill(ServerRef::l1(3)).unwrap();
    admin.kill(ServerRef::l2(5)).unwrap();
    client
        .write(ObjectId(4), b"second failure round survived")
        .unwrap();
    assert_eq!(
        client.read(ObjectId(4)).unwrap(),
        b"second failure round survived".to_vec()
    );
    for obj in 0..8u64 {
        assert!(
            !client.read(ObjectId(obj)).unwrap().is_empty(),
            "object {obj} lost after repair + second failures"
        );
    }
    println!("second f1 + f2 crash round tolerated: the repair restored the budget.");

    drop(client);
    store.shutdown();
}
