//! Crash-fault tolerance demo: the algorithm is designed for `f1 < n1/2`
//! crashes in the edge layer and `f2 < n2/3` crashes in the back-end layer.
//! This example crashes the maximum tolerable number of servers in both
//! layers — including some *during* operations — and shows that every
//! operation still completes and the execution stays atomic.
//!
//! Run with: `cargo run --example fault_tolerance`

use lds_core::backend::BackendKind;
use lds_core::params::SystemParams;
use lds_workload::generator::ValueGenerator;
use lds_workload::runner::{RunnerConfig, SimRunner};

fn main() {
    // n1 = 9 (f1 = 2, k = 5), n2 = 10 (f2 = 2, d = 6).
    let params = SystemParams::for_failures(2, 2, 5, 6).expect("valid parameters");
    println!("system parameters: {params}");

    let mut runner = SimRunner::new(
        RunnerConfig::new(params)
            .backend(BackendKind::Mbr)
            .seed(99)
            .latencies(1.0, 1.0, 8.0),
    );
    let writer = runner.add_writer();
    let reader = runner.add_reader();

    // Crash f1 = 2 edge servers and f2 = 2 back-end servers at awkward times:
    // one of each before any operation, one of each in the middle of the run.
    runner.crash_l1(0, 0.0);
    runner.crash_l2(9, 0.0);
    runner.crash_l1(3, 25.0);
    runner.crash_l2(4, 60.0);

    let mut values = ValueGenerator::new(64, 5);
    let mut t = 1.0;
    for _ in 0..4 {
        runner.invoke_write(writer, t, values.next_value());
        runner.invoke_read(reader, t + 2.0);
        t += 60.0; // sequential operations, conservatively spaced
    }

    let report = runner.run();
    println!("completed operations: {}", report.history.len());
    assert_eq!(
        report.history.len(),
        8,
        "all 4 writes and 4 reads must complete"
    );
    report
        .history
        .check_atomicity()
        .expect("execution must stay atomic despite crashes");
    report
        .history
        .check_linearizable_search()
        .expect("the tag-free linearizability search agrees");
    println!("all operations completed and the execution is atomic despite");
    println!("f1 = 2 edge-server crashes and f2 = 2 back-end crashes.");
}
