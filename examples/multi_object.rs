//! Multi-object system (paper §V-A.1): `N` objects implemented by `N`
//! independent LDS instances hosted on the same servers. The example measures
//! how temporary (L1) and permanent (L2) storage behave as `N` grows — the
//! phenomenon plotted in the paper's Fig. 6.
//!
//! Run with: `cargo run --example multi_object`

use lds_core::params::SystemParams;
use lds_workload::multi_object::{run_multi_object, MultiObjectConfig};

fn main() {
    let params = SystemParams::symmetric(10, 1).expect("valid parameters"); // k = d = 8
    println!("system parameters: {params}");
    println!();
    println!(
        "{:>6} {:>14} {:>10} {:>14} {:>10}",
        "N", "peak L1", "L1 bound", "final L2", "L2 bound"
    );

    for objects in [1usize, 2, 4, 8, 16] {
        let config = MultiObjectConfig {
            params,
            objects,
            concurrent_writers: 2,
            writes_per_writer: objects.max(2),
            value_size: 2048,
            mu: 10.0,
            seed: 3,
        };
        let report = run_multi_object(&config);
        println!(
            "{:>6} {:>14.2} {:>10.2} {:>14.2} {:>10.2}",
            objects,
            report.peak_l1_storage,
            report.l1_bound,
            report.final_l2_storage,
            report.l2_bound
        );
        assert!(report.peak_l1_storage <= report.l1_bound);
    }

    println!();
    println!("Temporary storage in L1 is bounded by the write concurrency (independent of");
    println!("N), while permanent storage in L2 grows linearly with N at ~2/(k+1) per");
    println!("server per object — for large N the back-end dominates, which is the");
    println!("qualitative content of Fig. 6 / Lemma V.5.");
}
