//! Edge-caching scenario from the paper's motivation (§I): when reads are
//! concurrent with writes, the edge layer (L1) serves them directly from its
//! temporary storage and the slow back-end (L2) is never on the read's
//! critical path. When the system is idle, reads regenerate the value from
//! the back-end at Θ(1) communication cost thanks to the MBR code.
//!
//! Run with: `cargo run --example edge_cache`

use lds_core::backend::BackendKind;
use lds_core::params::SystemParams;
use lds_workload::runner::{RunnerConfig, SimRunner};

fn scenario(read_delay: f64) -> (f64, f64) {
    let params = SystemParams::symmetric(10, 1).expect("valid parameters");
    let mut runner = SimRunner::new(
        RunnerConfig::new(params)
            .backend(BackendKind::Mbr)
            .seed(7)
            .latencies(1.0, 1.0, 25.0),
    );
    let writer = runner.add_writer();
    let reader = runner.add_reader();
    let payload = vec![0x5a; 32 * 1024];
    runner.invoke_write(writer, 0.0, payload.clone());
    runner.invoke_read(reader, read_delay);
    let report = runner.run();
    let read = report
        .history
        .operations()
        .iter()
        .find(|o| !o.is_write())
        .expect("read completed")
        .clone();
    let read_latency = read.completed_at - read.invoked_at;
    let read_bytes = report.metrics.data_bytes_for_kind("DATA-RESP")
        + report.metrics.data_bytes_for_kind("SEND-HELPER-ELEM");
    (read_latency, read_bytes as f64 / payload.len() as f64)
}

fn main() {
    // Read arrives while the write is still being offloaded to L2: the edge
    // layer acts as a cache and serves the value immediately.
    let (hot_latency, hot_cost) = scenario(3.0);
    // Read arrives long after the system went idle: the value only exists as
    // coded elements in L2 and must be regenerated.
    let (cold_latency, cold_cost) = scenario(1_000.0);

    println!("edge-cache behaviour (tau1 = 1, tau2 = 25):");
    println!(
        "  concurrent read  : latency = {hot_latency:>7.1}, cost = {hot_cost:>6.2} value units"
    );
    println!(
        "  idle (cold) read : latency = {cold_latency:>7.1}, cost = {cold_cost:>6.2} value units"
    );
    println!();
    println!("The concurrent read never touches the back-end, so its latency only depends");
    println!("on the fast edge links; the cold read pays 2*tau2 to regenerate, but thanks");
    println!("to the MBR code its communication cost stays Θ(1) instead of Θ(n1).");

    assert!(hot_latency < cold_latency);
}
