//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small subset of the `parking_lot` API the workspace uses —
//! non-poisoning [`Mutex`] and [`RwLock`] whose `lock()` / `read()` /
//! `write()` return guards directly — implemented over `std::sync`.
//! Poisoning is handled by recovering the inner guard, matching
//! `parking_lot`'s behaviour of never poisoning.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
