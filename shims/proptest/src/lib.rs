//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, `any::<T>()`,
//! integer / float range strategies, tuple strategies, `collection::vec`,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (failures report the raw
//! inputs), and the value stream is produced by the local `rand` shim. Each
//! test function runs its body `cases` times with independently sampled
//! inputs and panics on the first failure, printing the failing case index.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod test_runner {
    //! Configuration and error types for test execution.

    /// Controls how many random cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

/// A source of random test inputs (a seeded PRNG).
pub struct TestRng {
    rng: SmallRng,
    /// The seed the stream was created from, so failures can report it.
    pub seed: u64,
}

impl TestRng {
    /// Creates a generator. Honors `PROPTEST_SEED` for reproduction;
    /// otherwise derives a seed from the system clock so separate runs
    /// explore different inputs. Failure messages include the seed so any
    /// run can be replayed with `PROPTEST_SEED=<seed>`.
    pub fn from_env() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0x5eed)
            });
        TestRng {
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning several magnitudes, like proptest's default.
        let mantissa = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let scale = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mantissa * 2f64.powi(scale)
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of type `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
    (A / 0, B / 1, C / 2, D / 3, E / 4);
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Anything that can describe the length of a generated `Vec`.
    pub trait SizeRange {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Strategy producing a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual imports for writing property tests.

    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Strategy};
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_env();
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property test {} failed at case {}/{} \
                         (reproduce with PROPTEST_SEED={}): {}",
                        stringify!($name), case + 1, config.cases, rng.seed, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn byte_pairs() -> impl Strategy<Value = (u8, u8)> {
        (any::<u8>(), 1..=255u8).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #[test]
        fn xor_is_self_inverse(a in any::<u8>(), b in any::<u8>()) {
            prop_assert_eq!(a ^ b ^ b, a);
        }

        #[test]
        fn tuple_patterns_bind((a, b) in byte_pairs()) {
            prop_assert!(b >= 1, "b = {}", b);
            let _ = a;
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn early_ok_return_is_allowed(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_cases_accepted(x in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = crate::TestRng::from_env();
        let v = collection::vec(any::<u8>(), 12usize).sample(&mut rng);
        assert_eq!(v.len(), 12);
    }
}
