//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API the workspace uses:
//! [`RngCore`], [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (an
//! xoshiro256++ generator), and the [`Rng`] extension trait with `gen` and
//! `gen_range` over the ranges the simulator and workload generator sample.
//! Deterministic for a given seed, which is all the deterministic simulator
//! requires; the stream differs from the real crate's.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's full output.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(1.0..=3.0);
            assert!((1.0..=3.0).contains(&x));
            let y: usize = rng.gen_range(2usize..5);
            assert!((2..5).contains(&y));
            let z: u8 = rng.gen_range(1..=255u8);
            assert!(z >= 1);
        }
    }

    #[test]
    fn gen_covers_types() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _: u8 = rng.gen();
        let _: u64 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn dyn_rngcore_is_usable_through_a_reference() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0.5..=0.5f64);
        assert_eq!(x, 0.5);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
