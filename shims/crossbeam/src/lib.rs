//! Offline shim for the `crossbeam` crate.
//!
//! Provides the subset of `crossbeam::channel` the workspace uses: an
//! unbounded MPMC channel with cloneable senders and receivers, blocking
//! `recv`, and `recv_timeout`. Implemented with a mutex-protected queue and a
//! condition variable; disconnection semantics (all senders dropped ⇒
//! `Disconnected`) match the real crate.

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Receivers currently blocked in `wait`/`wait_timeout`. Incremented
        /// under the queue lock before waiting, so a sender that pushes and
        /// then reads 0 is guaranteed no receiver was parked at push time —
        /// letting the hot path skip the condvar signal entirely when the
        /// consumer is busy draining (the common case under load).
        waiters: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still empty.
        Timeout,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "receive timed out"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            waiters: AtomicUsize::new(0),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push_back(value);
            drop(queue);
            // Only signal when a receiver is actually parked: `waiters` is
            // incremented under the queue lock before waiting, so reading 0
            // here (after push, which synchronized on that same lock) proves
            // no receiver can be stuck — it will observe the pushed element
            // on its pre-wait check.
            if self.inner.waiters.load(Ordering::Acquire) > 0 {
                self.inner.ready.notify_one();
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::Acquire) == 0
        }

        /// Blocks until a message is available or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                self.inner.waiters.fetch_add(1, Ordering::AcqRel);
                let waited = self.inner.ready.wait(queue);
                self.inner.waiters.fetch_sub(1, Ordering::AcqRel);
                queue = waited.unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Waits at most `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                self.inner.waiters.fetch_add(1, Ordering::AcqRel);
                let waited = self.inner.ready.wait_timeout(queue, remaining);
                self.inner.waiters.fetch_sub(1, Ordering::AcqRel);
                let (guard, result) = waited.unwrap_or_else(|p| p.into_inner());
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    if self.disconnected() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Removes and returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
        }

        /// An iterator over the messages that are in the channel right now;
        /// never blocks. The whole backlog is claimed under one lock, so
        /// draining N messages costs one lock acquisition instead of N
        /// (matches the `crossbeam` API; messages arriving while iterating
        /// are left for the next call).
        pub fn try_iter(&self) -> TryIter<'_, T> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            TryIter {
                drained: std::mem::take(&mut *queue),
                receiver: self,
            }
        }
    }

    /// Iterator returned by [`Receiver::try_iter`]. Dropping it before
    /// exhaustion puts the unconsumed messages back at the front of the
    /// channel (preserving order), like the real crate's lock-per-`next`
    /// implementation would have left them there.
    pub struct TryIter<'a, T> {
        drained: VecDeque<T>,
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.drained.pop_front()
        }
    }

    impl<T> Drop for TryIter<'_, T> {
        fn drop(&mut self) {
            if self.drained.is_empty() {
                return;
            }
            let inner = &self.receiver.inner;
            let mut queue = inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            while let Some(v) = self.drained.pop_back() {
                queue.push_front(v);
            }
            drop(queue);
            // Another receiver may have parked while this iterator held the
            // backlog; wake it, exactly like a send would.
            if inner.waiters.load(Ordering::Acquire) > 0 {
                inner.ready.notify_one();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn timeout_on_empty_channel() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn disconnect_drains_pending_messages_first() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_iter_drains_and_preserves_leftovers() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        // Partially consume, then drop: leftovers must stay in order.
        {
            let mut it = rx.try_iter();
            assert_eq!(it.next(), Some(0));
            assert_eq!(it.next(), Some(1));
        }
        tx.send(5).unwrap();
        let rest: Vec<i32> = rx.try_iter().collect();
        assert_eq!(rest, vec![2, 3, 4, 5]);
        assert!(rx.try_iter().next().is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        t.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
