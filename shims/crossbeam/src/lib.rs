//! Offline shim for the `crossbeam` crate.
//!
//! Provides the subset of `crossbeam::channel` the workspace uses: an
//! unbounded MPMC channel with cloneable senders and receivers, blocking
//! `recv`, and `recv_timeout`. Implemented with a mutex-protected queue and a
//! condition variable; disconnection semantics (all senders dropped ⇒
//! `Disconnected`) match the real crate.

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still empty.
        Timeout,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "receive timed out"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::Acquire) == 0
        }

        /// Blocks until a message is available or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Waits at most `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .inner
                    .ready
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(|p| p.into_inner());
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    if self.disconnected() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Removes and returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn timeout_on_empty_channel() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn disconnect_drains_pending_messages_first() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        t.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
