//! Offline shim for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use: `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is warmed up
//! briefly and then timed over `sample_size` batches; the mean, minimum and
//! throughput are printed as aligned text. If the `CRITERION_JSON`
//! environment variable names a file, one JSON object per benchmark is
//! appended to it — the repository's `BENCH_CODES.json` is produced that way.

use std::fmt;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box as _std_black_box;

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a benchmark's throughput is accounted.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter (typically the input size).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// (total elapsed, total iterations) of the measured samples.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, first warming up and auto-tuning the per-sample
    /// iteration count so each sample runs for roughly a millisecond.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes >= 1 ms.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            iters += iters_per_sample;
        }
        self.result = Some((total, iters));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work one iteration performs, enabling
    /// throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            result: None,
        };
        f(&mut bencher, input);
        self.report(&label, bencher.result);
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            result: None,
        };
        f(&mut bencher);
        self.report(&label, bencher.result);
    }

    fn report(&self, label: &str, result: Option<(Duration, u64)>) {
        let Some((total, iters)) = result else {
            println!("{label:<55} (no measurement)");
            return;
        };
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        let mut line = format!("{label:<55} {:>12.1} ns/iter", mean_ns);
        let mut bytes_per_iter = 0u64;
        if let Some(Throughput::Bytes(bytes)) = self.throughput {
            bytes_per_iter = bytes;
            let gib_s = bytes as f64 / mean_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
            line.push_str(&format!("  {gib_s:>8.3} GiB/s"));
        }
        println!("{line}");
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    f,
                    "{{\"bench\": \"{label}\", \"mean_ns\": {mean_ns:.1}, \
                     \"iters\": {iters}, \"bytes_per_iter\": {bytes_per_iter}}}"
                );
            }
        }
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- group: {name} --");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        group.finish();
    }
}

/// Declares a benchmark group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("xor", 64), &vec![1u8; 64], |b, v| {
            b.iter(|| v.iter().fold(0u8, |a, x| a ^ x))
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick_bench
    }

    #[test]
    fn group_macro_produces_runnable_fn() {
        benches();
    }
}
