//! Property tests for the wire codec: every `LdsMessage` class roundtrips
//! byte-exactly at edge payload sizes, and truncated or corrupted frames
//! decode to errors — never panics.

use lds_codes::share::{HelperData, Share};
use lds_core::messages::{LdsMessage, ReadPayload, RepairPayload};
use lds_core::tag::{ClientId, ObjectId, OpId, Tag};
use lds_core::value::Value;
use lds_core::wire::{
    decode_framed, encode_frame, Frame, Request, Response, WireError, HEADER_LEN,
};
use lds_sim::ProcessId;
use proptest::prelude::*;

/// Number of `LdsMessage` classes the constructor below covers (the PING
/// pseudo-class is transport-only and has no message body).
const CLASSES: usize = 23;

/// Deterministically builds one message of class `class` from generated
/// primitives, exercising every field of every variant. `bytes` lands in
/// whatever payload slot the class has (value, stripe, share, helper), so
/// driving its length through edge sizes exercises the codec's
/// length-prefix handling per class.
fn message_for(class: usize, a: u64, b: u64, bytes: Vec<u8>, flag: bool) -> LdsMessage {
    let obj = ObjectId(a ^ 0x9E37);
    let op = OpId::new(ClientId(b), a);
    let tag = Tag::new(a, ClientId(b ^ 1));
    let layout = flag.then(|| vec![bytes.len()]);
    let share = Share {
        index: (b % 97) as usize,
        data: bytes.clone(),
        layout: layout.clone(),
    };
    let helper = HelperData {
        helper_index: (a % 89) as usize,
        failed_index: (b % 83) as usize,
        data: bytes.clone(),
        layout,
    };
    match class {
        0 => LdsMessage::InvokeWrite {
            obj,
            value: Value::new(bytes),
        },
        1 => LdsMessage::InvokeRead { obj },
        2 => LdsMessage::QueryTag { obj, op },
        3 => LdsMessage::TagResp { obj, op, tag },
        4 => LdsMessage::PutData {
            obj,
            op,
            tag,
            value: Value::new(bytes),
        },
        5 => LdsMessage::PutStripe {
            obj,
            op,
            tag,
            seq: (a % 7) as u32,
            count: (a % 7 + 1) as u32,
            stripe: Value::new(bytes),
        },
        6 => LdsMessage::AckPutData { obj, op, tag },
        7 => LdsMessage::BcastSend {
            obj,
            tag,
            origin: ProcessId(b as usize % 1024),
        },
        8 => LdsMessage::BcastDeliver {
            obj,
            tag,
            origin: ProcessId(a as usize % 1024),
        },
        9 => LdsMessage::QueryCommTag { obj, op },
        10 => LdsMessage::CommTagResp { obj, op, tag },
        11 => LdsMessage::QueryData { obj, op, treq: tag },
        12 => LdsMessage::DataResp {
            obj,
            op,
            tag: flag.then_some(tag),
            payload: match a % 3 {
                0 => ReadPayload::Value(Value::new(bytes)),
                1 => ReadPayload::Coded(share),
                _ => ReadPayload::None,
            },
        },
        13 => LdsMessage::PutTag { obj, op, tag },
        14 => LdsMessage::AckPutTag { obj, op },
        15 => LdsMessage::WriteCodeElem {
            obj,
            tag,
            element: share,
        },
        16 => LdsMessage::WriteCodeStripe {
            obj,
            tag,
            seq: (b % 5) as u32,
            count: (b % 5 + 1) as u32,
            part: share,
        },
        17 => LdsMessage::AckCodeElem { obj, tag },
        18 => LdsMessage::QueryCodeElem {
            obj,
            reader: ProcessId(a as usize % 1024),
            op,
        },
        19 => LdsMessage::SendHelperElem {
            obj,
            reader: ProcessId(b as usize % 1024),
            op,
            tag,
            helper,
        },
        20 => LdsMessage::RepairHelp {
            obj,
            failed: ProcessId(a as usize % 1024),
        },
        21 => LdsMessage::RepairShare {
            obj,
            payload: if flag {
                RepairPayload::Element {
                    tag,
                    element_len: a,
                    helper,
                }
            } else {
                RepairPayload::Meta {
                    tc: tag,
                    entries: vec![
                        (tag, Some(Value::new(bytes))),
                        (Tag::new(b, ClientId(a)), None),
                    ],
                }
            },
        },
        22 => LdsMessage::RepairDone {
            obj,
            objects: a,
            bytes_by_helper: vec![(ProcessId(b as usize % 1024), a), (ProcessId(7), b)],
            fallback_bytes: b,
        },
        _ => unreachable!("class out of range"),
    }
}

/// Edge payload sizes: empty, tiny, symbol-odd, and around typical stripe
/// boundaries.
const EDGE_SIZES: &[usize] = &[0, 1, 3, 16, 255, 256, 1024, 4096];

#[test]
fn every_class_roundtrips_at_edge_sizes() {
    for class in 0..CLASSES {
        for &size in EDGE_SIZES {
            let payload: Vec<u8> = (0..size).map(|i| (i * 31 + class) as u8).collect();
            for flag in [false, true] {
                let msg = message_for(class, 0xDEAD_BEEF, 0x1234, payload.clone(), flag);
                let frame = Frame::Msg {
                    from: 3,
                    to: 11,
                    msg: msg.clone(),
                };
                let mut buf = Vec::new();
                encode_frame(&frame, &mut buf).unwrap();
                let (decoded, consumed) = decode_framed(&buf).unwrap();
                assert_eq!(consumed, buf.len(), "class {class} size {size}");
                assert_eq!(decoded, frame, "class {class} size {size}");
                // Byte-exact: re-encoding the decoded frame reproduces the
                // original bytes.
                let mut buf2 = Vec::new();
                encode_frame(&decoded, &mut buf2).unwrap();
                assert_eq!(buf, buf2, "class {class} size {size} not byte-stable");
            }
        }
    }
}

#[test]
fn large_payload_roundtrips() {
    // One megabyte through the data-bearing classes.
    let payload = vec![0xA5u8; 1 << 20];
    for class in [0usize, 4, 5, 12, 15, 16, 19, 21] {
        let msg = message_for(class, 1, 2, payload.clone(), true);
        let frame = Frame::Msg {
            from: 0,
            to: 1,
            msg,
        };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf).unwrap();
        let (decoded, _) = decode_framed(&buf).unwrap();
        assert_eq!(decoded, frame, "class {class}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Any generated message of any class survives encode → decode →
    /// re-encode byte-exactly.
    #[test]
    fn random_messages_roundtrip(
        class in 0usize..CLASSES,
        a in any::<u64>(),
        b in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
        flag in any::<bool>(),
    ) {
        let msg = message_for(class, a, b, bytes, flag);
        let frame = Frame::Msg { from: a % 64, to: b % 64, msg };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf).unwrap();
        let (decoded, consumed) = decode_framed(&buf).unwrap();
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(&decoded, &frame);
        let mut buf2 = Vec::new();
        encode_frame(&decoded, &mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }

    /// Every strict prefix of a valid frame decodes to `Truncated` — never
    /// a panic, never a bogus success.
    #[test]
    fn truncated_frames_error(
        class in 0usize..CLASSES,
        a in any::<u64>(),
        b in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<u64>(),
    ) {
        let msg = message_for(class, a, b, bytes, false);
        let frame = Frame::Msg { from: 1, to: 2, msg };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf).unwrap();
        let cut = (cut as usize) % buf.len();
        prop_assert_eq!(decode_framed(&buf[..cut]), Err(WireError::Truncated));
    }

    /// Flipping any single byte of a valid frame never panics the decoder:
    /// it either still decodes (a payload byte changed) or returns a
    /// `WireError`.
    #[test]
    fn corrupted_frames_never_panic(
        class in 0usize..CLASSES,
        a in any::<u64>(),
        b in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        pos in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let msg = message_for(class, a, b, bytes, true);
        let frame = Frame::Msg { from: 1, to: 2, msg };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf).unwrap();
        let pos = (pos as usize) % buf.len();
        buf[pos] ^= xor;
        // Corrupting the length prefix may announce more bytes than exist
        // (Truncated), fewer (TrailingBytes), or an oversize length; body
        // corruption may hit a discriminant. All must return, not panic.
        let _ = decode_framed(&buf);
    }

    /// RPC frames roundtrip for every request/response shape.
    #[test]
    fn rpc_frames_roundtrip(
        id in any::<u64>(),
        which in 0usize..6,
        obj in any::<u64>(),
        idx in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let req = match which {
            0 => Request::Write { obj: ObjectId(obj), value: bytes.clone() },
            1 => Request::Read { obj: ObjectId(obj) },
            2 => Request::Kill { layer: (idx % 2) as u8, index: idx },
            3 => Request::Repair { layer: (idx % 2) as u8, index: idx },
            4 => Request::Liveness,
            _ => Request::Shutdown,
        };
        let resp = match which {
            0 => Response::Written { tag: Tag::new(obj, ClientId(idx)) },
            1 => Response::Value { bytes: bytes.clone() },
            2 => Response::Killed,
            3 => Response::Repaired { objects: idx },
            4 => Response::Liveness { live_l1: obj, live_l2: idx },
            _ => Response::Error { message: format!("err {idx}") },
        };
        for frame in [Frame::Request { id, req }, Frame::Response { id, resp }] {
            let mut buf = Vec::new();
            encode_frame(&frame, &mut buf).unwrap();
            let (decoded, consumed) = decode_framed(&buf).unwrap();
            prop_assert_eq!(consumed, buf.len());
            prop_assert_eq!(decoded, frame);
        }
    }
}

#[test]
fn unknown_class_is_an_error() {
    let frame = Frame::Msg {
        from: 0,
        to: 1,
        msg: LdsMessage::InvokeRead { obj: ObjectId(0) },
    };
    let mut buf = Vec::new();
    encode_frame(&frame, &mut buf).unwrap();
    // The class byte sits after header + kind + from + to.
    let class_at = HEADER_LEN + 1 + 8 + 8;
    for bad in [23u8, 42, 255] {
        let mut corrupt = buf.clone();
        corrupt[class_at] = bad;
        assert_eq!(
            decode_framed(&corrupt),
            Err(WireError::UnknownClass { class: bad })
        );
    }
}
