//! The versioned, length-prefixed binary wire codec for the real-network
//! transport and the `ldsd` daemon RPC plane.
//!
//! Everything that crosses a TCP link — protocol traffic between daemons,
//! liveness pings, and the client RPC plane — travels as one [`Frame`]:
//!
//! ```text
//!   ┌──────────────┬───────────────┬──────────────────────────────┐
//!   │ len: u32 LE  │ kind: u8      │ body (len − 1 bytes)         │
//!   └──────────────┴───────────────┴──────────────────────────────┘
//!     length of           frame        kind-specific fields,
//!     kind + body         tag          little-endian throughout
//! ```
//!
//! * Every integer is **little-endian**. `usize` fields travel as `u64`.
//! * Byte strings and vectors carry a `u32` length/count prefix.
//! * `Option<T>` is a `u8` flag (0 = `None`, 1 = `Some`) followed by `T`.
//! * An [`LdsMessage`] body starts with its [`LdsMessage::class_index`] as
//!   a `u8`, followed by the variant's fields in declaration order.
//!
//! The codec is hand-rolled (no serde — the build has no crates.io access)
//! and hardened against untrusted input: every read is bounds-checked, a
//! frame longer than [`MAX_FRAME`] is rejected before any allocation, and
//! corrupt length prefixes can never cause an out-of-bounds access or an
//! attacker-sized allocation — decoding returns [`WireError`], never
//! panics.
//!
//! Encoding appends to a caller-owned `Vec<u8>` so writer threads can reuse
//! one buffer per link.

use crate::messages::{LdsMessage, ReadPayload, RepairPayload};
use crate::tag::{ClientId, ObjectId, OpId, Tag};
use crate::value::Value;
use lds_codes::share::{HelperData, Share};
use lds_sim::ProcessId;
use std::fmt;

/// Magic number opening every [`Frame::Hello`] (`b"LDS\x01"` as a LE u32).
pub const WIRE_MAGIC: u32 = 0x0153_444C;

/// Wire-format version negotiated in the handshake. Bumped on any breaking
/// change to the frame layout; a peer speaking a different version is
/// rejected at [`Frame::Hello`] time with [`WireError::BadVersion`].
pub const WIRE_VERSION: u16 = 1;

/// Hard cap on one frame's payload (`kind` byte + body), in bytes.
///
/// A corrupt or hostile length prefix above this is rejected *before* any
/// buffer is sized from it. 64 MiB comfortably covers the largest legitimate
/// message (a full coded element of the biggest benchmarked value class).
pub const MAX_FRAME: usize = 64 << 20;

/// Size of the length prefix preceding every frame.
pub const HEADER_LEN: usize = 4;

/// A decoding (or framing) failure. Decoding never panics on untrusted
/// bytes — every malformed input maps to one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the announced structure was complete.
    Truncated,
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversize {
        /// The announced length.
        len: u64,
    },
    /// A `Hello` frame carried the wrong magic number.
    BadMagic {
        /// The magic actually read.
        got: u32,
    },
    /// The peer speaks a different wire-format version.
    BadVersion {
        /// The version actually read.
        got: u16,
    },
    /// Unknown frame kind tag.
    UnknownFrame {
        /// The kind byte actually read.
        kind: u8,
    },
    /// Unknown [`LdsMessage`] class index.
    UnknownClass {
        /// The class byte actually read.
        class: u8,
    },
    /// Unknown enum discriminant inside a message body.
    UnknownDiscriminant {
        /// Which enum was being decoded.
        what: &'static str,
        /// The discriminant actually read.
        value: u8,
    },
    /// The frame body decoded cleanly but left unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A `Frame::Hello` was expected but another kind arrived.
    ExpectedHello,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversize { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::BadMagic { got } => write!(f, "bad handshake magic {got:#010x}"),
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "peer speaks wire version {got}, this build speaks {WIRE_VERSION}"
                )
            }
            WireError::UnknownFrame { kind } => write!(f, "unknown frame kind {kind}"),
            WireError::UnknownClass { class } => write!(f, "unknown message class {class}"),
            WireError::UnknownDiscriminant { what, value } => {
                write!(f, "unknown {what} discriminant {value}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame body")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::ExpectedHello => write!(f, "expected a Hello handshake frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// A client → daemon RPC request (the network `Store`/`Admin` plane).
///
/// Requests are asynchronous: the client stamps each with a connection-local
/// id ([`Frame::Request`]) and matches the daemon's [`Frame::Response`] by
/// that id, which is what makes pipelined submits a single code path.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Write `value` under `obj` (blocking semantics decided by the client).
    Write {
        /// Target object.
        obj: ObjectId,
        /// The bytes to write.
        value: Vec<u8>,
    },
    /// Read the latest committed value of `obj`.
    Read {
        /// Target object.
        obj: ObjectId,
    },
    /// Crash the server at (`layer`, `index`) — admin crash injection.
    /// Valid only on the daemon hosting that server.
    Kill {
        /// 0 = L1, 1 = L2.
        layer: u8,
        /// Index within the layer.
        index: u64,
    },
    /// Repair the server at (`layer`, `index`) — admin online repair.
    /// Valid only on the daemon hosting that server.
    Repair {
        /// 0 = L1, 1 = L2.
        layer: u8,
        /// Index within the layer.
        index: u64,
    },
    /// Report per-layer liveness as this daemon observes it.
    Liveness,
    /// Ask the daemon to shut down cleanly (teardown path for tests and
    /// drills; a production deployment would gate this).
    Shutdown,
}

/// A daemon → client RPC response, matched to its [`Request`] by id.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// A write committed under `tag`.
    Written {
        /// The tag the write committed under.
        tag: Tag,
    },
    /// A read returned these bytes.
    Value {
        /// The committed value.
        bytes: Vec<u8>,
    },
    /// The kill was injected.
    Killed,
    /// The repair completed, restoring `objects` objects.
    Repaired {
        /// Number of objects restored.
        objects: u64,
    },
    /// Liveness counts as this daemon observes them.
    Liveness {
        /// Live L1 servers.
        live_l1: u64,
        /// Live L2 servers.
        live_l2: u64,
    },
    /// The daemon acknowledges the shutdown and will exit.
    ShuttingDown,
    /// The request failed; `message` is the daemon-side error rendering.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// One unit of traffic on a TCP link (see the [module docs](self) for the
/// byte layout).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Frame {
    /// Connection handshake: magic, version, and the sender's daemon index.
    /// First frame on every link, in both directions.
    Hello {
        /// The sending daemon's index in the membership (or `u64::MAX` for
        /// a client connection).
        daemon: u64,
    },
    /// One routed protocol message: deliver `msg` from `from` to `to` on
    /// the receiving daemon's router.
    Msg {
        /// Sending process id.
        from: u64,
        /// Destination process id.
        to: u64,
        /// The protocol message.
        msg: LdsMessage,
    },
    /// A liveness ping for process `to` (payload-free, but it must cross
    /// the wire so remote heartbeats age realistically).
    Ping {
        /// Destination process id.
        to: u64,
    },
    /// A client RPC request stamped with a connection-local id.
    Request {
        /// Connection-local request id, echoed in the response.
        id: u64,
        /// The request.
        req: Request,
    },
    /// The daemon's response to the request with the same `id`.
    Response {
        /// The id of the request this answers.
        id: u64,
        /// The response.
        resp: Response,
    },
}

// ---------------------------------------------------------------------------
// Frame kinds
// ---------------------------------------------------------------------------

const KIND_HELLO: u8 = 0;
const KIND_MSG: u8 = 1;
const KIND_PING: u8 = 2;
const KIND_REQUEST: u8 = 3;
const KIND_RESPONSE: u8 = 4;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends one length-prefixed frame to `buf`.
///
/// Returns [`WireError::Oversize`] (leaving `buf` exactly as it was) if the
/// encoded frame would exceed [`MAX_FRAME`]; no legitimate message does.
pub fn encode_frame(frame: &Frame, buf: &mut Vec<u8>) -> Result<(), WireError> {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; HEADER_LEN]);
    match frame {
        Frame::Hello { daemon } => {
            buf.push(KIND_HELLO);
            put_u32(buf, WIRE_MAGIC);
            put_u16(buf, WIRE_VERSION);
            put_u64(buf, *daemon);
        }
        Frame::Msg { from, to, msg } => {
            buf.push(KIND_MSG);
            put_u64(buf, *from);
            put_u64(buf, *to);
            encode_message(msg, buf);
        }
        Frame::Ping { to } => {
            buf.push(KIND_PING);
            put_u64(buf, *to);
        }
        Frame::Request { id, req } => {
            buf.push(KIND_REQUEST);
            put_u64(buf, *id);
            encode_request(req, buf);
        }
        Frame::Response { id, resp } => {
            buf.push(KIND_RESPONSE);
            put_u64(buf, *id);
            encode_response(resp, buf);
        }
    }
    let payload = buf.len() - start - HEADER_LEN;
    if payload > MAX_FRAME {
        buf.truncate(start);
        return Err(WireError::Oversize {
            len: payload as u64,
        });
    }
    let len = (payload as u32).to_le_bytes();
    buf[start..start + HEADER_LEN].copy_from_slice(&len);
    Ok(())
}

/// Parses a frame's 4-byte length prefix, validating it against
/// [`MAX_FRAME`]. The returned length is the number of payload bytes that
/// follow the header (kind byte included).
pub fn frame_len(header: [u8; HEADER_LEN]) -> Result<usize, WireError> {
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversize { len: len as u64 });
    }
    if len == 0 {
        // A frame is at least its kind byte.
        return Err(WireError::Truncated);
    }
    Ok(len)
}

/// Decodes one frame body (the bytes *after* the length prefix — kind byte
/// first). The body must be consumed exactly; leftover bytes are an error.
pub fn decode_frame(body: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(body);
    let kind = r.u8()?;
    let frame = match kind {
        KIND_HELLO => {
            let magic = r.u32()?;
            if magic != WIRE_MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            let version = r.u16()?;
            if version != WIRE_VERSION {
                return Err(WireError::BadVersion { got: version });
            }
            Frame::Hello { daemon: r.u64()? }
        }
        KIND_MSG => {
            let from = r.u64()?;
            let to = r.u64()?;
            let msg = decode_message(&mut r)?;
            Frame::Msg { from, to, msg }
        }
        KIND_PING => Frame::Ping { to: r.u64()? },
        KIND_REQUEST => {
            let id = r.u64()?;
            let req = decode_request(&mut r)?;
            Frame::Request { id, req }
        }
        KIND_RESPONSE => {
            let id = r.u64()?;
            let resp = decode_response(&mut r)?;
            Frame::Response { id, resp }
        }
        kind => return Err(WireError::UnknownFrame { kind }),
    };
    r.finish()?;
    Ok(frame)
}

/// Convenience for one-shot decoding of a `[header][body]` byte string (as
/// produced by [`encode_frame`]): returns the frame and the total number of
/// bytes consumed.
pub fn decode_framed(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let len = frame_len(header)?;
    let end = HEADER_LEN + len;
    if bytes.len() < end {
        return Err(WireError::Truncated);
    }
    let frame = decode_frame(&bytes[HEADER_LEN..end])?;
    Ok((frame, end))
}

// ---------------------------------------------------------------------------
// LdsMessage
// ---------------------------------------------------------------------------

/// Appends the body encoding of one protocol message (class byte + fields)
/// to `buf`. The inverse of [`decode_message`] — used by [`Frame::Msg`] and
/// directly testable per class.
pub fn encode_message(msg: &LdsMessage, buf: &mut Vec<u8>) {
    buf.push(msg.class_index() as u8);
    match msg {
        LdsMessage::InvokeWrite { obj, value } => {
            put_u64(buf, obj.0);
            put_value(buf, value);
        }
        LdsMessage::InvokeRead { obj } => put_u64(buf, obj.0),
        LdsMessage::QueryTag { obj, op } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
        }
        LdsMessage::TagResp { obj, op, tag } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
            put_tag(buf, tag);
        }
        LdsMessage::PutData {
            obj,
            op,
            tag,
            value,
        } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
            put_tag(buf, tag);
            put_value(buf, value);
        }
        LdsMessage::PutStripe {
            obj,
            op,
            tag,
            seq,
            count,
            stripe,
        } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
            put_tag(buf, tag);
            put_u32(buf, *seq);
            put_u32(buf, *count);
            put_value(buf, stripe);
        }
        LdsMessage::AckPutData { obj, op, tag } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
            put_tag(buf, tag);
        }
        LdsMessage::BcastSend { obj, tag, origin }
        | LdsMessage::BcastDeliver { obj, tag, origin } => {
            put_u64(buf, obj.0);
            put_tag(buf, tag);
            put_u64(buf, origin.0 as u64);
        }
        LdsMessage::QueryCommTag { obj, op } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
        }
        LdsMessage::CommTagResp { obj, op, tag } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
            put_tag(buf, tag);
        }
        LdsMessage::QueryData { obj, op, treq } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
            put_tag(buf, treq);
        }
        LdsMessage::DataResp {
            obj,
            op,
            tag,
            payload,
        } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
            put_opt_tag(buf, tag);
            match payload {
                ReadPayload::Value(v) => {
                    buf.push(0);
                    put_value(buf, v);
                }
                ReadPayload::Coded(share) => {
                    buf.push(1);
                    put_share(buf, share);
                }
                ReadPayload::None => buf.push(2),
            }
        }
        LdsMessage::PutTag { obj, op, tag } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
            put_tag(buf, tag);
        }
        LdsMessage::AckPutTag { obj, op } => {
            put_u64(buf, obj.0);
            put_op(buf, op);
        }
        LdsMessage::WriteCodeElem { obj, tag, element } => {
            put_u64(buf, obj.0);
            put_tag(buf, tag);
            put_share(buf, element);
        }
        LdsMessage::WriteCodeStripe {
            obj,
            tag,
            seq,
            count,
            part,
        } => {
            put_u64(buf, obj.0);
            put_tag(buf, tag);
            put_u32(buf, *seq);
            put_u32(buf, *count);
            put_share(buf, part);
        }
        LdsMessage::AckCodeElem { obj, tag } => {
            put_u64(buf, obj.0);
            put_tag(buf, tag);
        }
        LdsMessage::QueryCodeElem { obj, reader, op } => {
            put_u64(buf, obj.0);
            put_u64(buf, reader.0 as u64);
            put_op(buf, op);
        }
        LdsMessage::SendHelperElem {
            obj,
            reader,
            op,
            tag,
            helper,
        } => {
            put_u64(buf, obj.0);
            put_u64(buf, reader.0 as u64);
            put_op(buf, op);
            put_tag(buf, tag);
            put_helper(buf, helper);
        }
        LdsMessage::RepairHelp { obj, failed } => {
            put_u64(buf, obj.0);
            put_u64(buf, failed.0 as u64);
        }
        LdsMessage::RepairShare { obj, payload } => {
            put_u64(buf, obj.0);
            match payload {
                RepairPayload::Element {
                    tag,
                    element_len,
                    helper,
                } => {
                    buf.push(0);
                    put_tag(buf, tag);
                    put_u64(buf, *element_len);
                    put_helper(buf, helper);
                }
                RepairPayload::Meta { tc, entries } => {
                    buf.push(1);
                    put_tag(buf, tc);
                    put_u32(buf, entries.len() as u32);
                    for (tag, value) in entries {
                        put_tag(buf, tag);
                        match value {
                            Some(v) => {
                                buf.push(1);
                                put_value(buf, v);
                            }
                            None => buf.push(0),
                        }
                    }
                }
            }
        }
        LdsMessage::RepairDone {
            obj,
            objects,
            bytes_by_helper,
            fallback_bytes,
        } => {
            put_u64(buf, obj.0);
            put_u64(buf, *objects);
            put_u32(buf, bytes_by_helper.len() as u32);
            for (pid, bytes) in bytes_by_helper {
                put_u64(buf, pid.0 as u64);
                put_u64(buf, *bytes);
            }
            put_u64(buf, *fallback_bytes);
        }
    }
}

/// Decodes one protocol message from `r` (class byte first). The inverse of
/// [`encode_message`].
pub fn decode_message(r: &mut Reader<'_>) -> Result<LdsMessage, WireError> {
    let class = r.u8()?;
    let msg = match class {
        0 => LdsMessage::InvokeWrite {
            obj: ObjectId(r.u64()?),
            value: get_value(r)?,
        },
        1 => LdsMessage::InvokeRead {
            obj: ObjectId(r.u64()?),
        },
        2 => LdsMessage::QueryTag {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
        },
        3 => LdsMessage::TagResp {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
            tag: get_tag(r)?,
        },
        4 => LdsMessage::PutData {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
            tag: get_tag(r)?,
            value: get_value(r)?,
        },
        5 => LdsMessage::PutStripe {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
            tag: get_tag(r)?,
            seq: r.u32()?,
            count: r.u32()?,
            stripe: get_value(r)?,
        },
        6 => LdsMessage::AckPutData {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
            tag: get_tag(r)?,
        },
        7 => LdsMessage::BcastSend {
            obj: ObjectId(r.u64()?),
            tag: get_tag(r)?,
            origin: get_pid(r)?,
        },
        8 => LdsMessage::BcastDeliver {
            obj: ObjectId(r.u64()?),
            tag: get_tag(r)?,
            origin: get_pid(r)?,
        },
        9 => LdsMessage::QueryCommTag {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
        },
        10 => LdsMessage::CommTagResp {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
            tag: get_tag(r)?,
        },
        11 => LdsMessage::QueryData {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
            treq: get_tag(r)?,
        },
        12 => {
            let obj = ObjectId(r.u64()?);
            let op = get_op(r)?;
            let tag = get_opt_tag(r)?;
            let payload = match r.u8()? {
                0 => ReadPayload::Value(get_value(r)?),
                1 => ReadPayload::Coded(get_share(r)?),
                2 => ReadPayload::None,
                value => {
                    return Err(WireError::UnknownDiscriminant {
                        what: "ReadPayload",
                        value,
                    })
                }
            };
            LdsMessage::DataResp {
                obj,
                op,
                tag,
                payload,
            }
        }
        13 => LdsMessage::PutTag {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
            tag: get_tag(r)?,
        },
        14 => LdsMessage::AckPutTag {
            obj: ObjectId(r.u64()?),
            op: get_op(r)?,
        },
        15 => LdsMessage::WriteCodeElem {
            obj: ObjectId(r.u64()?),
            tag: get_tag(r)?,
            element: get_share(r)?,
        },
        16 => LdsMessage::WriteCodeStripe {
            obj: ObjectId(r.u64()?),
            tag: get_tag(r)?,
            seq: r.u32()?,
            count: r.u32()?,
            part: get_share(r)?,
        },
        17 => LdsMessage::AckCodeElem {
            obj: ObjectId(r.u64()?),
            tag: get_tag(r)?,
        },
        18 => LdsMessage::QueryCodeElem {
            obj: ObjectId(r.u64()?),
            reader: get_pid(r)?,
            op: get_op(r)?,
        },
        19 => LdsMessage::SendHelperElem {
            obj: ObjectId(r.u64()?),
            reader: get_pid(r)?,
            op: get_op(r)?,
            tag: get_tag(r)?,
            helper: get_helper(r)?,
        },
        20 => LdsMessage::RepairHelp {
            obj: ObjectId(r.u64()?),
            failed: get_pid(r)?,
        },
        21 => {
            let obj = ObjectId(r.u64()?);
            let payload = match r.u8()? {
                0 => RepairPayload::Element {
                    tag: get_tag(r)?,
                    element_len: r.u64()?,
                    helper: get_helper(r)?,
                },
                1 => {
                    let tc = get_tag(r)?;
                    let count = r.count(/* min bytes per entry: tag + flag */ 17)?;
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        let tag = get_tag(r)?;
                        let value = match r.u8()? {
                            0 => None,
                            1 => Some(get_value(r)?),
                            value => {
                                return Err(WireError::UnknownDiscriminant {
                                    what: "Option<Value>",
                                    value,
                                })
                            }
                        };
                        entries.push((tag, value));
                    }
                    RepairPayload::Meta { tc, entries }
                }
                value => {
                    return Err(WireError::UnknownDiscriminant {
                        what: "RepairPayload",
                        value,
                    })
                }
            };
            LdsMessage::RepairShare { obj, payload }
        }
        22 => {
            let obj = ObjectId(r.u64()?);
            let objects = r.u64()?;
            let count = r.count(16)?;
            let mut bytes_by_helper = Vec::with_capacity(count);
            for _ in 0..count {
                let pid = get_pid(r)?;
                let bytes = r.u64()?;
                bytes_by_helper.push((pid, bytes));
            }
            let fallback_bytes = r.u64()?;
            LdsMessage::RepairDone {
                obj,
                objects,
                bytes_by_helper,
                fallback_bytes,
            }
        }
        class => return Err(WireError::UnknownClass { class }),
    };
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Request / Response
// ---------------------------------------------------------------------------

const REQ_WRITE: u8 = 0;
const REQ_READ: u8 = 1;
const REQ_KILL: u8 = 2;
const REQ_REPAIR: u8 = 3;
const REQ_LIVENESS: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    match req {
        Request::Write { obj, value } => {
            buf.push(REQ_WRITE);
            put_u64(buf, obj.0);
            put_bytes(buf, value);
        }
        Request::Read { obj } => {
            buf.push(REQ_READ);
            put_u64(buf, obj.0);
        }
        Request::Kill { layer, index } => {
            buf.push(REQ_KILL);
            buf.push(*layer);
            put_u64(buf, *index);
        }
        Request::Repair { layer, index } => {
            buf.push(REQ_REPAIR);
            buf.push(*layer);
            put_u64(buf, *index);
        }
        Request::Liveness => buf.push(REQ_LIVENESS),
        Request::Shutdown => buf.push(REQ_SHUTDOWN),
    }
}

fn decode_request(r: &mut Reader<'_>) -> Result<Request, WireError> {
    Ok(match r.u8()? {
        REQ_WRITE => Request::Write {
            obj: ObjectId(r.u64()?),
            value: get_bytes(r)?,
        },
        REQ_READ => Request::Read {
            obj: ObjectId(r.u64()?),
        },
        REQ_KILL => Request::Kill {
            layer: r.u8()?,
            index: r.u64()?,
        },
        REQ_REPAIR => Request::Repair {
            layer: r.u8()?,
            index: r.u64()?,
        },
        REQ_LIVENESS => Request::Liveness,
        REQ_SHUTDOWN => Request::Shutdown,
        value => {
            return Err(WireError::UnknownDiscriminant {
                what: "Request",
                value,
            })
        }
    })
}

const RESP_WRITTEN: u8 = 0;
const RESP_VALUE: u8 = 1;
const RESP_KILLED: u8 = 2;
const RESP_REPAIRED: u8 = 3;
const RESP_LIVENESS: u8 = 4;
const RESP_SHUTTING_DOWN: u8 = 5;
const RESP_ERROR: u8 = 6;

fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    match resp {
        Response::Written { tag } => {
            buf.push(RESP_WRITTEN);
            put_tag(buf, tag);
        }
        Response::Value { bytes } => {
            buf.push(RESP_VALUE);
            put_bytes(buf, bytes);
        }
        Response::Killed => buf.push(RESP_KILLED),
        Response::Repaired { objects } => {
            buf.push(RESP_REPAIRED);
            put_u64(buf, *objects);
        }
        Response::Liveness { live_l1, live_l2 } => {
            buf.push(RESP_LIVENESS);
            put_u64(buf, *live_l1);
            put_u64(buf, *live_l2);
        }
        Response::ShuttingDown => buf.push(RESP_SHUTTING_DOWN),
        Response::Error { message } => {
            buf.push(RESP_ERROR);
            put_bytes(buf, message.as_bytes());
        }
    }
}

fn decode_response(r: &mut Reader<'_>) -> Result<Response, WireError> {
    Ok(match r.u8()? {
        RESP_WRITTEN => Response::Written { tag: get_tag(r)? },
        RESP_VALUE => Response::Value {
            bytes: get_bytes(r)?,
        },
        RESP_KILLED => Response::Killed,
        RESP_REPAIRED => Response::Repaired { objects: r.u64()? },
        RESP_LIVENESS => Response::Liveness {
            live_l1: r.u64()?,
            live_l2: r.u64()?,
        },
        RESP_SHUTTING_DOWN => Response::ShuttingDown,
        RESP_ERROR => Response::Error {
            message: String::from_utf8(get_bytes(r)?).map_err(|_| WireError::BadUtf8)?,
        },
        value => {
            return Err(WireError::UnknownDiscriminant {
                what: "Response",
                value,
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

fn put_value(buf: &mut Vec<u8>, value: &Value) {
    put_bytes(buf, value.as_bytes());
}

fn put_tag(buf: &mut Vec<u8>, tag: &Tag) {
    put_u64(buf, tag.z);
    put_u64(buf, tag.writer.0);
}

fn put_opt_tag(buf: &mut Vec<u8>, tag: &Option<Tag>) {
    match tag {
        Some(t) => {
            buf.push(1);
            put_tag(buf, t);
        }
        None => buf.push(0),
    }
}

fn put_op(buf: &mut Vec<u8>, op: &OpId) {
    put_u64(buf, op.client.0);
    put_u64(buf, op.seq);
}

fn put_share(buf: &mut Vec<u8>, share: &Share) {
    put_u64(buf, share.index as u64);
    put_bytes(buf, &share.data);
    put_layout(buf, &share.layout);
}

fn put_helper(buf: &mut Vec<u8>, helper: &HelperData) {
    put_u64(buf, helper.helper_index as u64);
    put_u64(buf, helper.failed_index as u64);
    put_bytes(buf, &helper.data);
    put_layout(buf, &helper.layout);
}

fn put_layout(buf: &mut Vec<u8>, layout: &Option<Vec<usize>>) {
    match layout {
        Some(lens) => {
            buf.push(1);
            put_u32(buf, lens.len() as u32);
            for &len in lens {
                put_u64(buf, len as u64);
            }
        }
        None => buf.push(0),
    }
}

// ---------------------------------------------------------------------------
// Primitive readers
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a frame body. Every accessor returns
/// [`WireError::Truncated`] instead of reading past the end, so decoding
/// hostile input can never panic.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Succeeds only if the buffer was consumed exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32` element count and validates it against the bytes
    /// actually remaining (each element needs at least `min_elem_bytes`),
    /// so a corrupt count can never size an allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(count)
    }
}

fn get_bytes(r: &mut Reader<'_>) -> Result<Vec<u8>, WireError> {
    let len = r.u32()? as usize;
    Ok(r.take(len)?.to_vec())
}

fn get_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    Ok(Value::new(get_bytes(r)?))
}

fn get_tag(r: &mut Reader<'_>) -> Result<Tag, WireError> {
    let z = r.u64()?;
    let writer = ClientId(r.u64()?);
    Ok(Tag { z, writer })
}

fn get_opt_tag(r: &mut Reader<'_>) -> Result<Option<Tag>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_tag(r)?)),
        value => Err(WireError::UnknownDiscriminant {
            what: "Option<Tag>",
            value,
        }),
    }
}

fn get_op(r: &mut Reader<'_>) -> Result<OpId, WireError> {
    let client = ClientId(r.u64()?);
    let seq = r.u64()?;
    Ok(OpId { client, seq })
}

fn get_pid(r: &mut Reader<'_>) -> Result<ProcessId, WireError> {
    Ok(ProcessId(r.u64()? as usize))
}

fn get_share(r: &mut Reader<'_>) -> Result<Share, WireError> {
    let index = r.u64()? as usize;
    let data = get_bytes(r)?;
    let layout = get_layout(r)?;
    Ok(Share {
        index,
        data,
        layout,
    })
}

fn get_helper(r: &mut Reader<'_>) -> Result<HelperData, WireError> {
    let helper_index = r.u64()? as usize;
    let failed_index = r.u64()? as usize;
    let data = get_bytes(r)?;
    let layout = get_layout(r)?;
    Ok(HelperData {
        helper_index,
        failed_index,
        data,
        layout,
    })
}

fn get_layout(r: &mut Reader<'_>) -> Result<Option<Vec<usize>>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let count = r.count(8)?;
            let mut lens = Vec::with_capacity(count);
            for _ in 0..count {
                lens.push(r.u64()? as usize);
            }
            Ok(Some(lens))
        }
        value => Err(WireError::UnknownDiscriminant {
            what: "Option<Vec<usize>>",
            value,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf).unwrap();
        let (decoded, consumed) = decode_framed(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn hello_roundtrips() {
        roundtrip(Frame::Hello { daemon: 2 });
        roundtrip(Frame::Hello { daemon: u64::MAX });
    }

    #[test]
    fn msg_roundtrips() {
        roundtrip(Frame::Msg {
            from: 9,
            to: 1,
            msg: LdsMessage::PutData {
                obj: ObjectId(7),
                op: OpId::new(ClientId(3), 44),
                tag: Tag::new(12, ClientId(3)),
                value: Value::new(vec![1, 2, 3]),
            },
        });
    }

    #[test]
    fn ping_and_rpc_roundtrip() {
        roundtrip(Frame::Ping { to: 5 });
        roundtrip(Frame::Request {
            id: 77,
            req: Request::Write {
                obj: ObjectId(1),
                value: vec![9; 100],
            },
        });
        roundtrip(Frame::Response {
            id: 77,
            resp: Response::Error {
                message: "boom".into(),
            },
        });
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Hello { daemon: 0 }, &mut buf).unwrap();
        // Corrupt the magic (first body byte after header + kind).
        buf[HEADER_LEN + 1] ^= 0xFF;
        assert!(matches!(
            decode_framed(&buf),
            Err(WireError::BadMagic { .. })
        ));
        let mut buf2 = Vec::new();
        encode_frame(&Frame::Hello { daemon: 0 }, &mut buf2).unwrap();
        // Corrupt the version.
        buf2[HEADER_LEN + 5] ^= 0xFF;
        assert!(matches!(
            decode_framed(&buf2),
            Err(WireError::BadVersion { .. })
        ));
    }

    #[test]
    fn oversize_header_is_rejected_before_allocation() {
        let header = ((MAX_FRAME as u32) + 1).to_le_bytes();
        assert!(matches!(frame_len(header), Err(WireError::Oversize { .. })));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Ping { to: 1 }, &mut buf).unwrap();
        // Stretch the announced length by one and append a stray byte.
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) + 1;
        buf[..4].copy_from_slice(&len.to_le_bytes());
        buf.push(0xAB);
        assert!(matches!(
            decode_framed(&buf),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn corrupt_count_cannot_allocate() {
        // A RepairDone claiming u32::MAX helper entries in a tiny frame.
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Msg {
                from: 0,
                to: 1,
                msg: LdsMessage::RepairDone {
                    obj: ObjectId(0),
                    objects: 0,
                    bytes_by_helper: vec![],
                    fallback_bytes: 0,
                },
            },
            &mut buf,
        )
        .unwrap();
        // The entry count sits after header(4) + kind(1) + from(8) + to(8)
        // + class(1) + obj(8) + objects(8).
        let count_at = HEADER_LEN + 1 + 8 + 8 + 1 + 8 + 8;
        buf[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_framed(&buf), Err(WireError::Truncated)));
    }
}
