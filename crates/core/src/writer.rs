//! The writer client automaton — left column of Fig. 1.
//!
//! A write is two phases, both against L1 only:
//!
//! 1. **get-tag**: query all L1 servers for the maximum tag in their lists,
//!    wait for `f1 + k` responses, pick the maximum `t` and form the new tag
//!    `t_w = (t.z + 1, w)`.
//! 2. **put-data**: send `(t_w, v)` to all L1 servers and wait for `f1 + k`
//!    acknowledgments.
//!
//! The write completes without waiting for any interaction with L2 — that is
//! the key latency property of the layered design.
//!
//! # Pipelining
//!
//! The automaton supports several writes in flight at once, keyed by
//! [`OpId`], as long as they target *distinct* objects. Two concurrent writes
//! by the same writer to the same object could mint the same tag `(z + 1, w)`
//! for different values — an atomicity violation — so well-formedness is now
//! *per object*: a new invocation for an object with an outstanding write
//! panics, exactly like the old single-op well-formedness rule.

use crate::membership::Membership;
use crate::messages::{LdsMessage, ProtocolEvent};
use crate::params::SystemParams;
use crate::stripe;
use crate::tag::{ClientId, ObjectId, OpId, Tag};
use crate::value::Value;
use lds_sim::{Context, Process, ProcessId, SimTime};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, PartialEq, Eq)]
enum WritePhase {
    GetTag,
    PutData,
}

#[derive(Debug, Clone)]
struct WriteOp {
    op: OpId,
    obj: ObjectId,
    value: Value,
    invoked_at: SimTime,
    phase: WritePhase,
    tag_responses: HashMap<ProcessId, Tag>,
    tag: Option<Tag>,
    acks: HashSet<ProcessId>,
}

/// The writer client automaton.
///
/// Writers are *well-formed per object*: the harness must not start a new
/// write for an object before the previous write to that object completed (a
/// completion is signalled by a [`ProtocolEvent::WriteCompleted`] event).
/// Writes to distinct objects may be pipelined freely.
pub struct WriterClient {
    id: ClientId,
    params: SystemParams,
    membership: Membership,
    next_seq: u64,
    ops: HashMap<OpId, WriteOp>,
    busy_objects: HashSet<ObjectId>,
    completed: u64,
    /// Values of at least this many bytes are streamed as per-stripe
    /// [`LdsMessage::PutStripe`] messages instead of one monolithic
    /// PUT-DATA. `0` disables striping.
    stripe_threshold: usize,
    /// Stripe size for the striped path.
    stripe_size: usize,
}

impl WriterClient {
    /// Creates a writer with the given client id.
    pub fn new(id: ClientId, params: SystemParams, membership: Membership) -> Self {
        assert_eq!(
            membership.n1(),
            params.n1(),
            "membership/params n1 mismatch"
        );
        WriterClient {
            id,
            params,
            membership,
            next_seq: 0,
            ops: HashMap::new(),
            busy_objects: HashSet::new(),
            completed: 0,
            stripe_threshold: 0,
            stripe_size: stripe::DEFAULT_STRIPE_SIZE,
        }
    }

    /// Enables (or, with `threshold == 0`, disables) the chunk-striped
    /// large-value data path: values of at least `threshold` bytes are split
    /// into `stripe_size`-byte stripes and streamed as
    /// [`LdsMessage::PutStripe`] messages — `Arc`-slice views of the source
    /// value, so no copy is made on the writer side. Must match the L1
    /// servers' [`crate::server1::L1Options`] stripe configuration.
    ///
    /// # Panics
    ///
    /// Panics if `threshold > 0` and `stripe_size == 0`.
    pub fn set_striping(&mut self, threshold: usize, stripe_size: usize) {
        assert!(
            threshold == 0 || stripe_size > 0,
            "stripe_size must be positive when striping is enabled"
        );
        self.stripe_threshold = threshold;
        self.stripe_size = stripe_size;
    }

    /// The writer's client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Whether any write is currently in progress.
    pub fn is_busy(&self) -> bool {
        !self.ops.is_empty()
    }

    /// Number of writes currently in flight.
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }

    /// Whether a write to `obj` is currently in flight.
    pub fn is_object_busy(&self, obj: ObjectId) -> bool {
        self.busy_objects.contains(&obj)
    }

    /// Number of writes completed by this client.
    pub fn completed_ops(&self) -> u64 {
        self.completed
    }

    /// Starts a write of `value` to `obj` and returns its operation id.
    ///
    /// This is the entry point used by pipelined drivers; injecting an
    /// [`LdsMessage::InvokeWrite`] is equivalent.
    ///
    /// # Panics
    ///
    /// Panics if a write to the same object is already in flight (writers
    /// must be well-formed per object).
    pub fn start_write(
        &mut self,
        obj: ObjectId,
        value: Value,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) -> OpId {
        assert!(
            self.busy_objects.insert(obj),
            "writer {} received a new invocation for {} while busy (clients must be well-formed per object)",
            self.id,
            obj
        );
        let op = OpId::new(self.id, self.next_seq);
        self.next_seq += 1;
        self.ops.insert(
            op,
            WriteOp {
                op,
                obj,
                value,
                invoked_at: ctx.now(),
                phase: WritePhase::GetTag,
                tag_responses: HashMap::new(),
                tag: None,
                acks: HashSet::new(),
            },
        );
        ctx.send_all(
            self.membership.l1.iter().copied(),
            LdsMessage::QueryTag { obj, op },
        );
        op
    }

    /// Abandons the in-flight write `op` (used by drivers on timeout).
    /// Returns `true` if the operation existed.
    pub fn cancel(&mut self, op: OpId) -> bool {
        match self.ops.remove(&op) {
            Some(w) => {
                self.busy_objects.remove(&w.obj);
                true
            }
            None => false,
        }
    }

    /// Abandons every in-flight write.
    pub fn cancel_all(&mut self) {
        self.ops.clear();
        self.busy_objects.clear();
    }

    fn on_tag_resp(
        &mut self,
        from: ProcessId,
        op: OpId,
        tag: Tag,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let quorum = self.params.write_quorum();
        let id = self.id;
        let Some(current) = self.ops.get_mut(&op) else {
            return;
        };
        if current.phase != WritePhase::GetTag {
            return;
        }
        current.tag_responses.insert(from, tag);
        if current.tag_responses.len() < quorum {
            return;
        }
        // Quorum reached: create the new tag and move to put-data.
        let max_tag = current
            .tag_responses
            .values()
            .max()
            .copied()
            .unwrap_or_else(Tag::initial);
        let new_tag = max_tag.next(id);
        current.tag = Some(new_tag);
        current.phase = WritePhase::PutData;
        let (obj, op, value) = (current.obj, current.op, current.value.clone());
        if self.stripe_threshold > 0 && value.len() >= self.stripe_threshold {
            // Chunk-striped put-data: stream the value stripe by stripe to
            // all L1 servers. Each stripe is a zero-copy `Arc`-slice view of
            // the source value; the servers reassemble the set under the
            // single tag and then behave exactly as for a monolithic
            // PUT-DATA, so the logical write stays atomic.
            let spans = stripe::stripe_spans(value.len(), self.stripe_size);
            let count = spans.len() as u32;
            for (seq, span) in spans.into_iter().enumerate() {
                let stripe = value.slice(span);
                ctx.send_all(
                    self.membership.l1.iter().copied(),
                    LdsMessage::PutStripe {
                        obj,
                        op,
                        tag: new_tag,
                        seq: seq as u32,
                        count,
                        stripe,
                    },
                );
            }
        } else {
            let msg = LdsMessage::PutData {
                obj,
                op,
                tag: new_tag,
                value,
            };
            ctx.send_all(self.membership.l1.iter().copied(), msg);
        }
    }

    fn on_ack_put_data(
        &mut self,
        from: ProcessId,
        op: OpId,
        tag: Tag,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let quorum = self.params.write_quorum();
        let Some(current) = self.ops.get_mut(&op) else {
            return;
        };
        if current.phase != WritePhase::PutData || current.tag != Some(tag) {
            return;
        }
        current.acks.insert(from);
        if current.acks.len() < quorum {
            return;
        }
        let finished = self.ops.remove(&op).expect("checked above");
        self.busy_objects.remove(&finished.obj);
        self.completed += 1;
        ctx.emit(ProtocolEvent::WriteCompleted {
            op: finished.op,
            obj: finished.obj,
            tag: finished.tag.expect("tag chosen before put-data"),
            value: finished.value,
            invoked_at: finished.invoked_at,
        });
    }
}

impl Process<LdsMessage, ProtocolEvent> for WriterClient {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: LdsMessage,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        match msg {
            LdsMessage::InvokeWrite { obj, value } => {
                self.start_write(obj, value, ctx);
            }
            LdsMessage::TagResp { op, tag, .. } => self.on_tag_resp(from, op, tag, ctx),
            LdsMessage::AckPutData { op, tag, .. } => self.on_ack_put_data(from, op, tag, ctx),
            // Writers ignore everything else (e.g. stray reader messages).
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemParams, Membership) {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap(); // n1=4, quorum 3
        let l1: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (4..9).map(ProcessId).collect();
        (params, Membership::new(l1, l2))
    }

    fn step(
        w: &mut WriterClient,
        from: ProcessId,
        msg: LdsMessage,
    ) -> (Vec<(ProcessId, LdsMessage)>, Vec<ProtocolEvent>) {
        let mut outgoing = Vec::new();
        let mut events = Vec::new();
        let mut ctx = Context::standalone(ProcessId(42), SimTime::ZERO, &mut outgoing, &mut events);
        w.on_message(from, msg, &mut ctx);
        (outgoing, events.into_iter().map(|(_, _, e)| e).collect())
    }

    #[test]
    fn full_write_happy_path() {
        let (params, membership) = setup();
        let mut w = WriterClient::new(ClientId(9), params, membership);
        assert!(!w.is_busy());

        // Invocation broadcasts QUERY-TAG to all 4 L1 servers.
        let (out, _) = step(
            &mut w,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeWrite {
                obj: ObjectId(0),
                value: Value::from("hello"),
            },
        );
        assert_eq!(out.len(), 4);
        assert!(out
            .iter()
            .all(|(_, m)| matches!(m, LdsMessage::QueryTag { .. })));
        assert!(w.is_busy());
        let op = match &out[0].1 {
            LdsMessage::QueryTag { op, .. } => *op,
            _ => unreachable!(),
        };

        // Three TAG-RESP messages (quorum) trigger PUT-DATA with tag (6, 9).
        let mut put_data = Vec::new();
        for (i, z) in [2u64, 5, 3].iter().enumerate() {
            let (out, _) = step(
                &mut w,
                ProcessId(i),
                LdsMessage::TagResp {
                    obj: ObjectId(0),
                    op,
                    tag: Tag::new(*z, ClientId(1)),
                },
            );
            put_data = out;
        }
        assert_eq!(put_data.len(), 4);
        match &put_data[0].1 {
            LdsMessage::PutData { tag, .. } => assert_eq!(*tag, Tag::new(6, ClientId(9))),
            other => panic!("expected PUT-DATA, got {other:?}"),
        }

        // Three ACKs complete the write and emit the completion event.
        let tag = Tag::new(6, ClientId(9));
        let mut events = Vec::new();
        for i in 0..3 {
            let (_, evs) = step(
                &mut w,
                ProcessId(i),
                LdsMessage::AckPutData {
                    obj: ObjectId(0),
                    op,
                    tag,
                },
            );
            events = evs;
        }
        assert_eq!(events.len(), 1);
        match &events[0] {
            ProtocolEvent::WriteCompleted { tag: t, value, .. } => {
                assert_eq!(*t, tag);
                assert_eq!(value.as_bytes(), b"hello");
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(!w.is_busy());
        assert_eq!(w.completed_ops(), 1);
    }

    #[test]
    fn large_value_streams_as_stripes_and_completes() {
        let (params, membership) = setup();
        let mut w = WriterClient::new(ClientId(9), params, membership);
        w.set_striping(100, 64);

        // A small value still goes monolithic.
        let (out, _) = step(
            &mut w,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeWrite {
                obj: ObjectId(0),
                value: Value::new(vec![1u8; 99]),
            },
        );
        let op_small = match &out[0].1 {
            LdsMessage::QueryTag { op, .. } => *op,
            _ => unreachable!(),
        };
        let mut small_out = Vec::new();
        for i in 0..3 {
            let (out, _) = step(
                &mut w,
                ProcessId(i),
                LdsMessage::TagResp {
                    obj: ObjectId(0),
                    op: op_small,
                    tag: Tag::initial(),
                },
            );
            small_out.extend(out);
        }
        assert!(small_out
            .iter()
            .all(|(_, m)| matches!(m, LdsMessage::PutData { .. })));

        // A 200-byte value splits into 4 stripes of ≤64 bytes, each sent to
        // all 4 L1 servers, with no monolithic PUT-DATA.
        let source = Value::new((0u16..200).map(|b| b as u8).collect());
        let (out, _) = step(
            &mut w,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeWrite {
                obj: ObjectId(1),
                value: source.clone(),
            },
        );
        let op = match &out[0].1 {
            LdsMessage::QueryTag { op, .. } => *op,
            _ => unreachable!(),
        };
        let mut put_out = Vec::new();
        for i in 0..3 {
            let (out, _) = step(
                &mut w,
                ProcessId(i),
                LdsMessage::TagResp {
                    obj: ObjectId(1),
                    op,
                    tag: Tag::initial(),
                },
            );
            put_out.extend(out);
        }
        assert_eq!(put_out.len(), 16, "4 stripes × 4 servers");
        assert!(put_out
            .iter()
            .all(|(_, m)| matches!(m, LdsMessage::PutStripe { .. })));
        // One server's stripes reassemble to the source value, and the
        // stripes are zero-copy views of the writer's buffer.
        let mut tag = Tag::initial();
        let mine: Vec<Value> = put_out
            .iter()
            .filter(|(to, _)| *to == ProcessId(0))
            .map(|(_, m)| match m {
                LdsMessage::PutStripe {
                    seq,
                    count,
                    stripe,
                    tag: t,
                    ..
                } => {
                    assert_eq!(*count, 4);
                    tag = *t;
                    (*seq, stripe.clone())
                }
                _ => unreachable!(),
            })
            .collect::<std::collections::BTreeMap<u32, Value>>()
            .into_values()
            .collect();
        assert_eq!(Value::concat(&mine).as_bytes(), source.as_bytes());

        // Acks against the stripes' tag complete the write normally.
        let mut events = Vec::new();
        for i in 0..3 {
            let (_, evs) = step(
                &mut w,
                ProcessId(i),
                LdsMessage::AckPutData {
                    obj: ObjectId(1),
                    op,
                    tag,
                },
            );
            events.extend(evs);
        }
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], ProtocolEvent::WriteCompleted { .. }));
    }

    #[test]
    fn duplicate_and_stale_responses_are_ignored() {
        let (params, membership) = setup();
        let mut w = WriterClient::new(ClientId(2), params, membership);
        let (out, _) = step(
            &mut w,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeWrite {
                obj: ObjectId(0),
                value: Value::from("x"),
            },
        );
        let op = match &out[0].1 {
            LdsMessage::QueryTag { op, .. } => *op,
            _ => unreachable!(),
        };
        // The same server responding repeatedly does not advance the quorum.
        for _ in 0..5 {
            let (out, _) = step(
                &mut w,
                ProcessId(0),
                LdsMessage::TagResp {
                    obj: ObjectId(0),
                    op,
                    tag: Tag::initial(),
                },
            );
            assert!(out.is_empty());
        }
        // A response for an unknown op id is ignored too.
        let other_op = OpId::new(ClientId(2), 99);
        let (out, _) = step(
            &mut w,
            ProcessId(1),
            LdsMessage::TagResp {
                obj: ObjectId(0),
                op: other_op,
                tag: Tag::initial(),
            },
        );
        assert!(out.is_empty());
        // Acks during the get-tag phase are ignored.
        let (out, _) = step(
            &mut w,
            ProcessId(1),
            LdsMessage::AckPutData {
                obj: ObjectId(0),
                op,
                tag: Tag::new(1, ClientId(2)),
            },
        );
        assert!(out.is_empty());
        assert!(w.is_busy());
    }

    #[test]
    #[should_panic(expected = "well-formed")]
    fn overlapping_invocations_panic() {
        let (params, membership) = setup();
        let mut w = WriterClient::new(ClientId(2), params, membership);
        let invoke = LdsMessage::InvokeWrite {
            obj: ObjectId(0),
            value: Value::from("x"),
        };
        step(&mut w, ProcessId::EXTERNAL, invoke.clone());
        step(&mut w, ProcessId::EXTERNAL, invoke);
    }

    #[test]
    fn writes_to_distinct_objects_pipeline() {
        let (params, membership) = setup();
        let mut w = WriterClient::new(ClientId(4), params, membership);
        // Two concurrent writes on different objects are allowed.
        let (out_a, _) = step(
            &mut w,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeWrite {
                obj: ObjectId(0),
                value: Value::from("a"),
            },
        );
        let (out_b, _) = step(
            &mut w,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeWrite {
                obj: ObjectId(1),
                value: Value::from("b"),
            },
        );
        assert_eq!(w.in_flight(), 2);
        assert!(w.is_object_busy(ObjectId(0)));
        assert!(w.is_object_busy(ObjectId(1)));
        let op_a = match &out_a[0].1 {
            LdsMessage::QueryTag { op, .. } => *op,
            _ => unreachable!(),
        };
        let op_b = match &out_b[0].1 {
            LdsMessage::QueryTag { op, .. } => *op,
            _ => unreachable!(),
        };
        assert_ne!(op_a, op_b);

        // Drive both writes to completion in interleaved order (B first).
        for (obj, op) in [(ObjectId(1), op_b), (ObjectId(0), op_a)] {
            let mut tag = Tag::initial();
            for i in 0..3 {
                let (out, _) = step(
                    &mut w,
                    ProcessId(i),
                    LdsMessage::TagResp {
                        obj,
                        op,
                        tag: Tag::initial(),
                    },
                );
                if let Some((_, LdsMessage::PutData { tag: t, .. })) = out.first() {
                    tag = *t;
                }
            }
            let mut events = Vec::new();
            for i in 0..3 {
                let (_, evs) = step(
                    &mut w,
                    ProcessId(i),
                    LdsMessage::AckPutData { obj, op, tag },
                );
                events.extend(evs);
            }
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].object(), obj);
        }
        assert_eq!(w.completed_ops(), 2);
        assert!(!w.is_busy());
    }

    #[test]
    fn cancel_frees_the_object() {
        let (params, membership) = setup();
        let mut w = WriterClient::new(ClientId(5), params, membership);
        let (out, _) = step(
            &mut w,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeWrite {
                obj: ObjectId(0),
                value: Value::from("x"),
            },
        );
        let op = match &out[0].1 {
            LdsMessage::QueryTag { op, .. } => *op,
            _ => unreachable!(),
        };
        assert!(w.cancel(op));
        assert!(!w.cancel(op), "second cancel is a no-op");
        assert!(!w.is_busy());
        // The object is free again: a fresh write may start.
        let (out, _) = step(
            &mut w,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeWrite {
                obj: ObjectId(0),
                value: Value::from("y"),
            },
        );
        assert_eq!(out.len(), 4);
        // Responses to the cancelled op are ignored.
        let (out, _) = step(
            &mut w,
            ProcessId(0),
            LdsMessage::TagResp {
                obj: ObjectId(0),
                op,
                tag: Tag::initial(),
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn tag_grows_monotonically_across_writes() {
        let (params, membership) = setup();
        let mut w = WriterClient::new(ClientId(3), params, membership);
        let mut last_tag = Tag::initial();
        for round in 0..3u64 {
            let (out, _) = step(
                &mut w,
                ProcessId::EXTERNAL,
                LdsMessage::InvokeWrite {
                    obj: ObjectId(0),
                    value: Value::from("v"),
                },
            );
            let op = match &out[0].1 {
                LdsMessage::QueryTag { op, .. } => *op,
                _ => unreachable!(),
            };
            assert_eq!(op.seq, round);
            let mut new_tag = Tag::initial();
            for i in 0..3 {
                let (out, _) = step(
                    &mut w,
                    ProcessId(i),
                    LdsMessage::TagResp {
                        obj: ObjectId(0),
                        op,
                        tag: last_tag,
                    },
                );
                if let Some((_, LdsMessage::PutData { tag, .. })) = out.first() {
                    new_tag = *tag;
                }
            }
            assert!(new_tag > last_tag);
            for i in 0..3 {
                step(
                    &mut w,
                    ProcessId(i),
                    LdsMessage::AckPutData {
                        obj: ObjectId(0),
                        op,
                        tag: new_tag,
                    },
                );
            }
            last_tag = new_tag;
        }
        assert_eq!(w.completed_ops(), 3);
    }
}
