//! The L2 (back-end) server automaton — Fig. 3 of the paper.
//!
//! An L2 server stores, for each object, exactly one `(tag, coded-element)`
//! pair: the element of the code `C2` for the highest tag it has seen. It
//! answers two kinds of requests from L1 servers: `WRITE-CODE-ELEM` (part of
//! an internal `write-to-L2`) and `QUERY-CODE-ELEM` (part of an internal
//! `regenerate-from-L2`, for which it computes MBR helper data).
//!
//! # Online node repair
//!
//! Beyond the paper's static model, the automaton supports **online repair**
//! of a crashed peer (driven by the cluster runtime's repair coordinator):
//!
//! * As a **helper**, a live server answers [`LdsMessage::RepairHelp`] by
//!   streaming one [`LdsMessage::RepairShare`] per stored object — the repair
//!   symbol for the failed server's coded element, computed through
//!   [`BackendCodec::helper_for_l2`] (MBR ships the `β`-sized product-matrix
//!   helper; fallback backends ship their whole element) — terminated by a
//!   [`LdsMessage::RepairDone`].
//! * As a **replacement**, a server constructed with [`L2Server::rebuilding`]
//!   accumulates repair shares, stays *silent* on `QUERY-CODE-ELEM` (it must
//!   not answer reads from incomplete state — for budget purposes it is still
//!   crashed), but absorbs concurrent `WRITE-CODE-ELEM` traffic so in-flight
//!   writes catch it up. Once every announced helper has finished, it
//!   regenerates each object at the highest tag with at least
//!   [`BackendCodec::repair_threshold`] matching helpers — which covers every
//!   completed `write-to-L2` — merges tag-wise with what the live stream
//!   already delivered, reports bandwidth accounting to the coordinator and
//!   goes live. A write whose `WRITE-CODE-ELEM` to the crashed pid was
//!   dropped in the dead window *and* whose tag straddles the helper
//!   snapshots can leave the replacement one tag behind on that object —
//!   which is safe: that write completed with `n2 − f2` acks from the *old*
//!   servers, so even after the restored budget is spent on another crash,
//!   at least `n2 − 2 = 2·f2 + d − 2 ≥ d` live servers still hold the tag
//!   and every regenerate-from-L2 quorum can reach it without the
//!   replacement's copy.

use crate::backend::BackendCodec;
use crate::membership::Membership;
use crate::messages::{LdsMessage, ProtocolEvent, RepairPayload};
use crate::stripe;
use crate::tag::{ObjectId, Tag};
use lds_codes::{HelperData, Share};
use lds_sim::{Context, Process, ProcessId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Tuning options for an L2 server.
#[derive(Debug, Clone, Copy)]
pub struct L2Options {
    /// Whether `WRITE-CODE-ELEM` messages are acknowledged. The acks only
    /// feed the L1 servers' offload counters, whose sole effect is
    /// garbage-collecting the temporary value — with
    /// [`crate::server1::L1Options::cache_committed_value`] enabled that path
    /// is inert, so the high-throughput cluster profile suppresses the
    /// `n2` ack messages per offload entirely. Defaults to `true`
    /// (paper-faithful).
    pub ack_code_elem: bool,
}

impl Default for L2Options {
    fn default() -> Self {
        L2Options {
            ack_code_elem: true,
        }
    }
}

/// In-progress assembly of one striped coded element (the parts of a
/// [`LdsMessage::WriteCodeStripe`] stream for one `(obj, tag, sender)`).
///
/// Keying by the *sender* mirrors the monolithic path, where every offloading
/// L1 server delivers its own `WRITE-CODE-ELEM` and receives its own ack:
/// without `frugal_offload`, all `n1` servers stream the same `(obj, tag)`
/// concurrently, and a shared assembly would interleave their streams —
/// completing once with mixed parts (acking only one sender) and stranding
/// the leftovers forever. Per-sender assemblies each complete after exactly
/// `count` deliveries and remove themselves, so each offloader's
/// `writeCounter` advances and memory stays bounded by the number of
/// in-flight striped offloads. The only early pruning is a monolithic
/// `WRITE-CODE-ELEM` from the same sender for the same tag, which supersedes
/// a partial stream left by the L1 striped-encode fallback.
struct ElementAssembly {
    /// Total number of stripes announced by the stream.
    count: u32,
    /// Parts received so far, keyed by stripe sequence (arrival order free).
    parts: BTreeMap<u32, Share>,
}

/// Accumulated state of a replacement server while it regenerates from its
/// helpers (see the [module docs](self)).
struct L2Rebuild {
    /// `RepairDone` markers to expect (helpers × helper worker shards).
    expected_dones: usize,
    /// Markers received so far.
    dones: usize,
    /// Where to report completion and bandwidth accounting.
    report_to: ProcessId,
    /// Per object, per tag: the helper symbols received.
    pending: HashMap<ObjectId, BTreeMap<Tag, Vec<HelperData>>>,
    /// Repair payload bytes received per helper process.
    bytes_by_helper: BTreeMap<ProcessId, u64>,
    /// What the same payloads would have cost as full stored elements
    /// (accumulated on receipt, so objects that never reach a repair quorum
    /// are accounted consistently on both sides of the comparison).
    fallback_bytes: u64,
}

/// Monotonic observability counters an L2 server accumulates as it runs
/// (the L2 counterpart of `L1ObsCounters`): striped element-assembly
/// lifecycle, read by the hosting runtime between protocol steps.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct L2ObsCounters {
    /// Element assemblies opened (first stripe of a new (object, tag,
    /// sender) stream).
    pub assemblies_opened: u64,
    /// Assemblies that received all their parts and committed an element.
    pub assemblies_completed: u64,
    /// Assemblies discarded: superseded by a monolithic `WRITE-CODE-ELEM`
    /// from the same sender, plus stripe parts rejected unbuffered
    /// (malformed header or stripe-count disagreement).
    pub assemblies_dropped: u64,
}

/// The L2 server automaton.
pub struct L2Server {
    /// This server's index `i` (0-based position in the L2 list; its code
    /// symbol index is `n1 + i`).
    index: usize,
    membership: Membership,
    backend: Arc<dyn BackendCodec>,
    options: L2Options,
    /// Per-object `(tag, coded element)` — exactly one pair per object.
    objects: HashMap<ObjectId, (Tag, Share)>,
    /// Striped elements still being assembled, per object, tag and sender.
    assemblies: HashMap<ObjectId, BTreeMap<(Tag, ProcessId), ElementAssembly>>,
    /// Monotonic counters for the observability registry.
    obs: L2ObsCounters,
    /// `Some` while this server is a replacement regenerating from helpers.
    rebuild: Option<L2Rebuild>,
}

impl L2Server {
    /// Creates the L2 server with layer index `index` and default options.
    pub fn new(index: usize, membership: Membership, backend: Arc<dyn BackendCodec>) -> Self {
        L2Server::with_options(index, membership, backend, L2Options::default())
    }

    /// Creates the L2 server with explicit options.
    pub fn with_options(
        index: usize,
        membership: Membership,
        backend: Arc<dyn BackendCodec>,
        options: L2Options,
    ) -> Self {
        assert!(index < membership.n2(), "L2 index out of range");
        L2Server {
            index,
            membership,
            backend,
            options,
            objects: HashMap::new(),
            assemblies: HashMap::new(),
            obs: L2ObsCounters::default(),
            rebuild: None,
        }
    }

    /// Creates a **replacement** L2 server in rebuilding mode: it stays
    /// silent on `QUERY-CODE-ELEM`, absorbs live `WRITE-CODE-ELEM` traffic,
    /// accumulates [`LdsMessage::RepairShare`]s and goes live once
    /// `expected_dones` [`LdsMessage::RepairDone`] markers have arrived
    /// (reporting its accounting to `report_to`).
    pub fn rebuilding(
        index: usize,
        membership: Membership,
        backend: Arc<dyn BackendCodec>,
        options: L2Options,
        expected_dones: usize,
        report_to: ProcessId,
    ) -> Self {
        let mut server = L2Server::with_options(index, membership, backend, options);
        server.rebuild = Some(L2Rebuild {
            expected_dones,
            dones: 0,
            report_to,
            pending: HashMap::new(),
            bytes_by_helper: BTreeMap::new(),
            fallback_bytes: 0,
        });
        server
    }

    /// This server's index within L2.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the server is still regenerating from helpers (not yet
    /// answering `QUERY-CODE-ELEM`).
    pub fn is_rebuilding(&self) -> bool {
        self.rebuild.is_some()
    }

    /// The tag of the element currently stored for `obj` (the initial tag if
    /// the object was never written).
    pub fn stored_tag(&self, obj: ObjectId) -> Tag {
        self.objects
            .get(&obj)
            .map(|(t, _)| *t)
            .unwrap_or_else(Tag::initial)
    }

    /// Bytes of coded data stored across all objects (the paper's permanent
    /// storage cost, un-normalised). Objects that were never written are
    /// counted with their initial (empty value) element.
    pub fn storage_bytes(&self) -> usize {
        self.objects
            .values()
            .map(|(_, share)| share.data.len())
            .sum()
    }

    /// Number of objects for which this server holds an element.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Striped-element parts currently buffered across all in-progress
    /// assemblies (diagnostics; 0 in steady state).
    pub fn pending_stripe_parts(&self) -> usize {
        self.assemblies
            .values()
            .flat_map(BTreeMap::values)
            .map(|a| a.parts.len())
            .sum()
    }

    /// The server's monotonic observability counters (element-assembly
    /// lifecycle).
    pub fn obs_counters(&self) -> L2ObsCounters {
        self.obs
    }

    /// Stores `element` for `obj` if `tag` is the highest seen, acking the
    /// write when configured — the single commit point shared by the
    /// monolithic `WRITE-CODE-ELEM` and the completion of a striped stream.
    fn commit_element(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        tag: Tag,
        element: Share,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let entry = self.entry(obj);
        if tag > entry.0 {
            *entry = (tag, element);
        }
        if self.options.ack_code_elem {
            ctx.send(from, LdsMessage::AckCodeElem { obj, tag });
        }
    }

    /// Accumulates one stripe of a striped coded element; on the last part,
    /// assembles and commits the element exactly as one `WRITE-CODE-ELEM`
    /// (one ack per logical element *per sender*, so each offloading L1
    /// server's accounting is unchanged). Processed even while rebuilding,
    /// like the monolithic write path.
    #[allow(clippy::too_many_arguments)]
    fn on_write_code_stripe(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        tag: Tag,
        seq: u32,
        count: u32,
        part: Share,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        // A malformed header can never assemble a correct element; dropping
        // it (in release builds too) beats buffering parts that would either
        // complete a corrupt assembly or strand it forever.
        if count == 0 || seq >= count {
            self.obs.assemblies_dropped += 1;
            debug_assert!(false, "malformed stripe header: seq {seq}, count {count}");
            return;
        }
        let by_key = self.assemblies.entry(obj).or_default();
        let opened = !by_key.contains_key(&(tag, from));
        let assembly = by_key
            .entry((tag, from))
            .or_insert_with(|| ElementAssembly {
                count,
                parts: BTreeMap::new(),
            });
        if opened {
            self.obs.assemblies_opened += 1;
        }
        if assembly.count != count {
            // The stripe count is fixed per stream; a disagreeing part would
            // silently assemble a corrupt element, so reject it. (Reachable
            // only through a misbehaving sender — one L1 server encodes one
            // value with one stripe size — hence no debug_assert: tolerated
            // like any other malformed message.)
            self.obs.assemblies_dropped += 1;
            return;
        }
        assembly.parts.insert(seq, part);
        if assembly.parts.len() < assembly.count as usize {
            return;
        }
        self.obs.assemblies_completed += 1;
        let assembly = self
            .assemblies
            .get_mut(&obj)
            .and_then(|by_key| by_key.remove(&(tag, from)))
            .expect("assembly present");
        if let Some(by_key) = self.assemblies.get(&obj) {
            if by_key.is_empty() {
                self.assemblies.remove(&obj);
            }
        }
        let index = self.membership.n1() + self.index;
        let parts: Vec<Share> = assembly.parts.into_values().collect();
        let element = stripe::assemble_share(index, parts);
        self.commit_element(from, obj, tag, element, ctx);
    }

    /// Discards a partial striped assembly for `(obj, tag)` from `sender`:
    /// a monolithic `WRITE-CODE-ELEM` from the same sender for the same tag
    /// supersedes its stream (the L1 striped-encode fallback re-sends the
    /// whole element monolithically after an encode failure mid-stream).
    fn drop_assembly(&mut self, obj: ObjectId, tag: Tag, sender: ProcessId) {
        if let Some(by_key) = self.assemblies.get_mut(&obj) {
            if by_key.remove(&(tag, sender)).is_some() {
                self.obs.assemblies_dropped += 1;
            }
            if by_key.is_empty() {
                self.assemblies.remove(&obj);
            }
        }
    }

    fn entry(&mut self, obj: ObjectId) -> &mut (Tag, Share) {
        let index = self.index;
        let backend = Arc::clone(&self.backend);
        self.objects
            .entry(obj)
            .or_insert_with(|| (Tag::initial(), backend.initial_l2_element(index)))
    }

    /// Helper role: stream repair symbols for every stored object to the
    /// replacement of crashed L2 server `failed`, then an end-of-stream
    /// marker counting them.
    fn on_repair_help(
        &mut self,
        failed: ProcessId,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        if self.rebuild.is_some() {
            return; // a rebuilding server cannot help anyone
        }
        let Some(failed_index) = self.membership.l2_index_of(failed) else {
            return; // not an L2 repair — addressed to the wrong layer
        };
        if failed_index == self.index {
            return;
        }
        let mut sent = 0u64;
        for (&obj, (tag, element)) in &self.objects {
            if *tag == Tag::initial() {
                continue; // replacements start from the initial element anyway
            }
            match stripe::helper_for_l2(&*self.backend, element, self.index, failed_index) {
                Ok(helper) => {
                    ctx.send(
                        failed,
                        LdsMessage::RepairShare {
                            obj,
                            payload: RepairPayload::Element {
                                tag: *tag,
                                element_len: element.data.len() as u64,
                                helper,
                            },
                        },
                    );
                    sent += 1;
                }
                Err(err) => {
                    debug_assert!(false, "repair helper computation failed: {err}");
                }
            }
        }
        // The cluster transport routes RepairDone after the shares on every
        // channel (both are dispatched immediately, in send order).
        ctx.send(
            failed,
            LdsMessage::RepairDone {
                obj: ObjectId(0),
                objects: sent,
                bytes_by_helper: Vec::new(),
                fallback_bytes: 0,
            },
        );
    }

    /// Replacement role: accumulate one helper's repair symbol.
    fn on_repair_share(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        tag: Tag,
        element_len: u64,
        helper: HelperData,
    ) {
        let Some(rebuild) = self.rebuild.as_mut() else {
            return; // stale share for an already-completed repair
        };
        *rebuild.bytes_by_helper.entry(from).or_insert(0) += helper.data.len() as u64;
        rebuild.fallback_bytes += element_len;
        rebuild
            .pending
            .entry(obj)
            .or_default()
            .entry(tag)
            .or_default()
            .push(helper);
    }

    /// Replacement role: count an end-of-stream marker; on the last one,
    /// regenerate everything, report, and go live.
    fn on_repair_done(&mut self, ctx: &mut Context<'_, LdsMessage, ProtocolEvent>) {
        let Some(rebuild) = self.rebuild.as_mut() else {
            return;
        };
        rebuild.dones += 1;
        if rebuild.dones < rebuild.expected_dones {
            return;
        }
        let rebuild = self.rebuild.take().expect("checked above");
        let threshold = self.backend.repair_threshold();
        let mut objects_restored = 0u64;
        for (obj, by_tag) in rebuild.pending {
            // Highest tag with a repair quorum wins: every *completed*
            // write-to-L2 placed its tag on at least `threshold` live
            // helpers, so the regenerated element is at least as fresh as
            // anything a reader could depend on. (An object mid-commit at
            // snapshot time may have its helpers split across two adjacent
            // tags with neither reaching the quorum — it is caught up by
            // the concurrent WRITE-CODE-ELEM stream instead; both its
            // payload bytes and its fallback bytes were already accounted
            // on receipt, so the bandwidth comparison stays consistent.)
            for (tag, mut helpers) in by_tag.into_iter().rev() {
                if helpers.len() < threshold {
                    continue;
                }
                // Deterministic helper subset: plan-cache hits across objects
                // (and across repairs) instead of one inversion per arrival
                // order.
                helpers.sort_by_key(|h| h.helper_index);
                match stripe::regenerate_l2(&*self.backend, self.index, &helpers) {
                    Ok(share) => {
                        objects_restored += 1;
                        let entry = self.entry(obj);
                        // Tag-wise merge with whatever the concurrent
                        // WRITE-CODE-ELEM stream already delivered.
                        if tag > entry.0 {
                            *entry = (tag, share);
                        }
                    }
                    Err(err) => {
                        debug_assert!(false, "L2 regeneration failed: {err}");
                    }
                }
                break;
            }
        }
        ctx.send(
            rebuild.report_to,
            LdsMessage::RepairDone {
                obj: ObjectId(0),
                objects: objects_restored,
                bytes_by_helper: rebuild.bytes_by_helper.into_iter().collect(),
                fallback_bytes: rebuild.fallback_bytes,
            },
        );
    }
}

impl Process<LdsMessage, ProtocolEvent> for L2Server {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: LdsMessage,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        match msg {
            // write-to-L2-resp: keep the element for the highest tag seen.
            // Processed even while rebuilding — this is how a replacement
            // catches up on writes that are in flight during its repair.
            LdsMessage::WriteCodeElem { obj, tag, element } => {
                self.drop_assembly(obj, tag, from);
                self.commit_element(from, obj, tag, element, ctx);
            }
            // Striped write-to-L2: assemble, then commit as one element.
            LdsMessage::WriteCodeStripe {
                obj,
                tag,
                seq,
                count,
                part,
            } => self.on_write_code_stripe(from, obj, tag, seq, count, part, ctx),
            // regenerate-from-L2-resp: compute helper data for the requesting
            // L1 server's code index and send it back with the stored tag.
            LdsMessage::QueryCodeElem { obj, reader, op } => {
                if self.rebuild.is_some() {
                    // A replacement must not answer reads from incomplete
                    // state: for failure-budget purposes it is still crashed.
                    return;
                }
                let Some(l1_index) = self.membership.l1_index_of(from) else {
                    return; // not an L1 server; ignore
                };
                let (tag, element) = self.entry(obj).clone();
                // Stripe-aware: a striped element yields a striped helper.
                match stripe::helper_for_l1(&*self.backend, &element, self.index, l1_index) {
                    Ok(helper) => ctx.send(
                        from,
                        LdsMessage::SendHelperElem {
                            obj,
                            reader,
                            op,
                            tag,
                            helper,
                        },
                    ),
                    Err(err) => {
                        debug_assert!(false, "helper computation failed: {err}");
                    }
                }
            }
            LdsMessage::RepairHelp { failed, .. } => self.on_repair_help(failed, ctx),
            LdsMessage::RepairShare {
                obj,
                payload:
                    RepairPayload::Element {
                        tag,
                        element_len,
                        helper,
                    },
            } => self.on_repair_share(from, obj, tag, element_len, helper),
            LdsMessage::RepairDone { .. } => self.on_repair_done(ctx),
            // Anything else is not addressed to an L2 server.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{make_backend, BackendKind};
    use crate::params::SystemParams;
    use crate::tag::ClientId;
    use crate::value::Value;

    fn setup() -> (Membership, Arc<dyn BackendCodec>) {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap(); // n1=4, n2=5
        let l1: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (4..9).map(ProcessId).collect();
        (
            Membership::new(l1, l2),
            make_backend(BackendKind::Mbr, &params).unwrap(),
        )
    }

    fn step(
        server: &mut L2Server,
        from: ProcessId,
        msg: LdsMessage,
    ) -> Vec<(ProcessId, LdsMessage)> {
        let mut outgoing = Vec::new();
        let mut events = Vec::new();
        let mut ctx = Context::standalone(
            ProcessId(100 + server.index),
            lds_sim::SimTime::ZERO,
            &mut outgoing,
            &mut events,
        );
        server.on_message(from, msg, &mut ctx);
        outgoing
    }

    #[test]
    fn stores_only_the_highest_tag() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(0, membership, Arc::clone(&backend));
        let obj = ObjectId(0);
        let v1 = Value::from("first");
        let v2 = Value::from("second");
        let t1 = Tag::new(1, ClientId(1));
        let t2 = Tag::new(2, ClientId(1));

        let e1 = backend.encode_l2_element(&v1, 0).unwrap();
        let e2 = backend.encode_l2_element(&v2, 0).unwrap();

        // Deliver the higher tag first, then the lower one.
        let out = step(
            &mut s,
            ProcessId(1),
            LdsMessage::WriteCodeElem {
                obj,
                tag: t2,
                element: e2.clone(),
            },
        );
        assert!(matches!(out[0].1, LdsMessage::AckCodeElem { tag, .. } if tag == t2));
        let out = step(
            &mut s,
            ProcessId(1),
            LdsMessage::WriteCodeElem {
                obj,
                tag: t1,
                element: e1,
            },
        );
        // Still acknowledges (the protocol always acks) but keeps t2.
        assert!(matches!(out[0].1, LdsMessage::AckCodeElem { tag, .. } if tag == t1));
        assert_eq!(s.stored_tag(obj), t2);
        assert_eq!(s.storage_bytes(), e2.data.len());
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn striped_stream_assembles_into_one_element_with_one_ack() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(1, membership.clone(), Arc::clone(&backend));
        let obj = ObjectId(2);
        let tag = Tag::new(1, ClientId(1));
        let value = Value::new((0..100u8).collect());
        const STRIPE: usize = 32;

        // Collect the parts for L2 index 1 from the striped encoder.
        let mut pool = lds_codes::BufPool::new();
        let mut parts = Vec::new();
        crate::stripe::encode_elements_striped(&*backend, &value, STRIPE, &mut pool, {
            let parts = &mut parts;
            move |l2, seq, count, part| {
                if l2 == 1 {
                    parts.push((seq, count, part));
                }
            }
        })
        .unwrap();
        assert_eq!(parts.len(), 4);

        // Deliver out of order: only the final part triggers the ack.
        parts.rotate_left(1);
        let mut acks = 0;
        for (i, (seq, count, part)) in parts.into_iter().enumerate() {
            let out = step(
                &mut s,
                membership.l1[0],
                LdsMessage::WriteCodeStripe {
                    obj,
                    tag,
                    seq,
                    count,
                    part,
                },
            );
            if i < 3 {
                assert!(out.is_empty(), "no ack before the stream completes");
                assert!(s.pending_stripe_parts() > 0);
            } else {
                assert!(matches!(out[0].1, LdsMessage::AckCodeElem { tag: t, .. } if t == tag));
                acks += 1;
            }
        }
        assert_eq!(acks, 1, "one logical element, one ack");
        assert_eq!(
            s.pending_stripe_parts(),
            0,
            "assembly removed on completion"
        );
        assert_eq!(s.stored_tag(obj), tag);

        // The stored striped element answers queries with a striped helper
        // that regenerates exactly like the monolithic element's would.
        let out = step(
            &mut s,
            membership.l1[0],
            LdsMessage::QueryCodeElem {
                obj,
                reader: ProcessId(50),
                op: crate::tag::OpId::default(),
            },
        );
        match &out[0].1 {
            LdsMessage::SendHelperElem { helper, .. } => {
                assert!(helper.layout.is_some(), "striped element, striped helper");
            }
            other => panic!("expected helper response, got {other:?}"),
        }
    }

    /// Collects the striped parts addressed to L2 index `l2_index` for
    /// `value` at stripe size `stripe`.
    fn striped_parts(
        backend: &Arc<dyn BackendCodec>,
        value: &Value,
        stripe: usize,
        l2_index: usize,
    ) -> Vec<(u32, u32, Share)> {
        let mut pool = lds_codes::BufPool::new();
        let mut parts = Vec::new();
        crate::stripe::encode_elements_striped(&**backend, value, stripe, &mut pool, {
            let parts = &mut parts;
            move |l2, seq, count, part| {
                if l2 == l2_index {
                    parts.push((seq, count, part));
                }
            }
        })
        .unwrap();
        parts
    }

    #[test]
    fn interleaved_streams_from_two_senders_assemble_independently() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(1, membership.clone(), Arc::clone(&backend));
        let obj = ObjectId(4);
        let tag = Tag::new(2, ClientId(1));
        let value = Value::new((0..100u8).collect());
        let parts = striped_parts(&backend, &value, 32, 1);
        assert_eq!(parts.len(), 4);

        // Without frugal_offload every L1 server offloads, so two senders
        // stream the same (obj, tag) concurrently — interleaved part by
        // part. Each stream must assemble independently and earn its own
        // ack, exactly as two monolithic WRITE-CODE-ELEMs would.
        let senders = [membership.l1[0], membership.l1[1]];
        let mut acks = Vec::new();
        for (seq, count, part) in parts {
            for &sender in &senders {
                let out = step(
                    &mut s,
                    sender,
                    LdsMessage::WriteCodeStripe {
                        obj,
                        tag,
                        seq,
                        count,
                        part: part.clone(),
                    },
                );
                for (to, msg) in out {
                    if matches!(msg, LdsMessage::AckCodeElem { tag: t, .. } if t == tag) {
                        acks.push(to);
                    }
                }
            }
        }
        assert_eq!(acks, senders.to_vec(), "one ack per offloading sender");
        assert_eq!(
            s.pending_stripe_parts(),
            0,
            "both assemblies completed and were removed"
        );
        assert_eq!(s.stored_tag(obj), tag);
    }

    #[test]
    fn monolithic_element_supersedes_partial_stream_from_same_sender() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(1, membership.clone(), Arc::clone(&backend));
        let obj = ObjectId(5);
        let tag = Tag::new(3, ClientId(2));
        let value = Value::new((0..100u8).collect());
        let parts = striped_parts(&backend, &value, 32, 1);

        // The L1 striped-encode fallback: a few stripes go out, the encode
        // fails, and the whole element is re-sent monolithically behind them
        // on the same channel. A second sender's partial stream is unrelated
        // and must survive.
        for (seq, count, part) in parts.iter().take(2).cloned() {
            step(
                &mut s,
                membership.l1[0],
                LdsMessage::WriteCodeStripe {
                    obj,
                    tag,
                    seq,
                    count,
                    part,
                },
            );
            step(
                &mut s,
                membership.l1[1],
                LdsMessage::WriteCodeStripe {
                    obj,
                    tag,
                    seq,
                    count,
                    part: parts[seq as usize].2.clone(),
                },
            );
        }
        assert_eq!(s.pending_stripe_parts(), 4);
        let element = backend.encode_l2_element(&value, 1).unwrap();
        let out = step(
            &mut s,
            membership.l1[0],
            LdsMessage::WriteCodeElem { obj, tag, element },
        );
        assert!(matches!(out[0].1, LdsMessage::AckCodeElem { tag: t, .. } if t == tag));
        assert_eq!(s.stored_tag(obj), tag);
        assert_eq!(
            s.pending_stripe_parts(),
            2,
            "sender 0's partial stream is dropped; sender 1's survives"
        );

        // Sender 1 finishes its stream and still earns its own ack.
        let mut acks = 0;
        for (seq, count, part) in parts.into_iter().skip(2) {
            let out = step(
                &mut s,
                membership.l1[1],
                LdsMessage::WriteCodeStripe {
                    obj,
                    tag,
                    seq,
                    count,
                    part,
                },
            );
            acks += out
                .iter()
                .filter(|(_, m)| matches!(m, LdsMessage::AckCodeElem { .. }))
                .count();
        }
        assert_eq!(acks, 1);
        assert_eq!(s.pending_stripe_parts(), 0);
    }

    #[test]
    fn stripe_with_disagreeing_count_is_rejected() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(1, membership.clone(), Arc::clone(&backend));
        let obj = ObjectId(6);
        let tag = Tag::new(1, ClientId(3));
        let value = Value::new((0..100u8).collect());
        let parts = striped_parts(&backend, &value, 32, 1);
        let sender = membership.l1[0];

        let (seq, count, part) = parts[0].clone();
        step(
            &mut s,
            sender,
            LdsMessage::WriteCodeStripe {
                obj,
                tag,
                seq,
                count,
                part,
            },
        );
        assert_eq!(s.pending_stripe_parts(), 1);
        // A part whose count disagrees with the open assembly is dropped
        // instead of corrupting (or prematurely completing) it.
        let out = step(
            &mut s,
            sender,
            LdsMessage::WriteCodeStripe {
                obj,
                tag,
                seq: 1,
                count: count - 1,
                part: parts[1].2.clone(),
            },
        );
        assert!(out.is_empty());
        assert_eq!(s.pending_stripe_parts(), 1);
        // The well-formed remainder of the stream still completes.
        let mut acks = 0;
        for (seq, count, part) in parts.into_iter().skip(1) {
            let out = step(
                &mut s,
                sender,
                LdsMessage::WriteCodeStripe {
                    obj,
                    tag,
                    seq,
                    count,
                    part,
                },
            );
            acks += out
                .iter()
                .filter(|(_, m)| matches!(m, LdsMessage::AckCodeElem { .. }))
                .count();
        }
        assert_eq!(acks, 1);
        assert_eq!(s.pending_stripe_parts(), 0);
        assert_eq!(s.stored_tag(obj), tag);
    }

    #[test]
    fn helper_data_is_computed_for_the_requesting_l1_server() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(2, membership.clone(), Arc::clone(&backend));
        let obj = ObjectId(3);
        let value = Value::from("helper source");
        let tag = Tag::new(4, ClientId(2));
        let element = backend.encode_l2_element(&value, 2).unwrap();
        step(
            &mut s,
            membership.l1[1],
            LdsMessage::WriteCodeElem {
                obj,
                tag,
                element: element.clone(),
            },
        );

        let reader = ProcessId(50);
        let out = step(
            &mut s,
            membership.l1[1],
            LdsMessage::QueryCodeElem {
                obj,
                reader,
                op: crate::tag::OpId::default(),
            },
        );
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            LdsMessage::SendHelperElem { tag: t, helper, .. } => {
                assert_eq!(*t, tag);
                let expected = backend.helper_for_l1(&element, 2, 1).unwrap();
                assert_eq!(helper.data, expected.data);
                assert_eq!(helper.failed_index, 1);
            }
            other => panic!("expected helper response, got {other:?}"),
        }
    }

    #[test]
    fn unknown_objects_answer_with_initial_element() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(1, membership.clone(), backend);
        let out = step(
            &mut s,
            membership.l1[0],
            LdsMessage::QueryCodeElem {
                obj: ObjectId(42),
                reader: ProcessId(60),
                op: crate::tag::OpId::default(),
            },
        );
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            LdsMessage::SendHelperElem { tag, .. } => assert_eq!(*tag, Tag::initial()),
            other => panic!("expected helper response, got {other:?}"),
        }
    }

    #[test]
    fn queries_from_non_l1_processes_are_ignored() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(1, membership, backend);
        let out = step(
            &mut s,
            ProcessId(999),
            LdsMessage::QueryCodeElem {
                obj: ObjectId(0),
                reader: ProcessId(60),
                op: crate::tag::OpId::default(),
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn helpers_stream_repair_shares_then_a_done_marker() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(1, membership.clone(), Arc::clone(&backend));
        let tag = Tag::new(3, ClientId(1));
        for obj in 0..3u64 {
            let value = Value::from(format!("obj {obj}").as_str());
            let element = backend.encode_l2_element(&value, 1).unwrap();
            step(
                &mut s,
                membership.l1[0],
                LdsMessage::WriteCodeElem {
                    obj: ObjectId(obj),
                    tag,
                    element,
                },
            );
        }
        let failed = membership.l2[4];
        let out = step(
            &mut s,
            ProcessId(77),
            LdsMessage::RepairHelp {
                obj: ObjectId(0),
                failed,
            },
        );
        // Three repair shares (one per object) followed by the done marker,
        // all addressed to the failed server's replacement.
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|(to, _)| *to == failed));
        for (_, msg) in &out[..3] {
            match msg {
                LdsMessage::RepairShare {
                    payload:
                        RepairPayload::Element {
                            tag: t,
                            element_len,
                            helper,
                        },
                    ..
                } => {
                    assert_eq!(*t, tag);
                    assert_eq!(helper.failed_index, membership.n1() + 4);
                    assert!(*element_len >= helper.data.len() as u64);
                }
                other => panic!("expected repair share, got {other:?}"),
            }
        }
        assert!(
            matches!(out[3].1, LdsMessage::RepairDone { objects: 3, .. }),
            "done marker counts the shares"
        );
        // Repairing itself or a non-L2 process is refused.
        assert!(step(
            &mut s,
            ProcessId(77),
            LdsMessage::RepairHelp {
                obj: ObjectId(0),
                failed: membership.l2[1],
            }
        )
        .is_empty());
        assert!(step(
            &mut s,
            ProcessId(77),
            LdsMessage::RepairHelp {
                obj: ObjectId(0),
                failed: membership.l1[0],
            }
        )
        .is_empty());
    }

    #[test]
    fn rebuilding_server_regenerates_and_goes_live() {
        let (membership, backend) = setup();
        let coordinator = ProcessId(99);
        let failed_index = 2usize;
        // One helper process per live L2 peer, one shard each.
        let helpers: Vec<usize> = (0..5).filter(|&i| i != failed_index).collect();
        let mut s = L2Server::rebuilding(
            failed_index,
            membership.clone(),
            Arc::clone(&backend),
            L2Options::default(),
            helpers.len(),
            coordinator,
        );
        assert!(s.is_rebuilding());

        // While rebuilding: reads are refused, writes are absorbed.
        assert!(step(
            &mut s,
            membership.l1[0],
            LdsMessage::QueryCodeElem {
                obj: ObjectId(9),
                reader: ProcessId(60),
                op: crate::tag::OpId::default(),
            },
        )
        .is_empty());

        let obj = ObjectId(7);
        let value = Value::from("regenerate me online");
        let tag = Tag::new(5, ClientId(3));
        // In-flight write for a *newer* tag arrives mid-rebuild on another
        // object: absorbed directly.
        let live_obj = ObjectId(8);
        let live_tag = Tag::new(6, ClientId(4));
        let live_elem = backend
            .encode_l2_element(&Value::from("live"), failed_index)
            .unwrap();
        step(
            &mut s,
            membership.l1[0],
            LdsMessage::WriteCodeElem {
                obj: live_obj,
                tag: live_tag,
                element: live_elem.clone(),
            },
        );

        // Helpers stream their shares for obj, then their done markers.
        for (h, &l2) in helpers.iter().enumerate() {
            let elem = backend.encode_l2_element(&value, l2).unwrap();
            let helper = backend.helper_for_l2(&elem, l2, failed_index).unwrap();
            let out = step(
                &mut s,
                membership.l2[l2],
                LdsMessage::RepairShare {
                    obj,
                    payload: RepairPayload::Element {
                        tag,
                        element_len: elem.data.len() as u64,
                        helper,
                    },
                },
            );
            assert!(out.is_empty());
            let out = step(
                &mut s,
                membership.l2[l2],
                LdsMessage::RepairDone {
                    obj: ObjectId(0),
                    objects: 1,
                    bytes_by_helper: Vec::new(),
                    fallback_bytes: 0,
                },
            );
            if h + 1 < helpers.len() {
                assert!(out.is_empty());
                assert!(s.is_rebuilding());
            } else {
                // Last marker: the report goes to the coordinator.
                assert_eq!(out.len(), 1);
                assert_eq!(out[0].0, coordinator);
                match &out[0].1 {
                    LdsMessage::RepairDone {
                        objects,
                        bytes_by_helper,
                        fallback_bytes,
                        ..
                    } => {
                        assert_eq!(*objects, 1);
                        assert_eq!(bytes_by_helper.len(), helpers.len());
                        let total: u64 = bytes_by_helper.iter().map(|(_, b)| b).sum();
                        assert!(total > 0);
                        // MBR: β-sized helpers are strictly cheaper than the
                        // full-element fallback.
                        assert!(
                            total < *fallback_bytes,
                            "helper bytes {total} !< fallback {fallback_bytes}"
                        );
                    }
                    other => panic!("expected completion report, got {other:?}"),
                }
            }
        }
        assert!(!s.is_rebuilding());

        // The regenerated element is byte-identical to a direct encoding.
        let direct = backend.encode_l2_element(&value, failed_index).unwrap();
        assert_eq!(s.stored_tag(obj), tag);
        let out = step(
            &mut s,
            membership.l1[1],
            LdsMessage::QueryCodeElem {
                obj,
                reader: ProcessId(61),
                op: crate::tag::OpId::default(),
            },
        );
        match &out[0].1 {
            LdsMessage::SendHelperElem { tag: t, helper, .. } => {
                assert_eq!(*t, tag);
                let expected = backend.helper_for_l1(&direct, failed_index, 1).unwrap();
                assert_eq!(helper.data, expected.data);
            }
            other => panic!("expected helper response, got {other:?}"),
        }
        // The mid-rebuild write survived the finalization merge.
        assert_eq!(s.stored_tag(live_obj), live_tag);
    }

    #[test]
    fn rebuild_merge_prefers_newer_inflight_writes() {
        let (membership, backend) = setup();
        let failed_index = 0usize;
        let helpers: Vec<usize> = (1..5).collect();
        let mut s = L2Server::rebuilding(
            failed_index,
            membership.clone(),
            Arc::clone(&backend),
            L2Options::default(),
            helpers.len(),
            ProcessId(99),
        );
        let obj = ObjectId(1);
        let old = Value::from("old committed");
        let old_tag = Tag::new(2, ClientId(1));
        let new = Value::from("new in-flight");
        let new_tag = Tag::new(3, ClientId(2));
        // The in-flight write for the newer tag lands first.
        let new_elem = backend.encode_l2_element(&new, failed_index).unwrap();
        step(
            &mut s,
            membership.l1[0],
            LdsMessage::WriteCodeElem {
                obj,
                tag: new_tag,
                element: new_elem.clone(),
            },
        );
        // Helpers only know the older committed tag.
        for &l2 in &helpers {
            let elem = backend.encode_l2_element(&old, l2).unwrap();
            let helper = backend.helper_for_l2(&elem, l2, failed_index).unwrap();
            step(
                &mut s,
                membership.l2[l2],
                LdsMessage::RepairShare {
                    obj,
                    payload: RepairPayload::Element {
                        tag: old_tag,
                        element_len: elem.data.len() as u64,
                        helper,
                    },
                },
            );
            step(
                &mut s,
                membership.l2[l2],
                LdsMessage::RepairDone {
                    obj: ObjectId(0),
                    objects: 1,
                    bytes_by_helper: Vec::new(),
                    fallback_bytes: 0,
                },
            );
        }
        assert!(!s.is_rebuilding());
        // The newer in-flight element wins the merge.
        assert_eq!(s.stored_tag(obj), new_tag);
    }
}
