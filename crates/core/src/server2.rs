//! The L2 (back-end) server automaton — Fig. 3 of the paper.
//!
//! An L2 server stores, for each object, exactly one `(tag, coded-element)`
//! pair: the element of the code `C2` for the highest tag it has seen. It
//! answers two kinds of requests from L1 servers: `WRITE-CODE-ELEM` (part of
//! an internal `write-to-L2`) and `QUERY-CODE-ELEM` (part of an internal
//! `regenerate-from-L2`, for which it computes MBR helper data).

use crate::backend::BackendCodec;
use crate::membership::Membership;
use crate::messages::{LdsMessage, ProtocolEvent};
use crate::tag::{ObjectId, Tag};
use lds_codes::Share;
use lds_sim::{Context, Process, ProcessId};
use std::collections::HashMap;
use std::sync::Arc;

/// Tuning options for an L2 server.
#[derive(Debug, Clone, Copy)]
pub struct L2Options {
    /// Whether `WRITE-CODE-ELEM` messages are acknowledged. The acks only
    /// feed the L1 servers' offload counters, whose sole effect is
    /// garbage-collecting the temporary value — with
    /// [`crate::server1::L1Options::cache_committed_value`] enabled that path
    /// is inert, so the high-throughput cluster profile suppresses the
    /// `n2` ack messages per offload entirely. Defaults to `true`
    /// (paper-faithful).
    pub ack_code_elem: bool,
}

impl Default for L2Options {
    fn default() -> Self {
        L2Options {
            ack_code_elem: true,
        }
    }
}

/// The L2 server automaton.
pub struct L2Server {
    /// This server's index `i` (0-based position in the L2 list; its code
    /// symbol index is `n1 + i`).
    index: usize,
    membership: Membership,
    backend: Arc<dyn BackendCodec>,
    options: L2Options,
    /// Per-object `(tag, coded element)` — exactly one pair per object.
    objects: HashMap<ObjectId, (Tag, Share)>,
}

impl L2Server {
    /// Creates the L2 server with layer index `index` and default options.
    pub fn new(index: usize, membership: Membership, backend: Arc<dyn BackendCodec>) -> Self {
        L2Server::with_options(index, membership, backend, L2Options::default())
    }

    /// Creates the L2 server with explicit options.
    pub fn with_options(
        index: usize,
        membership: Membership,
        backend: Arc<dyn BackendCodec>,
        options: L2Options,
    ) -> Self {
        assert!(index < membership.n2(), "L2 index out of range");
        L2Server {
            index,
            membership,
            backend,
            options,
            objects: HashMap::new(),
        }
    }

    /// This server's index within L2.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The tag of the element currently stored for `obj` (the initial tag if
    /// the object was never written).
    pub fn stored_tag(&self, obj: ObjectId) -> Tag {
        self.objects
            .get(&obj)
            .map(|(t, _)| *t)
            .unwrap_or_else(Tag::initial)
    }

    /// Bytes of coded data stored across all objects (the paper's permanent
    /// storage cost, un-normalised). Objects that were never written are
    /// counted with their initial (empty value) element.
    pub fn storage_bytes(&self) -> usize {
        self.objects
            .values()
            .map(|(_, share)| share.data.len())
            .sum()
    }

    /// Number of objects for which this server holds an element.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn entry(&mut self, obj: ObjectId) -> &mut (Tag, Share) {
        let index = self.index;
        let backend = Arc::clone(&self.backend);
        self.objects
            .entry(obj)
            .or_insert_with(|| (Tag::initial(), backend.initial_l2_element(index)))
    }
}

impl Process<LdsMessage, ProtocolEvent> for L2Server {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: LdsMessage,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        match msg {
            // write-to-L2-resp: keep the element for the highest tag seen.
            LdsMessage::WriteCodeElem { obj, tag, element } => {
                let entry = self.entry(obj);
                if tag > entry.0 {
                    *entry = (tag, element);
                }
                if self.options.ack_code_elem {
                    ctx.send(from, LdsMessage::AckCodeElem { obj, tag });
                }
            }
            // regenerate-from-L2-resp: compute helper data for the requesting
            // L1 server's code index and send it back with the stored tag.
            LdsMessage::QueryCodeElem { obj, reader, op } => {
                let Some(l1_index) = self.membership.l1_index_of(from) else {
                    return; // not an L1 server; ignore
                };
                let (tag, element) = self.entry(obj).clone();
                match self.backend.helper_for_l1(&element, self.index, l1_index) {
                    Ok(helper) => ctx.send(
                        from,
                        LdsMessage::SendHelperElem {
                            obj,
                            reader,
                            op,
                            tag,
                            helper,
                        },
                    ),
                    Err(err) => {
                        debug_assert!(false, "helper computation failed: {err}");
                    }
                }
            }
            // Anything else is not addressed to an L2 server.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{make_backend, BackendKind};
    use crate::params::SystemParams;
    use crate::tag::ClientId;
    use crate::value::Value;

    fn setup() -> (Membership, Arc<dyn BackendCodec>) {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap(); // n1=4, n2=5
        let l1: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (4..9).map(ProcessId).collect();
        (
            Membership::new(l1, l2),
            make_backend(BackendKind::Mbr, &params).unwrap(),
        )
    }

    fn step(
        server: &mut L2Server,
        from: ProcessId,
        msg: LdsMessage,
    ) -> Vec<(ProcessId, LdsMessage)> {
        let mut outgoing = Vec::new();
        let mut events = Vec::new();
        let mut ctx = Context::standalone(
            ProcessId(100 + server.index),
            lds_sim::SimTime::ZERO,
            &mut outgoing,
            &mut events,
        );
        server.on_message(from, msg, &mut ctx);
        outgoing
    }

    #[test]
    fn stores_only_the_highest_tag() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(0, membership, Arc::clone(&backend));
        let obj = ObjectId(0);
        let v1 = Value::from("first");
        let v2 = Value::from("second");
        let t1 = Tag::new(1, ClientId(1));
        let t2 = Tag::new(2, ClientId(1));

        let e1 = backend.encode_l2_element(&v1, 0).unwrap();
        let e2 = backend.encode_l2_element(&v2, 0).unwrap();

        // Deliver the higher tag first, then the lower one.
        let out = step(
            &mut s,
            ProcessId(1),
            LdsMessage::WriteCodeElem {
                obj,
                tag: t2,
                element: e2.clone(),
            },
        );
        assert!(matches!(out[0].1, LdsMessage::AckCodeElem { tag, .. } if tag == t2));
        let out = step(
            &mut s,
            ProcessId(1),
            LdsMessage::WriteCodeElem {
                obj,
                tag: t1,
                element: e1,
            },
        );
        // Still acknowledges (the protocol always acks) but keeps t2.
        assert!(matches!(out[0].1, LdsMessage::AckCodeElem { tag, .. } if tag == t1));
        assert_eq!(s.stored_tag(obj), t2);
        assert_eq!(s.storage_bytes(), e2.data.len());
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn helper_data_is_computed_for_the_requesting_l1_server() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(2, membership.clone(), Arc::clone(&backend));
        let obj = ObjectId(3);
        let value = Value::from("helper source");
        let tag = Tag::new(4, ClientId(2));
        let element = backend.encode_l2_element(&value, 2).unwrap();
        step(
            &mut s,
            membership.l1[1],
            LdsMessage::WriteCodeElem {
                obj,
                tag,
                element: element.clone(),
            },
        );

        let reader = ProcessId(50);
        let out = step(
            &mut s,
            membership.l1[1],
            LdsMessage::QueryCodeElem {
                obj,
                reader,
                op: crate::tag::OpId::default(),
            },
        );
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            LdsMessage::SendHelperElem { tag: t, helper, .. } => {
                assert_eq!(*t, tag);
                let expected = backend.helper_for_l1(&element, 2, 1).unwrap();
                assert_eq!(helper.data, expected.data);
                assert_eq!(helper.failed_index, 1);
            }
            other => panic!("expected helper response, got {other:?}"),
        }
    }

    #[test]
    fn unknown_objects_answer_with_initial_element() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(1, membership.clone(), backend);
        let out = step(
            &mut s,
            membership.l1[0],
            LdsMessage::QueryCodeElem {
                obj: ObjectId(42),
                reader: ProcessId(60),
                op: crate::tag::OpId::default(),
            },
        );
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            LdsMessage::SendHelperElem { tag, .. } => assert_eq!(*tag, Tag::initial()),
            other => panic!("expected helper response, got {other:?}"),
        }
    }

    #[test]
    fn queries_from_non_l1_processes_are_ignored() {
        let (membership, backend) = setup();
        let mut s = L2Server::new(1, membership, backend);
        let out = step(
            &mut s,
            ProcessId(999),
            LdsMessage::QueryCodeElem {
                obj: ObjectId(0),
                reader: ProcessId(60),
                op: crate::tag::OpId::default(),
            },
        );
        assert!(out.is_empty());
    }
}
