//! Chunk-striped encode/decode over a [`BackendCodec`].
//!
//! The large-value streaming path splits a value into fixed-size stripes and
//! encodes each stripe independently, so the L1 offload's peak scratch is
//! O(stripe × n2) instead of O(value × n2) and the encode of stripe `s`
//! overlaps with the delivery of stripe `s − 1`. A striped coded element is
//! simply the concatenation of the per-stripe encodes with a
//! [`Share::layout`] recording the stripe boundaries — self-describing, so
//! every consumer (helper computation, regeneration, decode) can split the
//! element back into its stripes and run the ordinary backend operation
//! stripe-wise. One tag still covers the whole logical write; striping never
//! appears in the protocol's metadata.
//!
//! All functions here accept monolithic inputs (`layout == None`) and fall
//! through to the direct backend call, so callers need no mode switch.

use crate::backend::BackendCodec;
use crate::value::Value;
use lds_codes::{BufPool, CodeError, HelperData, Share};
use std::ops::Range;

/// Default stripe size for the chunk-striped write path: 256 KiB keeps one
/// stripe's frame and its `n2` element outputs comfortably inside the L2
/// cache while still amortising per-stripe overheads.
pub const DEFAULT_STRIPE_SIZE: usize = 256 * 1024;

/// Splits `0..len` into consecutive spans of at most `stripe_size` bytes.
/// Always yields at least one span, so the empty value is representable
/// (`len == 0` → a single `0..0` span).
///
/// # Panics
///
/// Panics if `stripe_size == 0`.
pub fn stripe_spans(len: usize, stripe_size: usize) -> Vec<Range<usize>> {
    assert!(stripe_size > 0, "stripe_size must be positive");
    (0..len.div_ceil(stripe_size).max(1))
        .map(|s| s * stripe_size..((s + 1) * stripe_size).min(len))
        .collect()
}

/// Encodes `value` stripe by stripe, emitting each L2 server's per-stripe
/// coded part as soon as it is computed — the shape that lets delivery
/// overlap with the encode of the next stripe.
///
/// Scratch discipline: per stripe the function takes `n2` element buffers
/// plus one frame scratch from `pool`, detaches the element buffers into the
/// emitted [`Share`]s (they become message payloads), and puts the frame
/// scratch back for the next stripe. The pool's
/// [`peak_round_bytes`](lds_codes::PoolStats::peak_round_bytes) therefore
/// measures exactly one stripe's simultaneous scratch.
///
/// `emit` receives `(l2_index, seq, count, part)` with `seq ∈ 0..count` and
/// parts emitted in stripe order.
///
/// # Errors
///
/// As for [`BackendCodec::encode_l2_elements_into`]; already-emitted parts
/// are not recalled.
pub fn encode_elements_striped<F>(
    backend: &dyn BackendCodec,
    value: &Value,
    stripe_size: usize,
    pool: &mut BufPool,
    mut emit: F,
) -> Result<(), CodeError>
where
    F: FnMut(usize, u32, u32, Share),
{
    let spans = stripe_spans(value.len(), stripe_size);
    let count = spans.len() as u32;
    let n1 = backend.n1();
    let n2 = backend.n2();
    for (seq, span) in spans.into_iter().enumerate() {
        let stripe = value.slice(span);
        let mut scratch = pool.take();
        let mut bufs: Vec<Vec<u8>> = (0..n2).map(|_| pool.take()).collect();
        if let Err(err) = backend.encode_l2_elements_scratch(&stripe, &mut bufs, &mut scratch) {
            for buf in bufs {
                pool.put(buf);
            }
            pool.put(scratch);
            return Err(err);
        }
        for (i, buf) in bufs.into_iter().enumerate() {
            pool.detach(buf.len());
            emit(i, seq as u32, count, Share::new(n1 + i, buf));
        }
        pool.put(scratch);
    }
    Ok(())
}

/// Assembles the per-stripe parts of one L2 server's element (in stripe
/// order) into a single share. A single part stays monolithic; several parts
/// become a striped share whose layout records the stripe boundaries.
pub fn assemble_share(index: usize, parts: Vec<Share>) -> Share {
    if parts.len() == 1 {
        let mut parts = parts;
        let mut only = parts.pop().expect("one part");
        only.index = index;
        return only;
    }
    let layout: Vec<usize> = parts.iter().map(|p| p.data.len()).collect();
    let mut data = Vec::with_capacity(layout.iter().sum());
    for part in &parts {
        data.extend_from_slice(&part.data);
    }
    Share::striped(index, data, layout)
}

/// Stripe count shared by a set of striped shares/helpers, or `None` when
/// every input is monolithic.
fn common_stripes<'a, I>(layouts: I) -> Result<Option<usize>, CodeError>
where
    I: Iterator<Item = Option<&'a Vec<usize>>>,
{
    let mut stripes: Option<usize> = None;
    for layout in layouts {
        let this = layout.map(Vec::len);
        match (stripes, this) {
            (None, t) => stripes = t,
            (Some(a), Some(b)) if a != b => {
                return Err(CodeError::MalformedShare(format!(
                    "inconsistent stripe counts {a} vs {b}"
                )));
            }
            (Some(_), Some(_)) => {}
            (Some(a), None) => {
                return Err(CodeError::MalformedShare(format!(
                    "monolithic share mixed into a {a}-stripe set"
                )));
            }
        }
    }
    Ok(stripes)
}

/// Stripe-aware [`BackendCodec::helper_for_l1`]: a helper computed from a
/// striped element is the concatenation of the per-stripe helpers, with its
/// own layout.
///
/// # Errors
///
/// As for the backend call.
pub fn helper_for_l1(
    backend: &dyn BackendCodec,
    l2_element: &Share,
    l2_index: usize,
    l1_index: usize,
) -> Result<HelperData, CodeError> {
    match &l2_element.layout {
        None => backend.helper_for_l1(l2_element, l2_index, l1_index),
        Some(_) => {
            let mut data = Vec::new();
            let mut layout = Vec::new();
            let mut indices = None;
            for seg in l2_element.segments() {
                let part = Share::new(l2_element.index, seg.to_vec());
                let helper = backend.helper_for_l1(&part, l2_index, l1_index)?;
                layout.push(helper.data.len());
                data.extend_from_slice(&helper.data);
                indices.get_or_insert((helper.helper_index, helper.failed_index));
            }
            let (hi, fi) = indices.expect("striped element has at least one segment");
            Ok(HelperData::striped(hi, fi, data, layout))
        }
    }
}

/// Stripe-aware [`BackendCodec::regenerate_l1`].
///
/// # Errors
///
/// As for the backend call, plus [`CodeError::MalformedShare`] when helper
/// stripe structures disagree.
pub fn regenerate_l1(
    backend: &dyn BackendCodec,
    l1_index: usize,
    helpers: &[HelperData],
) -> Result<Share, CodeError> {
    match common_stripes(helpers.iter().map(|h| h.layout.as_ref()))? {
        None => backend.regenerate_l1(l1_index, helpers),
        Some(stripes) => {
            let segmented: Vec<Vec<&[u8]>> = helpers.iter().map(HelperData::segments).collect();
            let mut parts = Vec::with_capacity(stripes);
            for s in 0..stripes {
                let stripe_helpers: Vec<HelperData> = helpers
                    .iter()
                    .zip(&segmented)
                    .map(|(h, segs)| {
                        HelperData::new(h.helper_index, h.failed_index, segs[s].to_vec())
                    })
                    .collect();
                parts.push(backend.regenerate_l1(l1_index, &stripe_helpers)?);
            }
            let index = parts[0].index;
            Ok(assemble_share(index, parts))
        }
    }
}

/// Stripe-aware [`BackendCodec::helper_for_l2`] (online L2 repair).
///
/// # Errors
///
/// As for the backend call.
pub fn helper_for_l2(
    backend: &dyn BackendCodec,
    l2_element: &Share,
    l2_index: usize,
    failed_l2_index: usize,
) -> Result<HelperData, CodeError> {
    match &l2_element.layout {
        None => backend.helper_for_l2(l2_element, l2_index, failed_l2_index),
        Some(_) => {
            let mut data = Vec::new();
            let mut layout = Vec::new();
            let mut indices = None;
            for seg in l2_element.segments() {
                let part = Share::new(l2_element.index, seg.to_vec());
                let helper = backend.helper_for_l2(&part, l2_index, failed_l2_index)?;
                layout.push(helper.data.len());
                data.extend_from_slice(&helper.data);
                indices.get_or_insert((helper.helper_index, helper.failed_index));
            }
            let (hi, fi) = indices.expect("striped element has at least one segment");
            Ok(HelperData::striped(hi, fi, data, layout))
        }
    }
}

/// Stripe-aware [`BackendCodec::regenerate_l2`] (online L2 repair).
///
/// # Errors
///
/// As for the backend call, plus [`CodeError::MalformedShare`] when helper
/// stripe structures disagree.
pub fn regenerate_l2(
    backend: &dyn BackendCodec,
    l2_index: usize,
    helpers: &[HelperData],
) -> Result<Share, CodeError> {
    match common_stripes(helpers.iter().map(|h| h.layout.as_ref()))? {
        None => backend.regenerate_l2(l2_index, helpers),
        Some(stripes) => {
            let segmented: Vec<Vec<&[u8]>> = helpers.iter().map(HelperData::segments).collect();
            let mut parts = Vec::with_capacity(stripes);
            for s in 0..stripes {
                let stripe_helpers: Vec<HelperData> = helpers
                    .iter()
                    .zip(&segmented)
                    .map(|(h, segs)| {
                        HelperData::new(h.helper_index, h.failed_index, segs[s].to_vec())
                    })
                    .collect();
                parts.push(backend.regenerate_l2(l2_index, &stripe_helpers)?);
            }
            let index = parts[0].index;
            Ok(assemble_share(index, parts))
        }
    }
}

/// Stripe-aware [`BackendCodec::decode_from_l1_into`]: decodes each stripe
/// from the corresponding segments of the (striped) C1 elements and
/// concatenates the per-stripe values — "readers reassemble stripes".
///
/// # Errors
///
/// As for the backend call, plus [`CodeError::MalformedShare`] when share
/// stripe structures disagree.
pub fn decode_from_l1_into(
    backend: &dyn BackendCodec,
    shares: &[Share],
    out: &mut Vec<u8>,
) -> Result<(), CodeError> {
    match common_stripes(shares.iter().map(|s| s.layout.as_ref()))? {
        None => backend.decode_from_l1_into(shares, out),
        Some(stripes) => {
            let segmented: Vec<Vec<&[u8]>> = shares.iter().map(Share::segments).collect();
            out.clear();
            let mut stripe_out = Vec::new();
            for s in 0..stripes {
                let stripe_shares: Vec<Share> = shares
                    .iter()
                    .zip(&segmented)
                    .map(|(share, segs)| Share::new(share.index, segs[s].to_vec()))
                    .collect();
                backend.decode_from_l1_into(&stripe_shares, &mut stripe_out)?;
                out.extend_from_slice(&stripe_out);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{make_backend, BackendKind};
    use crate::params::SystemParams;
    use std::collections::BTreeMap;

    #[test]
    fn spans_cover_the_value_exactly() {
        assert_eq!(stripe_spans(0, 64), vec![0..0]);
        assert_eq!(stripe_spans(63, 64), vec![0..63]);
        assert_eq!(stripe_spans(64, 64), vec![0..64]);
        assert_eq!(stripe_spans(65, 64), vec![0..64, 64..65]);
        let spans = stripe_spans(3 * 64 + 7, 64);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans.last().unwrap().clone(), 192..199);
    }

    #[test]
    #[should_panic(expected = "stripe_size must be positive")]
    fn zero_stripe_size_panics() {
        let _ = stripe_spans(10, 0);
    }

    fn sample_value(len: usize) -> Value {
        Value::new((0..len).map(|i| (i * 37 % 251) as u8).collect())
    }

    /// The satellite property test: a striped write/read roundtrips
    /// byte-identically with the monolithic path across all four backends at
    /// the edge sizes around the stripe boundary.
    #[test]
    fn striped_roundtrip_matches_monolithic_across_backends() {
        const STRIPE: usize = 64;
        let p = SystemParams::for_failures(1, 1, 3, 5).unwrap(); // n1=5, n2=7
        for kind in [
            BackendKind::Mbr,
            BackendKind::MsrPoint,
            BackendKind::ProductMatrixMsr,
            BackendKind::Replication,
        ] {
            let backend = make_backend(kind, &p).unwrap();
            let mut pool = BufPool::new();
            for len in [0usize, 1, STRIPE - 1, STRIPE, STRIPE + 1, 3 * STRIPE + 7] {
                let value = sample_value(len);

                // Striped write path → per-L2 assembled elements.
                let mut parts: BTreeMap<usize, Vec<Share>> = BTreeMap::new();
                encode_elements_striped(&*backend, &value, STRIPE, &mut pool, |l2, seq, _, p| {
                    let slot = parts.entry(l2).or_default();
                    assert_eq!(slot.len(), seq as usize, "parts arrive in stripe order");
                    slot.push(p);
                })
                .unwrap();
                let elements: Vec<Share> = parts
                    .into_iter()
                    .map(|(l2, parts)| assemble_share(backend.n1() + l2, parts))
                    .collect();
                assert_eq!(elements.len(), backend.n2());

                // Striped read path: regenerate k C1 elements, then decode.
                let mut c1 = Vec::new();
                for l1 in 0..backend.decode_threshold() {
                    let helpers: Vec<HelperData> = elements
                        .iter()
                        .enumerate()
                        .take(backend.repair_threshold())
                        .map(|(i, e)| helper_for_l1(&*backend, e, i, l1).unwrap())
                        .collect();
                    c1.push(regenerate_l1(&*backend, l1, &helpers).unwrap());
                }
                let mut decoded = Vec::new();
                decode_from_l1_into(&*backend, &c1, &mut decoded).unwrap();
                assert_eq!(decoded, value.as_bytes(), "{kind} len={len}");

                // Byte-identical with the monolithic path: a small value
                // (single stripe) produces exactly the monolithic elements.
                if len <= STRIPE {
                    let mut mono: Vec<Vec<u8>> = vec![Vec::new(); backend.n2()];
                    backend.encode_l2_elements_into(&value, &mut mono).unwrap();
                    for (e, m) in elements.iter().zip(&mono) {
                        assert_eq!(&e.data, m, "{kind} len={len}");
                        assert!(e.layout.is_none(), "single stripe stays monolithic");
                    }
                }
            }
            // The frame scratch is recycled across stripes and rounds stay
            // bounded by one stripe's worth of buffers.
            let stats = pool.stats();
            assert!(stats.reused > 0, "{kind}: frame scratch must be reused");
        }
    }

    #[test]
    fn striped_l2_repair_regenerates_the_striped_element() {
        const STRIPE: usize = 32;
        let p = SystemParams::for_failures(1, 1, 3, 5).unwrap();
        let value = sample_value(3 * STRIPE + 5);
        for kind in [BackendKind::Mbr, BackendKind::Replication] {
            let backend = make_backend(kind, &p).unwrap();
            let mut pool = BufPool::new();
            let mut parts: BTreeMap<usize, Vec<Share>> = BTreeMap::new();
            encode_elements_striped(&*backend, &value, STRIPE, &mut pool, |l2, _, _, p| {
                parts.entry(l2).or_default().push(p);
            })
            .unwrap();
            let elements: Vec<Share> = parts
                .into_iter()
                .map(|(l2, parts)| assemble_share(backend.n1() + l2, parts))
                .collect();
            let failed = 2usize;
            let helpers: Vec<HelperData> = (0..backend.n2())
                .filter(|&i| i != failed)
                .take(backend.repair_threshold())
                .map(|i| helper_for_l2(&*backend, &elements[i], i, failed).unwrap())
                .collect();
            let regenerated = regenerate_l2(&*backend, failed, &helpers).unwrap();
            assert_eq!(regenerated, elements[failed], "{kind}");
        }
    }

    #[test]
    fn inconsistent_stripe_structures_are_rejected() {
        let p = SystemParams::for_failures(1, 1, 3, 5).unwrap();
        let backend = make_backend(BackendKind::Replication, &p).unwrap();
        let striped = Share::striped(5, vec![1, 2], vec![1, 1]);
        let mono = Share::new(6, vec![1, 2]);
        let mut out = Vec::new();
        assert!(decode_from_l1_into(&*backend, &[striped, mono], &mut out).is_err());
    }
}
