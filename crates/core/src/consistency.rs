//! Operation histories and atomicity checking.
//!
//! The paper proves atomicity (Theorem IV.9) via the sufficient condition of
//! Lemma 13.16 of Lynch's *Distributed Algorithms*: a partial order `≺` on
//! operations such that
//!
//! * **P1** `≺` never contradicts the real-time order of non-overlapping
//!   operations,
//! * **P2** every operation is ordered with respect to all writes, and
//! * **P3** every read returns the value of the last preceding write (or the
//!   initial value).
//!
//! [`History::check_atomicity`] verifies exactly these conditions using the
//! tags the protocol assigns to operations. For additional confidence that
//! does not trust protocol tags, [`History::check_linearizable_search`]
//! performs an explicit linearization search (exponential in the worst case,
//! intended for the small histories used in tests).

use crate::tag::{ObjectId, OpId, Tag};
use crate::value::Value;
use lds_sim::SimTime;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Whether an operation is a write or a read, along with its value.
#[derive(Debug, Clone, PartialEq)]
pub enum OperationKind {
    /// A write of the contained value.
    Write(Value),
    /// A read that returned the contained value.
    Read(Value),
}

/// One completed client operation.
#[derive(Debug, Clone)]
pub struct Operation {
    /// Operation id (unique per client operation).
    pub op: OpId,
    /// Object the operation acted on.
    pub obj: ObjectId,
    /// Write or read, with the associated value.
    pub kind: OperationKind,
    /// Invocation time.
    pub invoked_at: SimTime,
    /// Response time.
    pub completed_at: SimTime,
    /// The tag the protocol associated with the operation.
    pub tag: Tag,
}

impl Operation {
    /// Whether the operation is a write.
    pub fn is_write(&self) -> bool {
        matches!(self.kind, OperationKind::Write(_))
    }

    /// The operation's value (written or returned).
    pub fn value(&self) -> &Value {
        match &self.kind {
            OperationKind::Write(v) | OperationKind::Read(v) => v,
        }
    }

    /// Whether `self` finished before `other` was invoked (real-time order).
    pub fn precedes(&self, other: &Operation) -> bool {
        self.completed_at < other.invoked_at
    }
}

/// A violation of atomicity found by a checker.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicityViolation {
    /// A read returned a value that no write (and not the initial value)
    /// produced.
    UnknownValue {
        /// The offending read.
        read: OpId,
    },
    /// Two distinct writes carry the same tag.
    DuplicateWriteTag {
        /// First write.
        first: OpId,
        /// Second write.
        second: OpId,
        /// The shared tag.
        tag: Tag,
    },
    /// A read's tag does not match the tag of the write whose value it
    /// returned.
    TagValueMismatch {
        /// The offending read.
        read: OpId,
    },
    /// The tag order contradicts the real-time order: `earlier` completed
    /// before `later` was invoked, yet `later ≺ earlier`.
    RealTimeViolation {
        /// The operation that finished first.
        earlier: OpId,
        /// The operation invoked after `earlier` completed.
        later: OpId,
    },
    /// The linearization search exhausted all interleavings without finding a
    /// witness.
    NoLinearization,
}

impl fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicityViolation::UnknownValue { read } => {
                write!(f, "read {read} returned a value no write produced")
            }
            AtomicityViolation::DuplicateWriteTag { first, second, tag } => {
                write!(f, "writes {first} and {second} share tag {tag}")
            }
            AtomicityViolation::TagValueMismatch { read } => {
                write!(f, "read {read} returned a value inconsistent with its tag")
            }
            AtomicityViolation::RealTimeViolation { earlier, later } => {
                write!(f, "operation {later} is ordered before {earlier} despite starting after it completed")
            }
            AtomicityViolation::NoLinearization => write!(f, "no valid linearization exists"),
        }
    }
}

/// A per-object history of completed operations.
#[derive(Debug, Clone, Default)]
pub struct History {
    operations: Vec<Operation>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Adds a completed operation.
    pub fn record(&mut self, op: Operation) {
        self.operations.push(op);
    }

    /// All recorded operations.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Operations restricted to one object, preserving order.
    pub fn for_object(&self, obj: ObjectId) -> History {
        History {
            operations: self
                .operations
                .iter()
                .filter(|o| o.obj == obj)
                .cloned()
                .collect(),
        }
    }

    /// The set of objects appearing in the history.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut set: Vec<ObjectId> = self.operations.iter().map(|o| o.obj).collect();
        set.sort();
        set.dedup();
        set
    }

    /// Checks atomicity using the protocol tags (the paper's Lemma 13.16
    /// conditions), per object.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_atomicity(&self) -> Result<(), AtomicityViolation> {
        for obj in self.objects() {
            self.for_object(obj).check_atomicity_single_object()?;
        }
        Ok(())
    }

    fn check_atomicity_single_object(&self) -> Result<(), AtomicityViolation> {
        // P3 ingredients: map write tags to values; detect duplicates.
        let mut writes_by_tag: BTreeMap<Tag, (OpId, &Value)> = BTreeMap::new();
        for op in self.operations.iter().filter(|o| o.is_write()) {
            if let Some((first, _)) = writes_by_tag.get(&op.tag) {
                return Err(AtomicityViolation::DuplicateWriteTag {
                    first: *first,
                    second: op.op,
                    tag: op.tag,
                });
            }
            writes_by_tag.insert(op.tag, (op.op, op.value()));
        }

        // Every read's (tag, value) must match a write or the initial value.
        for op in self.operations.iter().filter(|o| !o.is_write()) {
            if op.tag.is_initial() {
                if !op.value().is_empty() {
                    return Err(AtomicityViolation::UnknownValue { read: op.op });
                }
                continue;
            }
            match writes_by_tag.get(&op.tag) {
                None => return Err(AtomicityViolation::UnknownValue { read: op.op }),
                Some((_, v)) if *v != op.value() => {
                    return Err(AtomicityViolation::TagValueMismatch { read: op.op })
                }
                Some(_) => {}
            }
        }

        // P1: the partial order induced by tags must not contradict real time.
        // π ≺ φ  iff  tag(π) < tag(φ), or tags are equal and π is a write
        // while φ is a read.
        for a in &self.operations {
            for b in &self.operations {
                if a.precedes(b) {
                    let b_before_a =
                        b.tag < a.tag || (b.tag == a.tag && b.is_write() && !a.is_write());
                    if b_before_a {
                        return Err(AtomicityViolation::RealTimeViolation {
                            earlier: a.op,
                            later: b.op,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Explicit linearization search that does not trust protocol tags: looks
    /// for a total order of operations that respects real time and register
    /// semantics. Exponential in the worst case — use on small histories.
    ///
    /// # Errors
    ///
    /// Returns [`AtomicityViolation::NoLinearization`] if no witness exists,
    /// or [`AtomicityViolation::UnknownValue`] if a read returned a value
    /// that was never written.
    pub fn check_linearizable_search(&self) -> Result<(), AtomicityViolation> {
        for obj in self.objects() {
            self.for_object(obj).search_single_object()?;
        }
        Ok(())
    }

    fn search_single_object(&self) -> Result<(), AtomicityViolation> {
        let ops = &self.operations;
        let n = ops.len();
        if n == 0 {
            return Ok(());
        }
        // Values must be attributable.
        let written: HashSet<&[u8]> = ops
            .iter()
            .filter(|o| o.is_write())
            .map(|o| o.value().as_bytes())
            .collect();
        for o in ops.iter().filter(|o| !o.is_write()) {
            if !o.value().is_empty() && !written.contains(o.value().as_bytes()) {
                return Err(AtomicityViolation::UnknownValue { read: o.op });
            }
        }

        // Depth-first search over linear extensions of the real-time partial
        // order, tracking the register contents; memoise on (done-set, last
        // written value index).
        let mut memo: HashSet<(Vec<bool>, usize)> = HashSet::new();
        // `usize::MAX` represents the initial value.
        fn dfs(
            ops: &[Operation],
            done: &mut Vec<bool>,
            last_written: usize,
            memo: &mut HashSet<(Vec<bool>, usize)>,
        ) -> bool {
            if done.iter().all(|&d| d) {
                return true;
            }
            if !memo.insert((done.clone(), last_written)) {
                return false;
            }
            for i in 0..ops.len() {
                if done[i] {
                    continue;
                }
                // Respect real time: cannot linearise `i` if some not-yet-done
                // operation completed before `i` was invoked.
                let blocked = (0..ops.len())
                    .any(|j| !done[j] && j != i && ops[j].completed_at < ops[i].invoked_at);
                if blocked {
                    continue;
                }
                let next_written = if ops[i].is_write() {
                    i
                } else {
                    let current: &[u8] = if last_written == usize::MAX {
                        &[]
                    } else {
                        ops[last_written].value().as_bytes()
                    };
                    if ops[i].value().as_bytes() != current {
                        continue;
                    }
                    last_written
                };
                done[i] = true;
                if dfs(ops, done, next_written, memo) {
                    done[i] = false;
                    return true;
                }
                done[i] = false;
            }
            false
        }

        let mut done = vec![false; n];
        if dfs(ops, &mut done, usize::MAX, &mut memo) {
            Ok(())
        } else {
            Err(AtomicityViolation::NoLinearization)
        }
    }

    /// Convenience constructor used by harnesses: builds a history from
    /// completion events plus their completion times.
    pub fn from_events<I>(events: I) -> Self
    where
        I: IntoIterator<Item = (crate::messages::ProtocolEvent, SimTime)>,
    {
        let mut history = History::new();
        for (event, completed_at) in events {
            let op = match event {
                crate::messages::ProtocolEvent::WriteCompleted {
                    op,
                    obj,
                    tag,
                    value,
                    invoked_at,
                } => Operation {
                    op,
                    obj,
                    kind: OperationKind::Write(value),
                    invoked_at,
                    completed_at,
                    tag,
                },
                crate::messages::ProtocolEvent::ReadCompleted {
                    op,
                    obj,
                    tag,
                    value,
                    invoked_at,
                } => Operation {
                    op,
                    obj,
                    kind: OperationKind::Read(value),
                    invoked_at,
                    completed_at,
                    tag,
                },
            };
            history.record(op);
        }
        history
    }

    /// Per-client operation counts, useful for workload sanity checks.
    pub fn ops_per_client(&self) -> HashMap<crate::tag::ClientId, usize> {
        let mut map = HashMap::new();
        for op in &self.operations {
            *map.entry(op.op.client).or_insert(0) += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ClientId;

    fn write(op_seq: u64, client: u64, tag: Tag, value: &str, t0: f64, t1: f64) -> Operation {
        Operation {
            op: OpId::new(ClientId(client), op_seq),
            obj: ObjectId(0),
            kind: OperationKind::Write(Value::from(value)),
            invoked_at: SimTime::new(t0),
            completed_at: SimTime::new(t1),
            tag,
        }
    }

    fn read(op_seq: u64, client: u64, tag: Tag, value: &str, t0: f64, t1: f64) -> Operation {
        Operation {
            op: OpId::new(ClientId(client), op_seq),
            obj: ObjectId(0),
            kind: OperationKind::Read(Value::from(value)),
            invoked_at: SimTime::new(t0),
            completed_at: SimTime::new(t1),
            tag,
        }
    }

    #[test]
    fn sequential_history_is_atomic() {
        let mut h = History::new();
        let t1 = Tag::new(1, ClientId(1));
        let t2 = Tag::new(2, ClientId(1));
        h.record(write(0, 1, t1, "a", 0.0, 1.0));
        h.record(read(0, 2, t1, "a", 2.0, 3.0));
        h.record(write(1, 1, t2, "b", 4.0, 5.0));
        h.record(read(1, 2, t2, "b", 6.0, 7.0));
        assert!(h.check_atomicity().is_ok());
        assert!(h.check_linearizable_search().is_ok());
        assert_eq!(h.len(), 4);
        assert_eq!(h.ops_per_client()[&ClientId(2)], 2);
    }

    #[test]
    fn stale_read_after_write_completion_is_detected() {
        // Write (tag 2) completes, then a read starts and returns tag 1's
        // value: a classic atomicity violation.
        let mut h = History::new();
        let t1 = Tag::new(1, ClientId(1));
        let t2 = Tag::new(2, ClientId(1));
        h.record(write(0, 1, t1, "a", 0.0, 1.0));
        h.record(write(1, 1, t2, "b", 2.0, 3.0));
        h.record(read(0, 2, t1, "a", 4.0, 5.0));
        assert!(matches!(
            h.check_atomicity(),
            Err(AtomicityViolation::RealTimeViolation { .. })
        ));
        assert!(matches!(
            h.check_linearizable_search(),
            Err(AtomicityViolation::NoLinearization)
        ));
    }

    #[test]
    fn concurrent_reads_may_return_old_or_new() {
        // A read concurrent with a write may return either value.
        let t1 = Tag::new(1, ClientId(1));
        for (tag, value) in [(Tag::initial(), ""), (t1, "new")] {
            let mut h = History::new();
            h.record(write(0, 1, t1, "new", 0.0, 10.0));
            h.record(read(0, 2, tag, value, 1.0, 2.0));
            assert!(
                h.check_atomicity().is_ok(),
                "value {value:?} should be allowed"
            );
            assert!(h.check_linearizable_search().is_ok());
        }
    }

    #[test]
    fn read_of_unknown_value_is_detected() {
        let mut h = History::new();
        h.record(write(0, 1, Tag::new(1, ClientId(1)), "a", 0.0, 1.0));
        h.record(read(0, 2, Tag::new(7, ClientId(9)), "ghost", 2.0, 3.0));
        assert!(matches!(
            h.check_atomicity(),
            Err(AtomicityViolation::UnknownValue { .. })
        ));
        assert!(matches!(
            h.check_linearizable_search(),
            Err(AtomicityViolation::UnknownValue { .. })
        ));
    }

    #[test]
    fn tag_value_mismatch_is_detected() {
        let mut h = History::new();
        let t1 = Tag::new(1, ClientId(1));
        h.record(write(0, 1, t1, "a", 0.0, 1.0));
        h.record(read(0, 2, t1, "b", 2.0, 3.0));
        // The tag checker flags the mismatch...
        assert!(matches!(
            h.check_atomicity(),
            Err(AtomicityViolation::TagValueMismatch { .. })
        ));
        // ...and the search cannot attribute the value either.
        assert!(h.check_linearizable_search().is_err());
    }

    #[test]
    fn duplicate_write_tags_are_detected() {
        let mut h = History::new();
        let t = Tag::new(3, ClientId(1));
        h.record(write(0, 1, t, "a", 0.0, 1.0));
        h.record(write(0, 2, t, "b", 2.0, 3.0));
        assert!(matches!(
            h.check_atomicity(),
            Err(AtomicityViolation::DuplicateWriteTag { .. })
        ));
    }

    #[test]
    fn reads_of_initial_value_are_allowed_before_any_write() {
        let mut h = History::new();
        h.record(read(0, 2, Tag::initial(), "", 0.0, 1.0));
        assert!(h.check_atomicity().is_ok());
        assert!(h.check_linearizable_search().is_ok());
    }

    #[test]
    fn new_old_inversion_between_reads_is_detected_by_tags() {
        // Read R1 returns the new value and completes; R2 starts afterwards
        // and returns the old value — forbidden by atomicity.
        let mut h = History::new();
        let t1 = Tag::new(1, ClientId(1));
        let t2 = Tag::new(2, ClientId(1));
        h.record(write(0, 1, t1, "old", 0.0, 1.0));
        h.record(write(1, 1, t2, "new", 2.0, 20.0)); // still running
        h.record(read(0, 2, t2, "new", 3.0, 4.0));
        h.record(read(1, 3, t1, "old", 5.0, 6.0));
        assert!(matches!(
            h.check_atomicity(),
            Err(AtomicityViolation::RealTimeViolation { .. })
        ));
        assert!(matches!(
            h.check_linearizable_search(),
            Err(AtomicityViolation::NoLinearization)
        ));
    }

    #[test]
    fn per_object_histories_are_independent() {
        let mut h = History::new();
        let t1 = Tag::new(1, ClientId(1));
        let mut w1 = write(0, 1, t1, "a", 0.0, 1.0);
        w1.obj = ObjectId(1);
        let mut r1 = read(0, 2, t1, "a", 2.0, 3.0);
        r1.obj = ObjectId(1);
        // Object 2 only ever sees the initial value.
        let mut r2 = read(1, 2, Tag::initial(), "", 4.0, 5.0);
        r2.obj = ObjectId(2);
        h.record(w1);
        h.record(r1);
        h.record(r2);
        assert_eq!(h.objects(), vec![ObjectId(1), ObjectId(2)]);
        assert!(h.check_atomicity().is_ok());
        assert_eq!(h.for_object(ObjectId(1)).len(), 2);
    }

    #[test]
    fn violation_messages_are_informative() {
        let v = AtomicityViolation::UnknownValue {
            read: OpId::new(ClientId(1), 0),
        };
        assert!(v.to_string().contains("read"));
        assert!(AtomicityViolation::NoLinearization
            .to_string()
            .contains("linearization"));
    }
}
