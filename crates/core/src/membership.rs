//! Static membership of a two-layer LDS deployment.

use lds_sim::ProcessId;

/// Process group used for client processes (readers and writers) when
/// spawning into a simulation; link latencies to L1 use τ1.
pub const CLIENT_GROUP: u8 = 0;
/// Process group used for L1 (edge) servers; L1↔L1 links use τ0.
pub const L1_GROUP: u8 = 1;
/// Process group used for L2 (back-end) servers; L1↔L2 links use τ2.
pub const L2_GROUP: u8 = 2;

/// The process ids of all servers, in layer order.
///
/// The LDS model is static: the sets of L1 and L2 servers are fixed for the
/// whole execution and known to every client and server.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Membership {
    /// L1 (edge) servers `s_1 … s_{n1}`, in code-index order.
    pub l1: Vec<ProcessId>,
    /// L2 (back-end) servers `s_{n1+1} … s_{n1+n2}`, in code-index order.
    pub l2: Vec<ProcessId>,
}

impl Membership {
    /// Creates a membership from the two server lists.
    pub fn new(l1: Vec<ProcessId>, l2: Vec<ProcessId>) -> Self {
        Membership { l1, l2 }
    }

    /// Number of L1 servers.
    pub fn n1(&self) -> usize {
        self.l1.len()
    }

    /// Number of L2 servers.
    pub fn n2(&self) -> usize {
        self.l2.len()
    }

    /// The code index (0-based position) of an L1 server process.
    pub fn l1_index_of(&self, pid: ProcessId) -> Option<usize> {
        self.l1.iter().position(|&p| p == pid)
    }

    /// The code index (0-based position) of an L2 server process.
    pub fn l2_index_of(&self, pid: ProcessId) -> Option<usize> {
        self.l2.iter().position(|&p| p == pid)
    }

    /// The fixed relay set `S_{f1+1}` used by the metadata broadcast
    /// primitive: the first `f1 + 1` L1 servers.
    pub fn broadcast_relays(&self, f1: usize) -> &[ProcessId] {
        &self.l1[..(f1 + 1).min(self.l1.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(range: std::ops::Range<usize>) -> Vec<ProcessId> {
        range.map(ProcessId).collect()
    }

    #[test]
    fn index_lookup() {
        let m = Membership::new(pids(0..5), pids(5..12));
        assert_eq!(m.n1(), 5);
        assert_eq!(m.n2(), 7);
        assert_eq!(m.l1_index_of(ProcessId(3)), Some(3));
        assert_eq!(m.l1_index_of(ProcessId(9)), None);
        assert_eq!(m.l2_index_of(ProcessId(5)), Some(0));
        assert_eq!(m.l2_index_of(ProcessId(11)), Some(6));
    }

    #[test]
    fn relay_set_is_first_f1_plus_one() {
        let m = Membership::new(pids(0..5), pids(5..8));
        assert_eq!(m.broadcast_relays(1), &[ProcessId(0), ProcessId(1)]);
        assert_eq!(
            m.broadcast_relays(10).len(),
            5,
            "relay set never exceeds n1"
        );
    }
}
