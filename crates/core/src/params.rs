//! System parameters of a two-layer LDS deployment.

use std::fmt;

/// Errors produced when validating [`SystemParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParams(pub String);

impl fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid LDS system parameters: {}", self.0)
    }
}

impl std::error::Error for InvalidParams {}

/// Validated parameters of the two-layer system.
///
/// The paper fixes the relations `n1 = 2·f1 + k` and `n2 = 2·f2 + d`, where
/// `k` and `d` are the reconstruction threshold and repair degree of the
/// regenerating code `C`, `f1 < n1/2` is the L1 fault tolerance and
/// `f2 < n2/3` the L2 fault tolerance (the latter requires `d > f2`).
///
/// ```rust
/// use lds_core::params::SystemParams;
/// // 5 edge servers tolerating 1 crash, 7 back-end servers tolerating 1 crash.
/// let p = SystemParams::for_failures(1, 1, 3, 5).unwrap();
/// assert_eq!((p.n1(), p.n2(), p.k(), p.d()), (5, 7, 3, 5));
/// assert_eq!(p.write_quorum(), 4);    // f1 + k
/// assert_eq!(p.l2_quorum(), 6);       // f2 + d = n2 - f2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemParams {
    n1: usize,
    n2: usize,
    f1: usize,
    f2: usize,
    k: usize,
    d: usize,
}

impl SystemParams {
    /// Builds parameters from layer sizes and fault tolerances, deriving
    /// `k = n1 − 2·f1` and `d = n2 − 2·f2`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] unless `f1 < n1/2`, `f2 < n2/3`,
    /// `1 ≤ k ≤ d` and `f2 < d`.
    pub fn new(n1: usize, n2: usize, f1: usize, f2: usize) -> Result<Self, InvalidParams> {
        if n1 == 0 || n2 == 0 {
            return Err(InvalidParams("both layers need at least one server".into()));
        }
        if 2 * f1 >= n1 {
            return Err(InvalidParams(format!(
                "need f1 < n1/2 (got f1={f1}, n1={n1})"
            )));
        }
        if 3 * f2 >= n2 {
            return Err(InvalidParams(format!(
                "need f2 < n2/3 (got f2={f2}, n2={n2})"
            )));
        }
        let k = n1 - 2 * f1;
        let d = n2 - 2 * f2;
        if k == 0 {
            return Err(InvalidParams(
                "derived k = n1 - 2*f1 must be at least 1".into(),
            ));
        }
        if k > d {
            return Err(InvalidParams(format!(
                "the MBR code requires k <= d, but n1 - 2*f1 = {k} > n2 - 2*f2 = {d}"
            )));
        }
        if d <= f2 {
            return Err(InvalidParams(format!("need d > f2 (got d={d}, f2={f2})")));
        }
        Ok(SystemParams {
            n1,
            n2,
            f1,
            f2,
            k,
            d,
        })
    }

    /// Builds parameters from fault tolerances and code parameters, deriving
    /// `n1 = 2·f1 + k` and `n2 = 2·f2 + d`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] under the same conditions as
    /// [`SystemParams::new`].
    pub fn for_failures(f1: usize, f2: usize, k: usize, d: usize) -> Result<Self, InvalidParams> {
        Self::new(2 * f1 + k, 2 * f2 + d, f1, f2)
    }

    /// A small symmetric configuration convenient for tests: `n1 = n2 = n`,
    /// `f1 = f2 = f` (which forces `k = d = n − 2f`).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] if the constraints cannot be met.
    pub fn symmetric(n: usize, f: usize) -> Result<Self, InvalidParams> {
        Self::new(n, n, f, f)
    }

    /// Number of L1 (edge) servers.
    pub fn n1(&self) -> usize {
        self.n1
    }

    /// Number of L2 (back-end) servers.
    pub fn n2(&self) -> usize {
        self.n2
    }

    /// L1 crash-fault tolerance.
    pub fn f1(&self) -> usize {
        self.f1
    }

    /// L2 crash-fault tolerance.
    pub fn f2(&self) -> usize {
        self.f2
    }

    /// Reconstruction threshold of the code (`k = n1 − 2·f1`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Repair degree of the code (`d = n2 − 2·f2`).
    pub fn d(&self) -> usize {
        self.d
    }

    /// Total code length `n = n1 + n2` of the code `C`.
    pub fn code_length(&self) -> usize {
        self.n1 + self.n2
    }

    /// Quorum of L1 responses a writer waits for in both phases (`f1 + k`).
    pub fn write_quorum(&self) -> usize {
        self.f1 + self.k
    }

    /// Quorum of L1 responses a reader waits for in all three phases
    /// (`f1 + k`).
    pub fn read_quorum(&self) -> usize {
        self.f1 + self.k
    }

    /// Number of distinct COMMIT-TAG broadcasts a server must consume before
    /// acknowledging a write (`f1 + k`).
    pub fn commit_quorum(&self) -> usize {
        self.f1 + self.k
    }

    /// Number of L2 responses an L1 server waits for during `write-to-L2`
    /// and `regenerate-from-L2` (`f2 + d = n2 − f2`).
    pub fn l2_quorum(&self) -> usize {
        self.f2 + self.d
    }

    /// Size of the relay set used by the metadata broadcast primitive
    /// (`f1 + 1`).
    pub fn broadcast_relays(&self) -> usize {
        self.f1 + 1
    }
}

impl fmt::Display for SystemParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LDS {{ n1={}, n2={}, f1={}, f2={}, k={}, d={} }}",
            self.n1, self.n2, self.f1, self.f2, self.k, self.d
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivations_match_paper_relations() {
        let p = SystemParams::new(10, 12, 3, 2).unwrap();
        assert_eq!(p.k(), 10 - 6);
        assert_eq!(p.d(), 12 - 4);
        assert_eq!(p.write_quorum(), 3 + 4);
        assert_eq!(p.l2_quorum(), 12 - 2);
        assert_eq!(p.code_length(), 22);
        assert_eq!(p.broadcast_relays(), 4);

        let q = SystemParams::for_failures(3, 2, 4, 8).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn symmetric_configuration() {
        let p = SystemParams::symmetric(10, 2).unwrap();
        assert_eq!(p.n1(), 10);
        assert_eq!(p.n2(), 10);
        assert_eq!(p.k(), 6);
        assert_eq!(p.d(), 6);
    }

    #[test]
    fn fault_bounds_enforced() {
        // f1 >= n1/2.
        assert!(SystemParams::new(4, 9, 2, 1).is_err());
        // f2 >= n2/3.
        assert!(SystemParams::new(5, 9, 1, 3).is_err());
        // k > d.
        assert!(SystemParams::new(9, 5, 1, 1).is_err());
        // Empty layers.
        assert!(SystemParams::new(0, 5, 0, 1).is_err());
        assert!(SystemParams::new(5, 0, 1, 0).is_err());
    }

    #[test]
    fn paper_figure_6_parameters_are_valid() {
        // Fig. 6: n1 = n2 = 100, k = d = 80 ⇒ f1 = f2 = 10.
        let p = SystemParams::symmetric(100, 10).unwrap();
        assert_eq!(p.k(), 80);
        assert_eq!(p.d(), 80);
        assert_eq!(p.write_quorum(), 90);
        assert_eq!(p.l2_quorum(), 90);
    }

    #[test]
    fn display_is_informative() {
        let p = SystemParams::symmetric(6, 1).unwrap();
        assert!(p.to_string().contains("n1=6"));
        assert!(InvalidParams("x".into()).to_string().contains("invalid"));
    }
}
