//! Object values.

use std::fmt;
use std::sync::Arc;

/// An object value: an immutable byte string with cheap clones.
///
/// Values are cloned along many protocol paths (temporary storage on every L1
/// server, responses to registered readers, …), so the bytes are held behind
/// an [`Arc`]. Equality and hashing compare contents.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Value(Arc<Vec<u8>>);

impl Value {
    /// The distinguished initial value `v0` (empty).
    pub fn initial() -> Self {
        Value::default()
    }

    /// Creates a value from bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        Value(Arc::new(bytes))
    }

    /// The value's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes — the unit the paper's costs are normalised by.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({} bytes)", self.0.len())
    }
}

impl From<Vec<u8>> for Value {
    fn from(bytes: Vec<u8>) -> Self {
        Value::new(bytes)
    }
}

impl From<Arc<Vec<u8>>> for Value {
    fn from(bytes: Arc<Vec<u8>>) -> Self {
        Value(bytes)
    }
}

impl From<&[u8]> for Value {
    fn from(bytes: &[u8]) -> Self {
        Value::new(bytes.to_vec())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::new(s.as_bytes().to_vec())
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Value::new(vec![1, 2, 3]);
        assert_eq!(v.as_bytes(), &[1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert!(Value::initial().is_empty());
    }

    #[test]
    fn clones_share_storage_and_compare_by_content() {
        let a = Value::from("hello");
        let b = a.clone();
        let c = Value::from("hello");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, Value::from("world"));
    }

    #[test]
    fn conversions() {
        let from_slice: Value = b"xy".as_slice().into();
        let from_vec: Value = vec![b'x', b'y'].into();
        assert_eq!(from_slice, from_vec);
        assert_eq!(from_slice.as_ref(), b"xy");
        assert!(format!("{from_slice:?}").contains("2 bytes"));
    }
}
