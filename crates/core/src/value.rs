//! Object values.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::Arc;

/// An object value: an immutable byte string with cheap clones **and cheap
/// sub-slices**.
///
/// Values are cloned along many protocol paths (temporary storage on every L1
/// server, responses to registered readers, …), so the bytes are held behind
/// an [`Arc`]. The value is a `[start, end)` view into that shared buffer,
/// which is what lets the chunk-striped write path carve a large value into
/// stripes without copying a single byte ([`Value::slice`]) and lets stripe
/// reassembly rejoin contiguous views for free ([`Value::concat`]).
///
/// Equality and hashing compare contents (the visible bytes), not the
/// identity or bounds of the backing buffer.
#[derive(Clone, Default)]
pub struct Value {
    bytes: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Value {
    /// The distinguished initial value `v0` (empty).
    pub fn initial() -> Self {
        Value::default()
    }

    /// Creates a value from bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        let end = bytes.len();
        Value {
            bytes: Arc::new(bytes),
            start: 0,
            end,
        }
    }

    /// The value's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[self.start..self.end]
    }

    /// Length in bytes — the unit the paper's costs are normalised by.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of this value (`range` is relative to the
    /// current view). The returned value shares the backing buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the value's bounds.
    pub fn slice(&self, range: Range<usize>) -> Value {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for value of {} bytes",
            self.len()
        );
        Value {
            bytes: Arc::clone(&self.bytes),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Concatenates values. When every part is a contiguous view of the
    /// *same* backing buffer — the shape produced by slicing one value into
    /// stripes — the result is a single zero-copy view; otherwise the bytes
    /// are copied into a fresh buffer.
    pub fn concat(parts: &[Value]) -> Value {
        match parts {
            [] => Value::initial(),
            [first, rest @ ..] => {
                let contiguous = rest
                    .iter()
                    .try_fold(first, |prev, next| {
                        (Arc::ptr_eq(&prev.bytes, &next.bytes) && prev.end == next.start)
                            .then_some(next)
                    })
                    .is_some();
                if contiguous {
                    let last = parts.last().expect("parts is non-empty");
                    return Value {
                        bytes: Arc::clone(&first.bytes),
                        start: first.start,
                        end: last.end,
                    };
                }
                let total: usize = parts.iter().map(Value::len).sum();
                let mut joined = Vec::with_capacity(total);
                for part in parts {
                    joined.extend_from_slice(part.as_bytes());
                }
                Value::new(joined)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Value {
    fn from(bytes: Vec<u8>) -> Self {
        Value::new(bytes)
    }
}

impl From<Arc<Vec<u8>>> for Value {
    fn from(bytes: Arc<Vec<u8>>) -> Self {
        let end = bytes.len();
        Value {
            bytes,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Value {
    fn from(bytes: &[u8]) -> Self {
        Value::new(bytes.to_vec())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::new(s.as_bytes().to_vec())
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Value::new(vec![1, 2, 3]);
        assert_eq!(v.as_bytes(), &[1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert!(Value::initial().is_empty());
    }

    #[test]
    fn clones_share_storage_and_compare_by_content() {
        let a = Value::from("hello");
        let b = a.clone();
        let c = Value::from("hello");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, Value::from("world"));
    }

    #[test]
    fn conversions() {
        let from_slice: Value = b"xy".as_slice().into();
        let from_vec: Value = vec![b'x', b'y'].into();
        assert_eq!(from_slice, from_vec);
        assert_eq!(from_slice.as_ref(), b"xy");
        assert!(format!("{from_slice:?}").contains("2 bytes"));
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let v = Value::new((0u8..100).collect());
        let mid = v.slice(10..20);
        assert_eq!(mid.as_bytes(), &(10u8..20).collect::<Vec<_>>()[..]);
        // Slicing a slice composes.
        let inner = mid.slice(2..5);
        assert_eq!(inner.as_bytes(), &[12, 13, 14]);
        assert!(v.slice(40..40).is_empty());
        // A sub-view equals a freshly built value with the same content.
        assert_eq!(inner, Value::new(vec![12, 13, 14]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let _ = Value::new(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn concat_of_contiguous_slices_is_zero_copy() {
        let v = Value::new((0u8..50).collect());
        let parts: Vec<Value> = vec![v.slice(0..20), v.slice(20..40), v.slice(40..50)];
        let joined = Value::concat(&parts);
        assert_eq!(joined, v);
        // Zero-copy: the rejoin points into the original buffer.
        assert_eq!(joined.as_bytes().as_ptr(), v.as_bytes().as_ptr());
    }

    #[test]
    fn concat_of_unrelated_values_copies() {
        let a = Value::from("ab");
        let b = Value::from("cd");
        assert_eq!(Value::concat(&[a, b]), Value::from("abcd"));
        assert_eq!(Value::concat(&[]), Value::initial());
        // Same buffer but non-contiguous parts also copy (and reorder works).
        let v = Value::new((0u8..10).collect());
        let swapped = Value::concat(&[v.slice(5..10), v.slice(0..5)]);
        assert_eq!(swapped.as_bytes(), &[5, 6, 7, 8, 9, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn hashing_follows_content_not_view_bounds() {
        use std::collections::HashSet;
        let v = Value::new(vec![7, 7, 7, 7]);
        let mut set = HashSet::new();
        set.insert(v.slice(0..2));
        assert!(set.contains(&Value::new(vec![7, 7])));
    }
}
