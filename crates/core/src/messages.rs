//! Protocol messages and harness events.
//!
//! One message enum covers all four automata (writer, reader, L1 server, L2
//! server) plus the harness commands that start client operations. Message
//! names follow the paper's pseudocode (Figs. 1–3).
//!
//! The [`lds_sim::DataSize`] implementation encodes the paper's cost model
//! (§II-d): only object data (values, coded elements, helper payloads) counts;
//! tags, counters and other metadata are free.

use crate::tag::{ObjectId, OpId, Tag};
use crate::value::Value;
use lds_codes::{HelperData, Share};
use lds_sim::{DataSize, ProcessId, SimTime};

/// Payload of a [`LdsMessage::RepairShare`]: what one live server contributes
/// to the online regeneration of a crashed peer.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairPayload {
    /// L2 → replacement L2: a repair symbol for the failed server's coded
    /// element, computed from the helper's own committed `(tag, element)`
    /// pair. With an MBR backend this is the bandwidth-optimal `β`-sized
    /// helper; other backends ship enough for decode-and-re-encode.
    Element {
        /// Tag of the element the helper symbol was computed from.
        tag: Tag,
        /// Length of the helper's full stored element in bytes — what this
        /// payload would have cost under the decode-and-re-encode fallback.
        /// Summed by the replacement into the repair's `fallback_bytes`
        /// accounting (covering every payload, whether or not its object
        /// ultimately reaches a repair quorum).
        element_len: u64,
        /// The repair symbol.
        helper: HelperData,
    },
    /// L1 → replacement L1: one live peer's per-object metadata snapshot —
    /// the committed tag plus every `(tag, value?)` entry of its list `L`.
    /// The union over a quorum of peers covers every tag the crashed server
    /// could have acknowledged, which is what keeps get-tag quorums monotonic
    /// after the rejoin.
    Meta {
        /// The peer's committed tag `t_c` for the object.
        tc: Tag,
        /// The peer's list entries (`None` encodes `⊥`, a tag whose value
        /// was already offloaded to L2).
        entries: Vec<(Tag, Option<Value>)>,
    },
}

/// Payload of a server's response to a reader's `QUERY-DATA` (or of a late
/// response sent while serving a registered reader).
#[derive(Debug, Clone, PartialEq)]
pub enum ReadPayload {
    /// A full `(tag, value)` pair served from the server's temporary list.
    Value(Value),
    /// A `(tag, coded-element)` pair regenerated from L2.
    Coded(Share),
    /// `(⊥, ⊥)` — regeneration failed at this server.
    None,
}

/// All LDS protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum LdsMessage {
    // ------------------------------------------------------------------
    // Harness commands (injected from `ProcessId::EXTERNAL`, no link cost).
    // ------------------------------------------------------------------
    /// Ask a writer client to perform a write operation.
    InvokeWrite {
        /// Target object.
        obj: ObjectId,
        /// Value to write.
        value: Value,
    },
    /// Ask a reader client to perform a read operation.
    InvokeRead {
        /// Target object.
        obj: ObjectId,
    },

    // ------------------------------------------------------------------
    // Writer <-> L1 (Fig. 1 / Fig. 2).
    // ------------------------------------------------------------------
    /// Writer `get-tag` query.
    QueryTag {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
    },
    /// Server response to [`LdsMessage::QueryTag`]: the maximum tag in its
    /// list.
    TagResp {
        /// Target object.
        obj: ObjectId,
        /// Operation id echoed back.
        op: OpId,
        /// Maximum tag in the server's list.
        tag: Tag,
    },
    /// Writer `put-data`: the new `(tag, value)` pair.
    PutData {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// The new tag.
        tag: Tag,
        /// The value being written.
        value: Value,
    },
    /// One stripe of a chunk-striped `put-data` (large-value streaming
    /// path). The writer splits a value above its stripe threshold into
    /// `count` fixed-size chunks and streams them as `PutStripe { seq: 0..count }`
    /// instead of one monolithic [`LdsMessage::PutData`]; the L1 server
    /// assembles the stripes (order-independently) and processes the
    /// completed set exactly as a `PutData` — one tag covers all stripes, so
    /// the per-object metadata still treats the logical write atomically.
    PutStripe {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// The new tag (identical across all stripes of the write).
        tag: Tag,
        /// Stripe sequence number, `0..count`.
        seq: u32,
        /// Total number of stripes in this write.
        count: u32,
        /// This stripe's bytes (an `Arc`-slice view of the source value).
        stripe: Value,
    },
    /// Server acknowledgment of a write (sent from `put-data-resp` when the
    /// tag is stale, or from `broadcast-resp` once enough COMMIT-TAG
    /// broadcasts have been consumed).
    AckPutData {
        /// Target object.
        obj: ObjectId,
        /// Operation id echoed back.
        op: OpId,
        /// The written tag.
        tag: Tag,
    },

    // ------------------------------------------------------------------
    // Metadata broadcast primitive among L1 servers (§III, from ref. [17]).
    // ------------------------------------------------------------------
    /// First hop: the broadcasting server sends to the fixed relay set
    /// `S_{f1+1}`.
    BcastSend {
        /// Target object.
        obj: ObjectId,
        /// The committed tag being announced.
        tag: Tag,
        /// The server that initiated this broadcast.
        origin: ProcessId,
    },
    /// Second hop: a relay forwards to every L1 server; consuming this
    /// message triggers the `broadcast-resp` action.
    BcastDeliver {
        /// Target object.
        obj: ObjectId,
        /// The committed tag being announced.
        tag: Tag,
        /// The server that initiated this broadcast.
        origin: ProcessId,
    },

    // ------------------------------------------------------------------
    // Reader <-> L1 (Fig. 1 / Fig. 2).
    // ------------------------------------------------------------------
    /// Reader `get-committed-tag` query.
    QueryCommTag {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
    },
    /// Server response to [`LdsMessage::QueryCommTag`]: its committed tag.
    CommTagResp {
        /// Target object.
        obj: ObjectId,
        /// Operation id echoed back.
        op: OpId,
        /// The server's committed tag `t_c`.
        tag: Tag,
    },
    /// Reader `get-data` request for tag at least `treq`.
    QueryData {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// The requested tag.
        treq: Tag,
    },
    /// Server response to [`LdsMessage::QueryData`] — possibly sent later
    /// than the request if the reader was registered and served during a
    /// subsequent `broadcast-resp` / `put-tag-resp`.
    DataResp {
        /// Target object.
        obj: ObjectId,
        /// Operation id echoed back.
        op: OpId,
        /// Tag of the payload (`None` encodes the paper's `⊥`).
        tag: Option<Tag>,
        /// The payload.
        payload: ReadPayload,
    },
    /// Reader `put-tag` write-back (tag only — no value, which is what keeps
    /// the read cost low).
    PutTag {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// The tag being written back.
        tag: Tag,
    },
    /// Server acknowledgment of a [`LdsMessage::PutTag`].
    AckPutTag {
        /// Target object.
        obj: ObjectId,
        /// Operation id echoed back.
        op: OpId,
    },

    // ------------------------------------------------------------------
    // L1 <-> L2 internal operations (Fig. 2 / Fig. 3).
    // ------------------------------------------------------------------
    /// `write-to-L2`: an L1 server offloads a coded element to an L2 server.
    WriteCodeElem {
        /// Target object.
        obj: ObjectId,
        /// Tag of the value the element encodes.
        tag: Tag,
        /// The coded element `c_{n1+i}`.
        element: Share,
    },
    /// One stripe's worth of a coded element (`write-to-L2`, chunk-striped
    /// path): the encode of stripe `seq` for one L2 server. The L2 server
    /// assembles all `count` parts into a single striped [`Share`] (with a
    /// per-stripe layout) under the write's tag, then stores and acknowledges
    /// it exactly as one [`LdsMessage::WriteCodeElem`]. Streaming per-stripe
    /// parts is what keeps the L1 offload's peak scratch at
    /// O(stripe × n2) instead of O(value × n2).
    WriteCodeStripe {
        /// Target object.
        obj: ObjectId,
        /// Tag of the value the element encodes.
        tag: Tag,
        /// Stripe sequence number, `0..count`.
        seq: u32,
        /// Total number of stripes in this element.
        count: u32,
        /// The encode of stripe `seq` for this L2 server's index.
        part: Share,
    },
    /// L2 acknowledgment of a [`LdsMessage::WriteCodeElem`].
    AckCodeElem {
        /// Target object.
        obj: ObjectId,
        /// The acknowledged tag.
        tag: Tag,
    },
    /// `regenerate-from-L2`: an L1 server asks an L2 server for helper data
    /// on behalf of reader `reader` / operation `op`.
    QueryCodeElem {
        /// Target object.
        obj: ObjectId,
        /// The reader being served (metadata, used to key the helper set).
        reader: ProcessId,
        /// The reader's operation id.
        op: OpId,
    },
    /// L2 response to [`LdsMessage::QueryCodeElem`]: helper data computed
    /// from its stored coded element.
    SendHelperElem {
        /// Target object.
        obj: ObjectId,
        /// The reader being served.
        reader: ProcessId,
        /// The reader's operation id.
        op: OpId,
        /// Tag of the stored element the helper data was computed from.
        tag: Tag,
        /// The helper payload `h_{n1+i, j}`.
        helper: HelperData,
    },

    // ------------------------------------------------------------------
    // Online node repair & rejoin (cluster runtime extension; not part of
    // the paper's static-membership automata).
    // ------------------------------------------------------------------
    /// Repair coordinator → live peers of a crashed server: stream your
    /// repair contributions for `failed` to the (already re-registered)
    /// replacement. Delivered to *every* worker shard of each helper (see
    /// [`LdsMessage::fanout`]); the `obj` field exists only to satisfy the
    /// uniform routing interface.
    RepairHelp {
        /// Routing placeholder (fan-out messages address a process, not an
        /// object).
        obj: ObjectId,
        /// The crashed server being regenerated.
        failed: ProcessId,
    },
    /// One live server's per-object repair contribution, sent to the
    /// replacement server. Routed by `obj`, so with sharded servers each
    /// contribution arrives directly at the worker shard owning the object.
    RepairShare {
        /// The object this contribution restores.
        obj: ObjectId,
        /// The contribution (coded helper symbol for L2, metadata snapshot
        /// for L1).
        payload: RepairPayload,
    },
    /// End-of-stream marker and completion report. Two uses: a helper shard
    /// sends it (fan-out, after all its [`LdsMessage::RepairShare`]s) to tell
    /// every replacement shard it is done; a finished replacement shard sends
    /// it to the repair coordinator with the accounting fields filled in.
    RepairDone {
        /// Routing placeholder.
        obj: ObjectId,
        /// Shares contributed (helper → replacement) or objects restored
        /// (replacement → coordinator).
        objects: u64,
        /// Repair bytes received per helper process (replacement →
        /// coordinator only; empty otherwise).
        bytes_by_helper: Vec<(ProcessId, u64)>,
        /// What the same repair — same helpers participating — would have
        /// moved had each shipped its full stored element (the
        /// decode-and-re-encode fallback), for the MBR-vs-full-decode
        /// bandwidth comparison (replacement → coordinator only).
        fallback_bytes: u64,
    },
}

impl LdsMessage {
    /// The object this message concerns.
    ///
    /// Every protocol message carries its object id; the cluster runtime uses
    /// it to route messages to the server shard owning the object's partition.
    pub fn object(&self) -> ObjectId {
        match self {
            LdsMessage::InvokeWrite { obj, .. }
            | LdsMessage::InvokeRead { obj }
            | LdsMessage::QueryTag { obj, .. }
            | LdsMessage::TagResp { obj, .. }
            | LdsMessage::PutData { obj, .. }
            | LdsMessage::PutStripe { obj, .. }
            | LdsMessage::AckPutData { obj, .. }
            | LdsMessage::BcastSend { obj, .. }
            | LdsMessage::BcastDeliver { obj, .. }
            | LdsMessage::QueryCommTag { obj, .. }
            | LdsMessage::CommTagResp { obj, .. }
            | LdsMessage::QueryData { obj, .. }
            | LdsMessage::DataResp { obj, .. }
            | LdsMessage::PutTag { obj, .. }
            | LdsMessage::AckPutTag { obj, .. }
            | LdsMessage::WriteCodeElem { obj, .. }
            | LdsMessage::WriteCodeStripe { obj, .. }
            | LdsMessage::AckCodeElem { obj, .. }
            | LdsMessage::QueryCodeElem { obj, .. }
            | LdsMessage::SendHelperElem { obj, .. }
            | LdsMessage::RepairHelp { obj, .. }
            | LdsMessage::RepairShare { obj, .. }
            | LdsMessage::RepairDone { obj, .. } => *obj,
        }
    }

    /// Whether the message addresses a whole *process* rather than one
    /// object, and must therefore be delivered to **every** worker shard of
    /// a sharded destination (the cluster transport's per-object routing
    /// would otherwise hand it to a single shard).
    ///
    /// Fan-out messages are never aggregated into batches: a repair helper's
    /// end-of-stream [`LdsMessage::RepairDone`] must stay behind the
    /// [`LdsMessage::RepairShare`]s it terminates on every channel, which the
    /// transport guarantees by routing both immediately, in send order.
    pub fn fanout(&self) -> bool {
        matches!(
            self,
            LdsMessage::RepairHelp { .. } | LdsMessage::RepairDone { .. }
        )
    }

    /// Whether the cluster transport may *aggregate* this message into a
    /// multi-message envelope (delaying it to the end of the flush).
    ///
    /// Metadata is batchable — that is the COMMIT-TAG coalescing
    /// optimisation — with two exceptions: fan-out messages (their routing
    /// is per-process, not per-shard), and [`LdsMessage::RepairShare`]
    /// (even a payload-free metadata snapshot must stay **ahead** of the
    /// fan-out [`LdsMessage::RepairDone`] that terminates its stream, so
    /// repair messages always dispatch immediately, in send order).
    pub fn batchable(&self) -> bool {
        self.is_metadata() && !self.fanout() && !matches!(self, LdsMessage::RepairShare { .. })
    }

    /// Whether the message carries no object data — only tags, counters and
    /// other metadata (the messages the paper's cost model counts as free).
    ///
    /// The cluster transport uses this to decide what may be **aggregated**:
    /// metadata messages produced by one flush — most prominently the
    /// per-write COMMIT-TAG broadcasts — coalesce into one multi-message
    /// envelope per peer, while data-carrying messages (values, coded
    /// elements, helper payloads) always travel as their own envelope.
    pub fn is_metadata(&self) -> bool {
        self.data_size() == 0
    }

    /// Dense per-class index of this message, aligned with the class-name
    /// order of the cluster transport's `MESSAGE_CLASSES` (which appends
    /// `"PING"` — a non-protocol liveness probe — as the final class,
    /// [`LdsMessage::NUM_CLASSES`]`- 1`). Observability counters index by
    /// this instead of comparing the [`DataSize::kind`] strings.
    pub fn class_index(&self) -> usize {
        match self {
            LdsMessage::InvokeWrite { .. } => 0,
            LdsMessage::InvokeRead { .. } => 1,
            LdsMessage::QueryTag { .. } => 2,
            LdsMessage::TagResp { .. } => 3,
            LdsMessage::PutData { .. } => 4,
            LdsMessage::PutStripe { .. } => 5,
            LdsMessage::AckPutData { .. } => 6,
            LdsMessage::BcastSend { .. } => 7,
            LdsMessage::BcastDeliver { .. } => 8,
            LdsMessage::QueryCommTag { .. } => 9,
            LdsMessage::CommTagResp { .. } => 10,
            LdsMessage::QueryData { .. } => 11,
            LdsMessage::DataResp { .. } => 12,
            LdsMessage::PutTag { .. } => 13,
            LdsMessage::AckPutTag { .. } => 14,
            LdsMessage::WriteCodeElem { .. } => 15,
            LdsMessage::WriteCodeStripe { .. } => 16,
            LdsMessage::AckCodeElem { .. } => 17,
            LdsMessage::QueryCodeElem { .. } => 18,
            LdsMessage::SendHelperElem { .. } => 19,
            LdsMessage::RepairHelp { .. } => 20,
            LdsMessage::RepairShare { .. } => 21,
            LdsMessage::RepairDone { .. } => 22,
        }
    }

    /// Number of message classes: every [`LdsMessage::class_index`] value
    /// plus the transport-level `"PING"` probe at index `NUM_CLASSES - 1`.
    pub const NUM_CLASSES: usize = 24;
}

impl DataSize for LdsMessage {
    fn data_size(&self) -> usize {
        match self {
            LdsMessage::PutData { value, .. } => value.len(),
            LdsMessage::PutStripe { stripe, .. } => stripe.len(),
            LdsMessage::InvokeWrite { value, .. } => value.len(),
            LdsMessage::DataResp { payload, .. } => match payload {
                ReadPayload::Value(v) => v.len(),
                ReadPayload::Coded(share) => share.data.len(),
                ReadPayload::None => 0,
            },
            LdsMessage::WriteCodeElem { element, .. } => element.data.len(),
            LdsMessage::WriteCodeStripe { part, .. } => part.data.len(),
            LdsMessage::SendHelperElem { helper, .. } => helper.data.len(),
            LdsMessage::RepairShare { payload, .. } => match payload {
                RepairPayload::Element { helper, .. } => helper.data.len(),
                // Tags are free; only live values count, per the cost model.
                RepairPayload::Meta { entries, .. } => entries
                    .iter()
                    .filter_map(|(_, v)| v.as_ref().map(Value::len))
                    .sum(),
            },
            // Everything else is metadata (tags, acks, queries, broadcasts).
            _ => 0,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            LdsMessage::InvokeWrite { .. } => "INVOKE-WRITE",
            LdsMessage::InvokeRead { .. } => "INVOKE-READ",
            LdsMessage::QueryTag { .. } => "QUERY-TAG",
            LdsMessage::TagResp { .. } => "TAG-RESP",
            LdsMessage::PutData { .. } => "PUT-DATA",
            LdsMessage::PutStripe { .. } => "PUT-STRIPE",
            LdsMessage::AckPutData { .. } => "ACK-PUT-DATA",
            LdsMessage::BcastSend { .. } => "BCAST-SEND",
            LdsMessage::BcastDeliver { .. } => "COMMIT-TAG",
            LdsMessage::QueryCommTag { .. } => "QUERY-COMM-TAG",
            LdsMessage::CommTagResp { .. } => "COMM-TAG-RESP",
            LdsMessage::QueryData { .. } => "QUERY-DATA",
            LdsMessage::DataResp { .. } => "DATA-RESP",
            LdsMessage::PutTag { .. } => "PUT-TAG",
            LdsMessage::AckPutTag { .. } => "ACK-PUT-TAG",
            LdsMessage::WriteCodeElem { .. } => "WRITE-CODE-ELEM",
            LdsMessage::WriteCodeStripe { .. } => "WRITE-CODE-STRIPE",
            LdsMessage::AckCodeElem { .. } => "ACK-CODE-ELEM",
            LdsMessage::QueryCodeElem { .. } => "QUERY-CODE-ELEM",
            LdsMessage::SendHelperElem { .. } => "SEND-HELPER-ELEM",
            LdsMessage::RepairHelp { .. } => "REPAIR-HELP",
            LdsMessage::RepairShare { .. } => "REPAIR-SHARE",
            LdsMessage::RepairDone { .. } => "REPAIR-DONE",
        }
    }
}

/// Events emitted by client automata to the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolEvent {
    /// A write operation completed.
    WriteCompleted {
        /// Operation id.
        op: OpId,
        /// Target object.
        obj: ObjectId,
        /// The tag the writer created.
        tag: Tag,
        /// The written value.
        value: Value,
        /// Invocation time.
        invoked_at: SimTime,
    },
    /// A read operation completed.
    ReadCompleted {
        /// Operation id.
        op: OpId,
        /// Target object.
        obj: ObjectId,
        /// The tag associated with the returned value.
        tag: Tag,
        /// The returned value.
        value: Value,
        /// Invocation time.
        invoked_at: SimTime,
    },
}

impl ProtocolEvent {
    /// The operation id of the completed operation.
    pub fn op(&self) -> OpId {
        match self {
            ProtocolEvent::WriteCompleted { op, .. } | ProtocolEvent::ReadCompleted { op, .. } => {
                *op
            }
        }
    }

    /// The object the operation acted on.
    pub fn object(&self) -> ObjectId {
        match self {
            ProtocolEvent::WriteCompleted { obj, .. }
            | ProtocolEvent::ReadCompleted { obj, .. } => *obj,
        }
    }

    /// The tag associated with the operation.
    pub fn tag(&self) -> Tag {
        match self {
            ProtocolEvent::WriteCompleted { tag, .. }
            | ProtocolEvent::ReadCompleted { tag, .. } => *tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ClientId;

    #[test]
    fn data_sizes_follow_cost_model() {
        let obj = ObjectId(0);
        let op = OpId::new(ClientId(1), 0);
        let tag = Tag::initial();
        let value = Value::new(vec![0u8; 100]);

        let put = LdsMessage::PutData {
            obj,
            op,
            tag,
            value: value.clone(),
        };
        assert_eq!(put.data_size(), 100);
        assert_eq!(put.kind(), "PUT-DATA");

        let query = LdsMessage::QueryTag { obj, op };
        assert_eq!(query.data_size(), 0, "metadata is free");

        let coded = LdsMessage::DataResp {
            obj,
            op,
            tag: Some(tag),
            payload: ReadPayload::Coded(Share::new(0, vec![1; 25])),
        };
        assert_eq!(coded.data_size(), 25);

        let miss = LdsMessage::DataResp {
            obj,
            op,
            tag: None,
            payload: ReadPayload::None,
        };
        assert_eq!(miss.data_size(), 0);

        let helper = LdsMessage::SendHelperElem {
            obj,
            reader: ProcessId(9),
            op,
            tag,
            helper: HelperData::new(5, 1, vec![0; 7]),
        };
        assert_eq!(helper.data_size(), 7);
        assert_eq!(helper.kind(), "SEND-HELPER-ELEM");

        let bcast = LdsMessage::BcastDeliver {
            obj,
            tag,
            origin: ProcessId(2),
        };
        assert_eq!(bcast.data_size(), 0);
        assert_eq!(bcast.kind(), "COMMIT-TAG");
    }

    #[test]
    fn metadata_classification_matches_cost_model() {
        let obj = ObjectId(0);
        let op = OpId::new(ClientId(1), 0);
        let tag = Tag::initial();
        // The aggregatable metadata messages: broadcasts, queries, acks.
        assert!(LdsMessage::BcastSend {
            obj,
            tag,
            origin: ProcessId(1)
        }
        .is_metadata());
        assert!(LdsMessage::BcastDeliver {
            obj,
            tag,
            origin: ProcessId(1)
        }
        .is_metadata());
        assert!(LdsMessage::QueryTag { obj, op }.is_metadata());
        assert!(LdsMessage::AckPutData { obj, op, tag }.is_metadata());
        assert!(LdsMessage::AckCodeElem { obj, tag }.is_metadata());
        // Data-carrying messages are not aggregated.
        assert!(!LdsMessage::PutData {
            obj,
            op,
            tag,
            value: Value::from("payload")
        }
        .is_metadata());
        assert!(!LdsMessage::WriteCodeElem {
            obj,
            tag,
            element: Share::new(0, vec![1, 2, 3])
        }
        .is_metadata());
    }

    #[test]
    fn stripe_messages_carry_data_and_route_by_object() {
        let obj = ObjectId(4);
        let op = OpId::new(ClientId(2), 1);
        let tag = Tag::new(3, ClientId(2));
        let put = LdsMessage::PutStripe {
            obj,
            op,
            tag,
            seq: 1,
            count: 4,
            stripe: Value::new(vec![0u8; 64]),
        };
        assert_eq!(put.data_size(), 64);
        assert_eq!(put.kind(), "PUT-STRIPE");
        assert_eq!(put.object(), obj);
        assert!(!put.is_metadata() && !put.batchable() && !put.fanout());

        let wcs = LdsMessage::WriteCodeStripe {
            obj,
            tag,
            seq: 0,
            count: 4,
            part: Share::new(5, vec![0u8; 10]),
        };
        assert_eq!(wcs.data_size(), 10);
        assert_eq!(wcs.kind(), "WRITE-CODE-STRIPE");
        assert_eq!(wcs.object(), obj);
        assert!(!wcs.is_metadata() && !wcs.batchable() && !wcs.fanout());
    }

    #[test]
    fn repair_messages_classify_for_batching_and_fanout() {
        let obj = ObjectId(3);
        let tag = Tag::new(2, ClientId(1));
        let help = LdsMessage::RepairHelp {
            obj,
            failed: ProcessId(7),
        };
        assert!(help.is_metadata());
        assert!(help.fanout());
        assert_eq!(help.kind(), "REPAIR-HELP");

        let done = LdsMessage::RepairDone {
            obj,
            objects: 5,
            bytes_by_helper: vec![(ProcessId(4), 100)],
            fallback_bytes: 300,
        };
        assert!(done.is_metadata());
        assert!(done.fanout());

        // Coded repair symbols count their payload bytes and route by object.
        let share = LdsMessage::RepairShare {
            obj,
            payload: RepairPayload::Element {
                tag,
                element_len: 9,
                helper: HelperData::new(5, 2, vec![1, 2, 3]),
            },
        };
        assert_eq!(share.data_size(), 3);
        assert!(!share.is_metadata());
        assert!(!share.fanout());
        assert_eq!(share.object(), obj);

        // Metadata snapshots count only the live values, not the tags.
        let meta = LdsMessage::RepairShare {
            obj,
            payload: RepairPayload::Meta {
                tc: tag,
                entries: vec![
                    (tag, Some(Value::from("live"))),
                    (Tag::new(1, ClientId(1)), None),
                ],
            },
        };
        assert_eq!(meta.data_size(), 4);

        // No repair message may be aggregated — even a payload-free snapshot
        // must keep its place ahead of the fan-out done marker — while the
        // COMMIT-TAG broadcasts remain batchable.
        let empty_meta = LdsMessage::RepairShare {
            obj,
            payload: RepairPayload::Meta {
                tc: tag,
                entries: vec![(tag, None)],
            },
        };
        assert!(empty_meta.is_metadata() && !empty_meta.batchable());
        assert!(!help.batchable());
        assert!(!done.batchable());
        assert!(LdsMessage::BcastDeliver {
            obj,
            tag,
            origin: ProcessId(1)
        }
        .batchable());
    }

    #[test]
    fn event_accessors() {
        let e = ProtocolEvent::WriteCompleted {
            op: OpId::new(ClientId(3), 7),
            obj: ObjectId(2),
            tag: Tag::new(4, ClientId(3)),
            value: Value::from("x"),
            invoked_at: SimTime::ZERO,
        };
        assert_eq!(e.op(), OpId::new(ClientId(3), 7));
        assert_eq!(e.object(), ObjectId(2));
        assert_eq!(e.tag(), Tag::new(4, ClientId(3)));
    }
}
