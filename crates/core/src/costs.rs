//! Closed-form performance costs from §V of the paper (Lemmas V.2–V.5 and
//! Lemma V.4's latency bounds).
//!
//! All communication and storage costs are normalised by the value size, as
//! in the paper. The benchmark harness compares these predictions against
//! measured values from the simulator.

use crate::params::SystemParams;

/// Communication cost of a write operation (Lemma V.2):
/// `n1 + n1·n2·2d / (k(2d − k + 1))`, which is `Θ(n1)`.
pub fn write_cost(params: &SystemParams) -> f64 {
    let (n1, n2, k, d) = (
        params.n1() as f64,
        params.n2() as f64,
        params.k() as f64,
        params.d() as f64,
    );
    n1 + n1 * n2 * 2.0 * d / (k * (2.0 * d - k + 1.0))
}

/// Communication cost of a successful read operation (Lemma V.2):
/// `n1·(1 + n2/d)·2d / (k(2d − k + 1)) + n1·I(δ > 0)`, which is
/// `Θ(1) + n1·I(δ > 0)`.
pub fn read_cost(params: &SystemParams, concurrency_delta: usize) -> f64 {
    let (n1, n2, k, d) = (
        params.n1() as f64,
        params.n2() as f64,
        params.k() as f64,
        params.d() as f64,
    );
    let base = n1 * (1.0 + n2 / d) * 2.0 * d / (k * (2.0 * d - k + 1.0));
    base + if concurrency_delta > 0 { n1 } else { 0.0 }
}

/// Permanent (L2) storage cost for a single object (Lemma V.3):
/// `2·d·n2 / (k(2d − k + 1))`, which is `Θ(1)`.
pub fn l2_storage_cost(params: &SystemParams) -> f64 {
    let (n2, k, d) = (params.n2() as f64, params.k() as f64, params.d() as f64);
    2.0 * d * n2 / (k * (2.0 * d - k + 1.0))
}

/// Permanent (L2) storage cost for a single object if replication were used
/// instead of the MBR code (the comparison made below Fig. 6): `n2`.
pub fn l2_storage_cost_replication(params: &SystemParams) -> f64 {
    params.n2() as f64
}

/// Permanent (L2) storage cost for a single object at the MSR point
/// (Remark 2): `n2 / k`.
pub fn l2_storage_cost_msr(params: &SystemParams) -> f64 {
    params.n2() as f64 / params.k() as f64
}

/// Worst-case temporary (L1) storage cost in the multi-object system of
/// Lemma V.5: `⌈5 + 2µ⌉·θ·n1`, where `µ = τ2/τ1` and `θ` bounds the number of
/// concurrent extended writes per `τ1` interval. (Assumes the lemma's
/// symmetric configuration `n1 = n2`, `f1 = f2`, `τ0 = τ1`.)
pub fn l1_storage_bound_multi_object(params: &SystemParams, theta: f64, mu: f64) -> f64 {
    (5.0 + 2.0 * mu).ceil() * theta * params.n1() as f64
}

/// Permanent (L2) storage cost for `n_objects` objects in the symmetric
/// configuration of Lemma V.5 (`k = d`): `2·N·n2 / (k + 1)`.
pub fn l2_storage_bound_multi_object(params: &SystemParams, n_objects: usize) -> f64 {
    2.0 * n_objects as f64 * params.n2() as f64 / (params.k() as f64 + 1.0)
}

/// The threshold on the write rate θ below which permanent storage dominates
/// (Lemma V.5): `θ << N·n2·k / (n1·µ)`.
pub fn theta_threshold(params: &SystemParams, n_objects: usize, mu: f64) -> f64 {
    n_objects as f64 * params.n2() as f64 * params.k() as f64 / (params.n1() as f64 * mu)
}

/// Link-latency bounds (τ0, τ1, τ2) used by the latency analysis of §V-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBounds {
    /// Bound on L1 ↔ L1 links.
    pub tau0: f64,
    /// Bound on client ↔ L1 links.
    pub tau1: f64,
    /// Bound on L1 ↔ L2 links.
    pub tau2: f64,
}

impl LatencyBounds {
    /// Creates a bound set.
    pub fn new(tau0: f64, tau1: f64, tau2: f64) -> Self {
        LatencyBounds { tau0, tau1, tau2 }
    }

    /// The ratio `µ = τ2 / τ1`.
    pub fn mu(&self) -> f64 {
        self.tau2 / self.tau1
    }

    /// Upper bound on the duration of a successful write (Lemma V.4):
    /// `4·τ1 + 2·τ0`.
    pub fn write_latency_bound(&self) -> f64 {
        4.0 * self.tau1 + 2.0 * self.tau0
    }

    /// Upper bound on the duration of the *extended* write (Lemma V.4):
    /// `max(3·τ1 + 2·τ0 + 2·τ2, 4·τ1 + 2·τ0)`.
    pub fn extended_write_latency_bound(&self) -> f64 {
        (3.0 * self.tau1 + 2.0 * self.tau0 + 2.0 * self.tau2).max(4.0 * self.tau1 + 2.0 * self.tau0)
    }

    /// Upper bound on the duration of a successful read (Lemma V.4):
    /// `max(6·τ1 + 2·τ2, 6·τ1 + 2·τ0 + τ2)`.
    ///
    /// The paper states the bound as `max(6τ1 + 2τ2, 5τ1 + 2τ0 + τ2)` in the
    /// lemma and derives `max(4τ1 + 2τ2, 4τ1 + τ2 + 2τ0) + 2τ1` in the
    /// appendix; we use the (slightly looser) appendix form, which is the one
    /// the proof actually establishes.
    pub fn read_latency_bound(&self) -> f64 {
        (6.0 * self.tau1 + 2.0 * self.tau2).max(6.0 * self.tau1 + 2.0 * self.tau0 + self.tau2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_params() -> SystemParams {
        // Fig. 6 configuration: n1 = n2 = 100, k = d = 80.
        SystemParams::symmetric(100, 10).unwrap()
    }

    #[test]
    fn write_cost_is_theta_n1() {
        // With n1 = Θ(n2), k = Θ(n2), d = Θ(n2), the second term is Θ(1)·n1's
        // order; check the formula value and the linear growth in n1.
        let small = SystemParams::symmetric(20, 2).unwrap();
        let large = SystemParams::symmetric(100, 10).unwrap();
        let ratio = write_cost(&large) / write_cost(&small);
        assert!(
            ratio > 3.0 && ratio < 7.0,
            "write cost should scale roughly with n1, got {ratio}"
        );
        // Explicit value for the paper configuration.
        let p = paper_params();
        let expected = 100.0 + 100.0 * 100.0 * 160.0 / (80.0 * 81.0);
        assert!((write_cost(&p) - expected).abs() < 1e-9);
    }

    #[test]
    fn read_cost_is_constant_without_concurrency() {
        // δ = 0: the read cost should not grow with n1.
        let costs: Vec<f64> = [20usize, 60, 100]
            .iter()
            .map(|&n| read_cost(&SystemParams::symmetric(n, n / 10).unwrap(), 0))
            .collect();
        let spread = costs.iter().cloned().fold(f64::MIN, f64::max)
            - costs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread < 1.5,
            "read cost at delta=0 is Θ(1), spread was {spread}: {costs:?}"
        );
        // δ > 0 adds n1.
        let p = paper_params();
        assert!((read_cost(&p, 3) - read_cost(&p, 0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn l2_storage_cost_matches_lemma() {
        let p = paper_params();
        // 2 d n2 / (k (2d - k + 1)) = 2*80*100 / (80 * 81) = 200/81 ≈ 2.47.
        assert!((l2_storage_cost(&p) - 200.0 / 81.0).abs() < 1e-9);
        // The paper highlights this is < 3 per object, vs 100 for replication.
        assert!(l2_storage_cost(&p) < 3.0);
        assert_eq!(l2_storage_cost_replication(&p), 100.0);
        assert!((l2_storage_cost_msr(&p) - 1.25).abs() < 1e-9);
    }

    #[test]
    fn multi_object_bounds_match_figure_6() {
        let p = paper_params();
        let theta = 100.0;
        let mu = 10.0;
        // L1 bound: ceil(5 + 20) * 100 * 100 = 250_000, independent of N.
        assert!((l1_storage_bound_multi_object(&p, theta, mu) - 250_000.0).abs() < 1e-6);
        // L2 bound grows linearly in N: 2*N*100/81.
        let at_1000 = l2_storage_bound_multi_object(&p, 1000);
        let at_2000 = l2_storage_bound_multi_object(&p, 2000);
        assert!((at_2000 / at_1000 - 2.0).abs() < 1e-9);
        assert!((at_1000 - 2000.0 * 100.0 / 81.0).abs() < 1e-6);
        // Crossover: for very large N the L2 cost dominates (the L1 bound is
        // independent of N, so the linear L2 term overtakes it eventually —
        // here around N ≈ 101k).
        assert!(
            l2_storage_bound_multi_object(&p, 200_000)
                > l1_storage_bound_multi_object(&p, theta, mu)
        );
        assert!(
            l2_storage_bound_multi_object(&p, 10_000)
                < l1_storage_bound_multi_object(&p, theta, mu)
        );
        assert!(theta_threshold(&p, 10_000, mu) > theta);
    }

    #[test]
    fn latency_bounds() {
        let b = LatencyBounds::new(1.0, 1.0, 10.0);
        assert_eq!(b.mu(), 10.0);
        assert_eq!(b.write_latency_bound(), 6.0);
        assert_eq!(b.extended_write_latency_bound(), 25.0);
        assert_eq!(b.read_latency_bound(), 26.0);
        // τ2 dominates in edge settings: read latency grows with τ2, write
        // latency does not (the key benefit of the layered design).
        let far = LatencyBounds::new(1.0, 1.0, 100.0);
        assert_eq!(far.write_latency_bound(), b.write_latency_bound());
        assert!(far.read_latency_bound() > b.read_latency_bound());
    }
}
