//! The pluggable back-end (L2) codec.
//!
//! LDS stores the object in L2 as coded elements of a code `C` of length
//! `n = n1 + n2`: the last `n2` code symbols (the code `C2`) live on the L2
//! servers, and the first `n1` symbols (the code `C1`) are what L1 servers
//! *regenerate* during reads and what readers decode from.
//!
//! The paper fixes `C` to a product-matrix MBR code (the choice that yields
//! `Θ(1)` read cost and `Θ(1)` per-object permanent storage); this module
//! also provides the alternatives the paper argues against, so the benchmark
//! harness can reproduce the comparisons of Remarks 1–2 and Fig. 6:
//!
//! * [`BackendKind::Mbr`] — the paper's choice.
//! * [`BackendKind::MsrPoint`] — an MDS code at the minimum-storage point
//!   with naive repair (equivalent to an MSR code when `k = d`, i.e. the
//!   symmetric configuration of Remark 1); implemented with Reed–Solomon.
//! * [`BackendKind::ProductMatrixMsr`] — a true product-matrix MSR code
//!   (`d_code = 2k − 2`), usable when the layer parameters admit it.
//! * [`BackendKind::Replication`] — full replication in L2 (the "cost would
//!   have been `n2`" comparison under Fig. 6).

use crate::params::SystemParams;
use crate::value::Value;
use lds_codes::mbr::ProductMatrixMbr;
use lds_codes::msr::ProductMatrixMsr;
use lds_codes::rs::ReedSolomon;
use lds_codes::{CodeError, CodeParams, ErasureCode, HelperData, RegeneratingCode, Share};
use std::fmt;
use std::sync::Arc;

/// Which code family the back-end layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Product-matrix MBR regenerating code (the paper's design point).
    Mbr,
    /// MDS code at the minimum-storage point with naive (full-share) repair —
    /// what an MSR code degenerates to when `k = d` (Remark 1).
    MsrPoint,
    /// Product-matrix MSR code with `d_code = 2k − 2` exact repair.
    ProductMatrixMsr,
    /// Full replication in L2.
    Replication,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BackendKind::Mbr => "MBR",
            BackendKind::MsrPoint => "MSR-point(k=d)",
            BackendKind::ProductMatrixMsr => "PM-MSR",
            BackendKind::Replication => "replication",
        };
        f.write_str(s)
    }
}

/// Operations the LDS protocol needs from the back-end code.
///
/// Indices `0..n1` denote L1 servers (code `C1`), indices `n1..n1+n2` denote
/// L2 servers (code `C2`), matching the paper's numbering `s_1 … s_{n1+n2}`.
pub trait BackendCodec: Send + Sync {
    /// The code family.
    fn kind(&self) -> BackendKind;

    /// Number of L1 servers.
    fn n1(&self) -> usize;

    /// Number of L2 servers.
    fn n2(&self) -> usize;

    /// How many coded elements (of `C1`) a reader needs to decode a value.
    fn decode_threshold(&self) -> usize;

    /// How many helper payloads an L1 server needs to regenerate its coded
    /// element.
    fn repair_threshold(&self) -> usize;

    /// Computes the coded element `c_{n1 + l2_index}` stored by L2 server
    /// `l2_index` for `value` (used by the internal `write-to-L2` operation).
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if the index is out of range.
    fn encode_l2_element(&self, value: &Value, l2_index: usize) -> Result<Share, CodeError>;

    /// Buffer-reuse variant of [`BackendCodec::encode_l2_element`]: writes the
    /// coded bytes into `out` (cleared first, capacity reused). Coded
    /// backends route this through the code's `encode_share_into`, so the
    /// steady-state write path performs no temporary-matrix or per-symbol
    /// allocation.
    ///
    /// # Errors
    ///
    /// As for [`BackendCodec::encode_l2_element`].
    fn encode_l2_element_into(
        &self,
        value: &Value,
        l2_index: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        let share = self.encode_l2_element(value, l2_index)?;
        out.clear();
        out.extend_from_slice(&share.data);
        Ok(())
    }

    /// Encodes the coded elements of **every** L2 server for `value` into
    /// `outs` (one buffer per server, each cleared first, capacity reused).
    /// This is the per-write hot path of `write-to-L2`; the MBR backend
    /// overrides the per-element default to frame the value once for all
    /// `n2` elements instead of once per element.
    ///
    /// # Errors
    ///
    /// As for [`BackendCodec::encode_l2_element`]. `outs` must have exactly
    /// `n2` buffers.
    fn encode_l2_elements_into(
        &self,
        value: &Value,
        outs: &mut [Vec<u8>],
    ) -> Result<(), CodeError> {
        for (i, out) in outs.iter_mut().enumerate() {
            self.encode_l2_element_into(value, i, out)?;
        }
        Ok(())
    }

    /// Like [`BackendCodec::encode_l2_elements_into`], but frames the value
    /// into the caller-owned `scratch` buffer instead of allocating one per
    /// call. The chunk-striped offload path encodes many stripes back to
    /// back with one pooled scratch; the default ignores `scratch`, and the
    /// MBR backend overrides it to route through the code's scratch-framing
    /// span encode.
    ///
    /// # Errors
    ///
    /// As for [`BackendCodec::encode_l2_elements_into`].
    fn encode_l2_elements_scratch(
        &self,
        value: &Value,
        outs: &mut [Vec<u8>],
        scratch: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        let _ = scratch;
        self.encode_l2_elements_into(value, outs)
    }

    /// The coded element held by L2 server `l2_index` for the initial value
    /// `v0` (every L2 server starts from this state).
    fn initial_l2_element(&self, l2_index: usize) -> Share;

    /// Helper payload computed by L2 server `l2_index` to help L1 server
    /// `l1_index` regenerate its coded element (`regenerate-from-L2-resp`).
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] on malformed input.
    fn helper_for_l1(
        &self,
        l2_element: &Share,
        l2_index: usize,
        l1_index: usize,
    ) -> Result<HelperData, CodeError>;

    /// Regenerates the coded element `c_{l1_index}` from helper payloads
    /// (`regenerate-from-L2-complete`). At least
    /// [`BackendCodec::repair_threshold`] distinct helpers are required.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if too few or inconsistent helpers are given.
    fn regenerate_l1(&self, l1_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError>;

    /// Repair symbol computed by live L2 server `l2_index` towards the
    /// online regeneration of crashed L2 server `failed_l2_index`'s coded
    /// element. The MBR backend ships the bandwidth-optimal `β`-sized
    /// product-matrix helper (`1/α` of its element); the MSR backend its
    /// exact-repair symbol; Reed–Solomon and replication fall back to
    /// shipping the whole element for decode-and-re-encode.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] on out-of-range indices or malformed elements.
    fn helper_for_l2(
        &self,
        l2_element: &Share,
        l2_index: usize,
        failed_l2_index: usize,
    ) -> Result<HelperData, CodeError>;

    /// Regenerates the coded element `c_{n1 + l2_index}` of a crashed L2
    /// server from repair symbols produced by [`BackendCodec::helper_for_l2`]
    /// (at least [`BackendCodec::repair_threshold`] distinct helpers).
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if too few or inconsistent helpers are given.
    fn regenerate_l2(&self, l2_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError>;

    /// Builds and memoizes the repair plan for regenerating an L2 element
    /// from the given helper **L2 indices** (the one-time matrix inversion),
    /// so a node-repair run pays it before per-object payloads stream in.
    /// Backends whose repair needs no per-set plan do nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] when the index set cannot form a repair plan.
    fn prepare_l2_repair(&self, helper_l2_indices: &[usize]) -> Result<(), CodeError> {
        let _ = helper_l2_indices;
        Ok(())
    }

    /// Decodes a value from coded elements of `C1` (used by readers when they
    /// receive `k` coded elements for a common tag).
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if too few or inconsistent shares are given.
    fn decode_from_l1(&self, shares: &[Share]) -> Result<Vec<u8>, CodeError>;

    /// Buffer-reuse variant of [`BackendCodec::decode_from_l1`]: writes the
    /// decoded value into `out` (cleared first, capacity reused). Readers
    /// call this with a per-client scratch buffer, so repeated decode
    /// attempts while responses trickle in do not re-allocate.
    ///
    /// # Errors
    ///
    /// As for [`BackendCodec::decode_from_l1`].
    fn decode_from_l1_into(&self, shares: &[Share], out: &mut Vec<u8>) -> Result<(), CodeError> {
        let value = self.decode_from_l1(shares)?;
        out.clear();
        out.extend_from_slice(&value);
        Ok(())
    }

    /// Primes the codec's memoized plans for the steady-state index sets:
    /// the per-node encode generators and the canonical first-`k` /
    /// first-`d` decode and repair quorums. Called once at cluster / runner
    /// start-up so the first client operation does not pay the one-time
    /// inversion cost.
    fn warm_plans(&self) {}
}

/// Creates the backend codec of the requested kind for the given system
/// parameters.
///
/// # Errors
///
/// Returns a [`CodeError`] if the requested code cannot be constructed for
/// these parameters (e.g. a true product-matrix MSR code needs
/// `d ≥ 2k − 2` and a small enough `n` for GF(256)).
pub fn make_backend(
    kind: BackendKind,
    params: &SystemParams,
) -> Result<Arc<dyn BackendCodec>, CodeError> {
    let n = params.code_length();
    let (n1, n2, k, d) = (params.n1(), params.n2(), params.k(), params.d());
    match kind {
        BackendKind::Mbr => {
            let code = ProductMatrixMbr::new(CodeParams::mbr(n, k, d)?)?;
            Ok(Arc::new(MbrBackend { code, n1, n2, d }))
        }
        BackendKind::MsrPoint => {
            let code = ReedSolomon::new(CodeParams::reed_solomon(n, k)?)?;
            Ok(Arc::new(RsBackend { code, n1, n2 }))
        }
        BackendKind::ProductMatrixMsr => {
            if d < 2 * k - 2 {
                return Err(CodeError::InvalidParameters(format!(
                    "product-matrix MSR needs d >= 2k - 2, got k={k}, d={d}"
                )));
            }
            let code = ProductMatrixMsr::new(CodeParams::msr(n, k)?)?;
            Ok(Arc::new(MsrBackend { code, n1, n2 }))
        }
        BackendKind::Replication => Ok(Arc::new(ReplicationBackend { n1, n2 })),
    }
}

/// MBR-coded back-end (the paper's design).
struct MbrBackend {
    code: ProductMatrixMbr,
    n1: usize,
    n2: usize,
    d: usize,
}

impl BackendCodec for MbrBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mbr
    }
    fn n1(&self) -> usize {
        self.n1
    }
    fn n2(&self) -> usize {
        self.n2
    }
    fn decode_threshold(&self) -> usize {
        self.code.params().k()
    }
    fn repair_threshold(&self) -> usize {
        self.d
    }
    fn encode_l2_element(&self, value: &Value, l2_index: usize) -> Result<Share, CodeError> {
        self.code.encode_share(value.as_bytes(), self.n1 + l2_index)
    }
    fn encode_l2_element_into(
        &self,
        value: &Value,
        l2_index: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        self.code
            .encode_share_into(value.as_bytes(), self.n1 + l2_index, out)
    }
    fn encode_l2_elements_into(
        &self,
        value: &Value,
        outs: &mut [Vec<u8>],
    ) -> Result<(), CodeError> {
        // One framing for all n2 elements (see `encode_share_span_into`).
        self.code
            .encode_share_span_into(value.as_bytes(), self.n1, outs)
    }
    fn encode_l2_elements_scratch(
        &self,
        value: &Value,
        outs: &mut [Vec<u8>],
        scratch: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        self.code
            .encode_share_span_scratch(value.as_bytes(), self.n1, outs, scratch)
    }
    fn initial_l2_element(&self, l2_index: usize) -> Share {
        self.code
            .encode_share(Value::initial().as_bytes(), self.n1 + l2_index)
            .expect("initial value encoding cannot fail for valid indices")
    }
    fn helper_for_l1(
        &self,
        l2_element: &Share,
        _l2_index: usize,
        l1_index: usize,
    ) -> Result<HelperData, CodeError> {
        self.code.helper_data(l2_element, l1_index)
    }
    fn regenerate_l1(&self, l1_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError> {
        self.code.repair(l1_index, helpers)
    }
    fn helper_for_l2(
        &self,
        l2_element: &Share,
        _l2_index: usize,
        failed_l2_index: usize,
    ) -> Result<HelperData, CodeError> {
        self.code.helper_data(l2_element, self.n1 + failed_l2_index)
    }
    fn regenerate_l2(&self, l2_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError> {
        self.code.repair(self.n1 + l2_index, helpers)
    }
    fn prepare_l2_repair(&self, helper_l2_indices: &[usize]) -> Result<(), CodeError> {
        let indices: Vec<usize> = helper_l2_indices.iter().map(|&i| self.n1 + i).collect();
        ProductMatrixMbr::prepare_repair(&self.code, &indices)
    }
    fn decode_from_l1(&self, shares: &[Share]) -> Result<Vec<u8>, CodeError> {
        self.code.decode(shares)
    }
    fn decode_from_l1_into(&self, shares: &[Share], out: &mut Vec<u8>) -> Result<(), CodeError> {
        self.code.decode_into(shares, out)
    }
    fn warm_plans(&self) {
        // The canonical steady-state quorums: readers decode from the first k
        // L1 elements, L1 servers regenerate from the first d L2 helpers.
        let _ = self
            .code
            .prepare_decode(&(0..self.code.params().k()).collect::<Vec<_>>());
        let _ = self
            .code
            .prepare_repair(&(self.n1..self.n1 + self.d).collect::<Vec<_>>());
    }
}

/// MDS (Reed–Solomon) back-end: minimum storage, naive repair.
struct RsBackend {
    code: ReedSolomon,
    n1: usize,
    n2: usize,
}

impl BackendCodec for RsBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::MsrPoint
    }
    fn n1(&self) -> usize {
        self.n1
    }
    fn n2(&self) -> usize {
        self.n2
    }
    fn decode_threshold(&self) -> usize {
        self.code.params().k()
    }
    fn repair_threshold(&self) -> usize {
        self.code.params().k()
    }
    fn encode_l2_element(&self, value: &Value, l2_index: usize) -> Result<Share, CodeError> {
        self.code.encode_share(value.as_bytes(), self.n1 + l2_index)
    }
    fn encode_l2_element_into(
        &self,
        value: &Value,
        l2_index: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        self.code
            .encode_share_into(value.as_bytes(), self.n1 + l2_index, out)
    }
    fn initial_l2_element(&self, l2_index: usize) -> Share {
        self.code
            .encode_share(Value::initial().as_bytes(), self.n1 + l2_index)
            .expect("initial value encoding cannot fail for valid indices")
    }
    fn helper_for_l1(
        &self,
        l2_element: &Share,
        _l2_index: usize,
        l1_index: usize,
    ) -> Result<HelperData, CodeError> {
        self.code.helper_data(l2_element, l1_index)
    }
    fn regenerate_l1(&self, l1_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError> {
        self.code.repair(l1_index, helpers)
    }
    fn helper_for_l2(
        &self,
        l2_element: &Share,
        _l2_index: usize,
        failed_l2_index: usize,
    ) -> Result<HelperData, CodeError> {
        // Naive repair: the helper ships its whole element.
        self.code.helper_data(l2_element, self.n1 + failed_l2_index)
    }
    fn regenerate_l2(&self, l2_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError> {
        // Decode-and-re-encode fallback, inside the code's naive repair.
        self.code.repair(self.n1 + l2_index, helpers)
    }
    fn decode_from_l1(&self, shares: &[Share]) -> Result<Vec<u8>, CodeError> {
        self.code.decode(shares)
    }
    fn decode_from_l1_into(&self, shares: &[Share], out: &mut Vec<u8>) -> Result<(), CodeError> {
        self.code.decode_into(shares, out)
    }
    fn warm_plans(&self) {
        let _ = self
            .code
            .prepare_decode(&(0..self.code.params().k()).collect::<Vec<_>>());
    }
}

/// True product-matrix MSR back-end (`d_code = 2k − 2`).
struct MsrBackend {
    code: ProductMatrixMsr,
    n1: usize,
    n2: usize,
}

impl BackendCodec for MsrBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::ProductMatrixMsr
    }
    fn n1(&self) -> usize {
        self.n1
    }
    fn n2(&self) -> usize {
        self.n2
    }
    fn decode_threshold(&self) -> usize {
        self.code.params().k()
    }
    fn repair_threshold(&self) -> usize {
        self.code.params().d()
    }
    fn encode_l2_element(&self, value: &Value, l2_index: usize) -> Result<Share, CodeError> {
        self.code.encode_share(value.as_bytes(), self.n1 + l2_index)
    }
    fn encode_l2_element_into(
        &self,
        value: &Value,
        l2_index: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        self.code
            .encode_share_into(value.as_bytes(), self.n1 + l2_index, out)
    }
    fn initial_l2_element(&self, l2_index: usize) -> Share {
        self.code
            .encode_share(Value::initial().as_bytes(), self.n1 + l2_index)
            .expect("initial value encoding cannot fail for valid indices")
    }
    fn helper_for_l1(
        &self,
        l2_element: &Share,
        _l2_index: usize,
        l1_index: usize,
    ) -> Result<HelperData, CodeError> {
        self.code.helper_data(l2_element, l1_index)
    }
    fn regenerate_l1(&self, l1_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError> {
        self.code.repair(l1_index, helpers)
    }
    fn helper_for_l2(
        &self,
        l2_element: &Share,
        _l2_index: usize,
        failed_l2_index: usize,
    ) -> Result<HelperData, CodeError> {
        self.code.helper_data(l2_element, self.n1 + failed_l2_index)
    }
    fn regenerate_l2(&self, l2_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError> {
        self.code.repair(self.n1 + l2_index, helpers)
    }
    fn prepare_l2_repair(&self, helper_l2_indices: &[usize]) -> Result<(), CodeError> {
        let indices: Vec<usize> = helper_l2_indices.iter().map(|&i| self.n1 + i).collect();
        ProductMatrixMsr::prepare_repair(&self.code, &indices)
    }
    fn decode_from_l1(&self, shares: &[Share]) -> Result<Vec<u8>, CodeError> {
        self.code.decode(shares)
    }
    fn decode_from_l1_into(&self, shares: &[Share], out: &mut Vec<u8>) -> Result<(), CodeError> {
        self.code.decode_into(shares, out)
    }
    fn warm_plans(&self) {
        let d_code = self.code.params().d();
        let _ = self
            .code
            .prepare_decode(&(0..self.code.params().k()).collect::<Vec<_>>());
        let _ = self
            .code
            .prepare_repair(&(self.n1..self.n1 + d_code).collect::<Vec<_>>());
    }
}

/// Replicated back-end: every L2 server stores the full value.
struct ReplicationBackend {
    n1: usize,
    n2: usize,
}

impl BackendCodec for ReplicationBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Replication
    }
    fn n1(&self) -> usize {
        self.n1
    }
    fn n2(&self) -> usize {
        self.n2
    }
    fn decode_threshold(&self) -> usize {
        // A single full copy decodes the value; decode_from_l1 accepts any
        // non-empty set.
        1
    }
    fn repair_threshold(&self) -> usize {
        1
    }
    fn encode_l2_element(&self, value: &Value, l2_index: usize) -> Result<Share, CodeError> {
        if l2_index >= self.n2 {
            return Err(CodeError::IndexOutOfRange {
                index: l2_index,
                n: self.n2,
            });
        }
        Ok(Share::new(self.n1 + l2_index, value.as_bytes().to_vec()))
    }
    fn initial_l2_element(&self, l2_index: usize) -> Share {
        Share::new(self.n1 + l2_index, Vec::new())
    }
    fn helper_for_l1(
        &self,
        l2_element: &Share,
        l2_index: usize,
        l1_index: usize,
    ) -> Result<HelperData, CodeError> {
        if l1_index >= self.n1 {
            return Err(CodeError::IndexOutOfRange {
                index: l1_index,
                n: self.n1,
            });
        }
        Ok(HelperData::new(
            self.n1 + l2_index,
            l1_index,
            l2_element.data.clone(),
        ))
    }
    fn regenerate_l1(&self, l1_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError> {
        let first = helpers
            .first()
            .ok_or(CodeError::NotEnoughShares { needed: 1, got: 0 })?;
        Ok(Share::new(l1_index, first.data.clone()))
    }
    fn helper_for_l2(
        &self,
        l2_element: &Share,
        l2_index: usize,
        failed_l2_index: usize,
    ) -> Result<HelperData, CodeError> {
        if failed_l2_index >= self.n2 {
            return Err(CodeError::IndexOutOfRange {
                index: failed_l2_index,
                n: self.n2,
            });
        }
        // The replica itself is the repair payload.
        Ok(HelperData::new(
            self.n1 + l2_index,
            self.n1 + failed_l2_index,
            l2_element.data.clone(),
        ))
    }
    fn regenerate_l2(&self, l2_index: usize, helpers: &[HelperData]) -> Result<Share, CodeError> {
        let first = helpers
            .first()
            .ok_or(CodeError::NotEnoughShares { needed: 1, got: 0 })?;
        Ok(Share::new(self.n1 + l2_index, first.data.clone()))
    }
    fn decode_from_l1(&self, shares: &[Share]) -> Result<Vec<u8>, CodeError> {
        let first = shares
            .first()
            .ok_or(CodeError::NotEnoughShares { needed: 1, got: 0 })?;
        Ok(first.data.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SystemParams {
        SystemParams::for_failures(1, 1, 3, 5).unwrap() // n1=5, n2=7, k=3, d=5
    }

    fn roundtrip_through_backend(kind: BackendKind) {
        let p = params();
        let backend = make_backend(kind, &p).unwrap();
        assert_eq!(backend.kind(), kind);
        assert_eq!(backend.n1(), 5);
        assert_eq!(backend.n2(), 7);
        let value = Value::from("layered data storage value");

        // write-to-L2 path: every L2 server gets its coded element.
        let l2_elements: Vec<Share> = (0..7)
            .map(|i| backend.encode_l2_element(&value, i).unwrap())
            .collect();

        // regenerate-from-L2 path: L1 server 2 regenerates its element.
        let l1_index = 2;
        let helpers: Vec<HelperData> = l2_elements
            .iter()
            .enumerate()
            .take(backend.repair_threshold())
            .map(|(i, s)| backend.helper_for_l1(s, i, l1_index).unwrap())
            .collect();
        let regenerated = backend.regenerate_l1(l1_index, &helpers).unwrap();

        // reader path: decode from `decode_threshold` regenerated elements of C1.
        let mut c1_shares = Vec::new();
        for l1 in 0..backend.decode_threshold() {
            let helpers: Vec<HelperData> = l2_elements
                .iter()
                .enumerate()
                .take(backend.repair_threshold())
                .map(|(i, s)| backend.helper_for_l1(s, i, l1).unwrap())
                .collect();
            c1_shares.push(backend.regenerate_l1(l1, &helpers).unwrap());
        }
        assert_eq!(
            backend.decode_from_l1(&c1_shares).unwrap(),
            value.as_bytes()
        );
        assert_eq!(regenerated.index, l1_index);
    }

    #[test]
    fn mbr_backend_roundtrip() {
        roundtrip_through_backend(BackendKind::Mbr);
    }

    #[test]
    fn msr_point_backend_roundtrip() {
        roundtrip_through_backend(BackendKind::MsrPoint);
    }

    #[test]
    fn replication_backend_roundtrip() {
        roundtrip_through_backend(BackendKind::Replication);
    }

    #[test]
    fn product_matrix_msr_backend_roundtrip() {
        // Needs d >= 2k - 2: use k = 3, d = 5 > 4. OK.
        roundtrip_through_backend(BackendKind::ProductMatrixMsr);
    }

    #[test]
    fn product_matrix_msr_rejects_small_d() {
        // k = d = 3 < 2k - 2 = 4.
        let p = SystemParams::for_failures(1, 1, 3, 3).unwrap();
        assert!(make_backend(BackendKind::ProductMatrixMsr, &p).is_err());
    }

    #[test]
    fn l2_repair_roundtrip_across_backends() {
        let p = params(); // n1=5, n2=7, k=3, d=5
        let value = Value::from("regenerate a crashed back-end server");
        for kind in [
            BackendKind::Mbr,
            BackendKind::MsrPoint,
            BackendKind::ProductMatrixMsr,
            BackendKind::Replication,
        ] {
            let backend = make_backend(kind, &p).unwrap();
            let failed = 2usize;
            let helpers_l2: Vec<usize> = (0..7).filter(|&i| i != failed).collect();
            // Warm the plan for the canonical set, as the repair driver does.
            backend
                .prepare_l2_repair(&helpers_l2[..backend.repair_threshold()])
                .unwrap();
            let helpers: Vec<HelperData> = helpers_l2
                .iter()
                .take(backend.repair_threshold())
                .map(|&i| {
                    let elem = backend.encode_l2_element(&value, i).unwrap();
                    backend.helper_for_l2(&elem, i, failed).unwrap()
                })
                .collect();
            let regenerated = backend.regenerate_l2(failed, &helpers).unwrap();
            let direct = backend.encode_l2_element(&value, failed).unwrap();
            assert_eq!(regenerated, direct, "{kind}: exact element regeneration");
        }
    }

    #[test]
    fn mbr_l2_repair_helpers_are_beta_sized() {
        // The bandwidth story of the repair subsystem: an MBR helper ships
        // 1/α of its element, every fallback backend ships the whole thing.
        let p = params();
        let value = Value::new(vec![5u8; 4096]);
        let mbr = make_backend(BackendKind::Mbr, &p).unwrap();
        let rs = make_backend(BackendKind::MsrPoint, &p).unwrap();
        let elem = mbr.encode_l2_element(&value, 0).unwrap();
        let helper = mbr.helper_for_l2(&elem, 0, 3).unwrap();
        assert_eq!(helper.data.len() * p.d(), elem.data.len(), "β = element/α");
        let rs_elem = rs.encode_l2_element(&value, 0).unwrap();
        let rs_helper = rs.helper_for_l2(&rs_elem, 0, 3).unwrap();
        assert_eq!(rs_helper.data.len(), rs_elem.data.len(), "full fallback");
    }

    #[test]
    fn bulk_l2_encode_matches_per_element_encode() {
        let p = params();
        let value = Value::from("span-encoded write-to-L2 payload");
        for kind in [
            BackendKind::Mbr,
            BackendKind::MsrPoint,
            BackendKind::ProductMatrixMsr,
            BackendKind::Replication,
        ] {
            let backend = make_backend(kind, &p).unwrap();
            let mut outs: Vec<Vec<u8>> = (0..backend.n2()).map(|_| vec![0xAA; 3]).collect();
            backend.encode_l2_elements_into(&value, &mut outs).unwrap();
            for (i, out) in outs.iter().enumerate() {
                assert_eq!(
                    out,
                    &backend.encode_l2_element(&value, i).unwrap().data,
                    "{kind} element {i}"
                );
            }
        }
    }

    #[test]
    fn scratch_l2_encode_matches_bulk_encode() {
        let p = params();
        let value = Value::from("scratch-framed write-to-L2 payload");
        let mut scratch = vec![0xBB; 5]; // stale scratch must be discarded
        for kind in [
            BackendKind::Mbr,
            BackendKind::MsrPoint,
            BackendKind::ProductMatrixMsr,
            BackendKind::Replication,
        ] {
            let backend = make_backend(kind, &p).unwrap();
            let mut expected: Vec<Vec<u8>> = vec![Vec::new(); backend.n2()];
            backend
                .encode_l2_elements_into(&value, &mut expected)
                .unwrap();
            let mut outs: Vec<Vec<u8>> = (0..backend.n2()).map(|_| vec![0xAA; 3]).collect();
            backend
                .encode_l2_elements_scratch(&value, &mut outs, &mut scratch)
                .unwrap();
            assert_eq!(outs, expected, "{kind}");
        }
    }

    #[test]
    fn storage_sizes_differ_as_the_paper_predicts() {
        let p = SystemParams::symmetric(10, 2).unwrap(); // k = d = 6
        let value = Value::new(vec![7u8; 6000]);

        let mbr = make_backend(BackendKind::Mbr, &p).unwrap();
        let rs = make_backend(BackendKind::MsrPoint, &p).unwrap();
        let rep = make_backend(BackendKind::Replication, &p).unwrap();

        let mbr_elem = mbr.encode_l2_element(&value, 0).unwrap().data.len() as f64;
        let rs_elem = rs.encode_l2_element(&value, 0).unwrap().data.len() as f64;
        let rep_elem = rep.encode_l2_element(&value, 0).unwrap().data.len() as f64;

        // Replication stores the full value; MBR stores ~2/(k+1) of it
        // (~0.29), MSR-point ~1/k (~0.17).
        assert_eq!(rep_elem as usize, 6000);
        assert!(mbr_elem < 0.5 * rep_elem);
        assert!(rs_elem < mbr_elem);
        // MBR is at most 2x the MSR-point storage (Remark 2).
        assert!(mbr_elem <= 2.1 * rs_elem);
    }

    #[test]
    fn helper_sizes_differ_as_the_paper_predicts() {
        let p = SystemParams::symmetric(10, 2).unwrap();
        let value = Value::new(vec![3u8; 6000]);

        let mbr = make_backend(BackendKind::Mbr, &p).unwrap();
        let rs = make_backend(BackendKind::MsrPoint, &p).unwrap();

        let mbr_elem = mbr.encode_l2_element(&value, 0).unwrap();
        let rs_elem = rs.encode_l2_element(&value, 0).unwrap();
        let mbr_helper = mbr.helper_for_l1(&mbr_elem, 0, 1).unwrap().data.len() as f64;
        let rs_helper = rs.helper_for_l1(&rs_elem, 0, 1).unwrap().data.len() as f64;

        // MBR helper = 1/d of its element; RS ships the whole element. This
        // is exactly why the MBR read cost is Θ(1) while the MSR-point read
        // cost is Ω(n1) in the symmetric system (Remark 1).
        assert!(mbr_helper * (p.d() as f64 - 0.5) < mbr_elem.data.len() as f64);
        assert_eq!(rs_helper as usize, rs_elem.data.len());
    }

    #[test]
    fn initial_elements_decode_to_initial_value() {
        let p = params();
        for kind in [BackendKind::Mbr, BackendKind::MsrPoint] {
            let backend = make_backend(kind, &p).unwrap();
            let mut c1 = Vec::new();
            for l1 in 0..backend.decode_threshold() {
                let helpers: Vec<HelperData> = (0..backend.repair_threshold())
                    .map(|i| {
                        backend
                            .helper_for_l1(&backend.initial_l2_element(i), i, l1)
                            .unwrap()
                    })
                    .collect();
                c1.push(backend.regenerate_l1(l1, &helpers).unwrap());
            }
            assert_eq!(
                backend.decode_from_l1(&c1).unwrap(),
                Vec::<u8>::new(),
                "{kind}"
            );
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(BackendKind::Mbr.to_string(), "MBR");
        assert!(BackendKind::MsrPoint.to_string().contains("MSR"));
    }
}
