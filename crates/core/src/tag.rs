//! Tags, object identifiers and operation identifiers.

use std::fmt;

/// Identifier of a stored object.
///
/// The LDS algorithm implements one atomic object per instance; a multi-object
/// system runs `N` independent instances (paper §V-A.1). Messages carry the
/// object id so that one physical server process can host many instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(raw: u64) -> Self {
        ObjectId(raw)
    }
}

impl From<ObjectId> for u64 {
    fn from(id: ObjectId) -> Self {
        id.0
    }
}

impl ObjectId {
    /// The raw numeric key.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Identifier of a client (writer or reader).
///
/// Client ids are totally ordered; they break ties between tags with equal
/// integer part, exactly as in the paper (`t2 > t1` iff `t2.z > t1.z`, or
/// `t2.z = t1.z` and `t2.w > t1.w`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a single client operation, unique across the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct OpId {
    /// The invoking client.
    pub client: ClientId,
    /// Per-client sequence number (clients are well-formed, so this counts
    /// their operations in order).
    pub seq: u64,
}

impl OpId {
    /// Creates an operation id.
    pub fn new(client: ClientId, seq: u64) -> Self {
        OpId { client, seq }
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

/// A version tag `(z, w)`: a natural number paired with the writer id.
///
/// Tags are totally ordered lexicographically and provide the version control
/// at the heart of the algorithm.
///
/// ```rust
/// use lds_core::tag::{ClientId, Tag};
/// let t0 = Tag::initial();
/// let w = ClientId(3);
/// let t1 = t0.next(w);
/// assert!(t1 > t0);
/// assert_eq!(t1.next(ClientId(1)).z, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tag {
    /// The integer component.
    pub z: u64,
    /// The writer that created this tag.
    pub writer: ClientId,
}

impl Tag {
    /// The distinguished initial tag `t0` associated with the initial value
    /// `v0`.
    pub fn initial() -> Self {
        Tag {
            z: 0,
            writer: ClientId(0),
        }
    }

    /// Creates a tag.
    pub fn new(z: u64, writer: ClientId) -> Self {
        Tag { z, writer }
    }

    /// The tag a writer creates after observing `self` as the maximum tag:
    /// `(z + 1, writer)`.
    pub fn next(&self, writer: ClientId) -> Tag {
        Tag {
            z: self.z + 1,
            writer,
        }
    }

    /// Whether this is the initial tag.
    pub fn is_initial(&self) -> bool {
        *self == Tag::initial()
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.z, self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_ordering_is_lexicographic() {
        let a = Tag::new(1, ClientId(5));
        let b = Tag::new(2, ClientId(1));
        let c = Tag::new(2, ClientId(3));
        assert!(a < b, "higher integer wins regardless of writer id");
        assert!(b < c, "equal integers break ties by writer id");
        assert!(a < c);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn next_increments_integer_and_sets_writer() {
        let t = Tag::new(7, ClientId(2));
        let n = t.next(ClientId(9));
        assert_eq!(n.z, 8);
        assert_eq!(n.writer, ClientId(9));
        assert!(n > t);
    }

    #[test]
    fn initial_tag_is_smallest_created() {
        let t0 = Tag::initial();
        assert!(t0.is_initial());
        assert!(!t0.next(ClientId(0)).is_initial());
        // Any tag produced by a writer is strictly larger than t0.
        assert!(t0 < t0.next(ClientId(0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tag::new(3, ClientId(1)).to_string(), "(3, c1)");
        assert_eq!(ObjectId(4).to_string(), "obj4");
        assert_eq!(OpId::new(ClientId(2), 9).to_string(), "c2#9");
    }

    #[test]
    fn op_ids_order_by_client_then_sequence() {
        let a = OpId::new(ClientId(1), 5);
        let b = OpId::new(ClientId(1), 6);
        let c = OpId::new(ClientId(2), 0);
        assert!(a < b);
        assert!(b < c);
    }
}
