//! # lds-core
//!
//! The **Layered Data Storage (LDS)** algorithm of Konwar, Prakash, Lynch and
//! Médard (PODC 2017): a two-layer erasure-coded fault-tolerant distributed
//! storage system providing multi-writer multi-reader **atomic** (linearizable)
//! read/write access.
//!
//! * Clients (writers and readers) talk only to the first layer **L1** (the
//!   "edge"), which provides fast, temporary storage.
//! * L1 servers talk to the second layer **L2** (the "back-end"), which
//!   provides permanent storage as coded elements of a **minimum bandwidth
//!   regenerating (MBR)** code.
//! * The algorithm tolerates `f1 < n1/2` crashes in L1 and `f2 < n2/3`
//!   crashes in L2.
//!
//! The protocol automata (writer, reader, L1 server, L2 server) are
//! implemented as [`lds_sim::Process`]es so they can be driven by the
//! deterministic simulator in `lds-sim`, by the thread-based cluster runtime
//! in `lds-cluster`, or by any other driver.
//!
//! The crate also contains:
//!
//! * [`backend`] — the pluggable back-end codec (MBR / MSR / Reed–Solomon /
//!   replication) used for L2 storage, enabling the paper's ablations;
//! * [`baselines`] — single-layer baselines: the replication-based ABD
//!   algorithm and a Reed–Solomon-coded CAS-style algorithm;
//! * [`consistency`] — operation histories and atomicity (linearizability)
//!   checkers;
//! * [`costs`] — the closed-form cost expressions of §V (Lemmas V.2–V.5),
//!   used by the benchmark harness to compare measured against predicted
//!   values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod baselines;
pub mod consistency;
pub mod costs;
pub mod membership;
pub mod messages;
pub mod params;
pub mod reader;
pub mod server1;
pub mod server2;
pub mod stripe;
pub mod tag;
pub mod value;
pub mod wire;
pub mod writer;

pub use backend::{BackendCodec, BackendKind};
pub use consistency::{History, Operation, OperationKind};
pub use membership::Membership;
pub use messages::{LdsMessage, ProtocolEvent, ReadPayload, RepairPayload};
pub use params::SystemParams;
pub use reader::ReaderClient;
pub use server1::L1Server;
pub use server2::L2Server;
pub use tag::{ClientId, ObjectId, OpId, Tag};
pub use value::Value;
pub use writer::WriterClient;
