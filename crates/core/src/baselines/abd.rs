//! The ABD multi-writer multi-reader atomic register (Attiya–Bar-Noy–Dolev),
//! the classical replication-based baseline.
//!
//! Single layer of `n` servers tolerating `f < n/2` crashes; quorums are
//! majorities. Writes are two phases (query tags, then store the full value
//! on a majority); reads are two phases (query `(tag, value)` pairs, then
//! write back the chosen pair to a majority).

use super::BaselineMessage;
use crate::messages::ProtocolEvent;
use crate::tag::{ClientId, ObjectId, OpId, Tag};
use crate::value::Value;
use lds_sim::{Context, Process, ProcessId, SimTime};
use std::collections::{HashMap, HashSet};

/// An ABD replica server.
#[derive(Default)]
pub struct AbdServer {
    objects: HashMap<ObjectId, (Tag, Value)>,
}

impl AbdServer {
    /// Creates an empty replica.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes stored across all objects (each replica stores the full value).
    pub fn storage_bytes(&self) -> usize {
        self.objects.values().map(|(_, v)| v.len()).sum()
    }

    /// The tag currently stored for an object.
    pub fn stored_tag(&self, obj: ObjectId) -> Tag {
        self.objects
            .get(&obj)
            .map(|(t, _)| *t)
            .unwrap_or_else(Tag::initial)
    }
}

impl Process<BaselineMessage, ProtocolEvent> for AbdServer {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BaselineMessage,
        ctx: &mut Context<'_, BaselineMessage, ProtocolEvent>,
    ) {
        match msg {
            BaselineMessage::QueryTag { obj, op } => {
                let tag = self.stored_tag(obj);
                ctx.send(from, BaselineMessage::TagResp { obj, op, tag });
            }
            BaselineMessage::QueryValue { obj, op } => {
                let (tag, value) = self
                    .objects
                    .get(&obj)
                    .cloned()
                    .unwrap_or_else(|| (Tag::initial(), Value::initial()));
                ctx.send(
                    from,
                    BaselineMessage::ValueResp {
                        obj,
                        op,
                        tag,
                        value,
                    },
                );
            }
            BaselineMessage::Store {
                obj,
                op,
                tag,
                value,
            } => {
                let entry = self
                    .objects
                    .entry(obj)
                    .or_insert_with(|| (Tag::initial(), Value::initial()));
                if tag > entry.0 {
                    *entry = (tag, value);
                }
                ctx.send(from, BaselineMessage::Ack { obj, op, tag });
            }
            _ => {}
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    WriteQuery,
    WriteStore,
    ReadQuery,
    ReadWriteBack,
}

struct CurrentOp {
    op: OpId,
    obj: ObjectId,
    phase: Phase,
    invoked_at: SimTime,
    value: Value,
    tag: Tag,
    tag_responses: HashMap<ProcessId, Tag>,
    value_responses: HashMap<ProcessId, (Tag, Value)>,
    acks: HashSet<ProcessId>,
    is_write: bool,
}

/// An ABD client performing both reads and writes (invoked via
/// [`BaselineMessage::InvokeWrite`] / [`BaselineMessage::InvokeRead`]).
pub struct AbdClient {
    id: ClientId,
    servers: Vec<ProcessId>,
    next_seq: u64,
    current: Option<CurrentOp>,
}

impl AbdClient {
    /// Creates a client that talks to the given replicas.
    pub fn new(id: ClientId, servers: Vec<ProcessId>) -> Self {
        AbdClient {
            id,
            servers,
            next_seq: 0,
            current: None,
        }
    }

    fn quorum(&self) -> usize {
        self.servers.len() / 2 + 1
    }

    /// Whether an operation is in flight.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }
}

impl Process<BaselineMessage, ProtocolEvent> for AbdClient {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BaselineMessage,
        ctx: &mut Context<'_, BaselineMessage, ProtocolEvent>,
    ) {
        match msg {
            BaselineMessage::InvokeWrite { obj, value } => {
                assert!(self.current.is_none(), "ABD clients must be well-formed");
                let op = OpId::new(self.id, self.next_seq);
                self.next_seq += 1;
                self.current = Some(CurrentOp {
                    op,
                    obj,
                    phase: Phase::WriteQuery,
                    invoked_at: ctx.now(),
                    value,
                    tag: Tag::initial(),
                    tag_responses: HashMap::new(),
                    value_responses: HashMap::new(),
                    acks: HashSet::new(),
                    is_write: true,
                });
                ctx.send_all(
                    self.servers.iter().copied(),
                    BaselineMessage::QueryTag { obj, op },
                );
            }
            BaselineMessage::InvokeRead { obj } => {
                assert!(self.current.is_none(), "ABD clients must be well-formed");
                let op = OpId::new(self.id, self.next_seq);
                self.next_seq += 1;
                self.current = Some(CurrentOp {
                    op,
                    obj,
                    phase: Phase::ReadQuery,
                    invoked_at: ctx.now(),
                    value: Value::initial(),
                    tag: Tag::initial(),
                    tag_responses: HashMap::new(),
                    value_responses: HashMap::new(),
                    acks: HashSet::new(),
                    is_write: false,
                });
                ctx.send_all(
                    self.servers.iter().copied(),
                    BaselineMessage::QueryValue { obj, op },
                );
            }
            BaselineMessage::TagResp { op, tag, .. } => {
                let quorum = self.quorum();
                let servers = self.servers.clone();
                let id = self.id;
                let Some(cur) = self.current.as_mut() else {
                    return;
                };
                if cur.op != op || cur.phase != Phase::WriteQuery {
                    return;
                }
                cur.tag_responses.insert(from, tag);
                if cur.tag_responses.len() < quorum {
                    return;
                }
                let max = cur
                    .tag_responses
                    .values()
                    .max()
                    .copied()
                    .unwrap_or_else(Tag::initial);
                cur.tag = max.next(id);
                cur.phase = Phase::WriteStore;
                let msg = BaselineMessage::Store {
                    obj: cur.obj,
                    op: cur.op,
                    tag: cur.tag,
                    value: cur.value.clone(),
                };
                ctx.send_all(servers, msg);
            }
            BaselineMessage::ValueResp { op, tag, value, .. } => {
                let quorum = self.quorum();
                let servers = self.servers.clone();
                let Some(cur) = self.current.as_mut() else {
                    return;
                };
                if cur.op != op || cur.phase != Phase::ReadQuery {
                    return;
                }
                cur.value_responses.insert(from, (tag, value));
                if cur.value_responses.len() < quorum {
                    return;
                }
                let (tag, value) = cur
                    .value_responses
                    .values()
                    .max_by_key(|(t, _)| *t)
                    .cloned()
                    .expect("quorum is non-empty");
                cur.tag = tag;
                cur.value = value.clone();
                cur.phase = Phase::ReadWriteBack;
                let msg = BaselineMessage::Store {
                    obj: cur.obj,
                    op: cur.op,
                    tag,
                    value,
                };
                ctx.send_all(servers, msg);
            }
            BaselineMessage::Ack { op, .. } => {
                let quorum = self.quorum();
                let Some(cur) = self.current.as_mut() else {
                    return;
                };
                if cur.op != op
                    || !(cur.phase == Phase::WriteStore || cur.phase == Phase::ReadWriteBack)
                {
                    return;
                }
                cur.acks.insert(from);
                if cur.acks.len() < quorum {
                    return;
                }
                let done = self.current.take().expect("checked above");
                let event = if done.is_write {
                    ProtocolEvent::WriteCompleted {
                        op: done.op,
                        obj: done.obj,
                        tag: done.tag,
                        value: done.value,
                        invoked_at: done.invoked_at,
                    }
                } else {
                    ProtocolEvent::ReadCompleted {
                        op: done.op,
                        obj: done.obj,
                        tag: done.tag,
                        value: done.value,
                        invoked_at: done.invoked_at,
                    }
                };
                ctx.emit(event);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::History;
    use lds_sim::{SimConfig, Simulation};

    fn build(
        n: usize,
        clients: usize,
    ) -> (
        Simulation<BaselineMessage, ProtocolEvent>,
        Vec<ProcessId>,
        Vec<ProcessId>,
    ) {
        let mut sim = Simulation::new(SimConfig::with_seed(11));
        let servers: Vec<ProcessId> = (0..n).map(|_| sim.spawn(AbdServer::new(), 1)).collect();
        let client_ids: Vec<ProcessId> = (0..clients)
            .map(|i| sim.spawn(AbdClient::new(ClientId(i as u64 + 1), servers.clone()), 0))
            .collect();
        (sim, servers, client_ids)
    }

    #[test]
    fn write_then_read_returns_value() {
        let (mut sim, servers, clients) = build(5, 2);
        sim.inject_at(
            0.0,
            clients[0],
            BaselineMessage::InvokeWrite {
                obj: ObjectId(0),
                value: Value::from("abd value"),
            },
        );
        sim.inject_at(
            50.0,
            clients[1],
            BaselineMessage::InvokeRead { obj: ObjectId(0) },
        );
        sim.run();
        let events = sim.events();
        assert_eq!(events.len(), 2);
        match &events[1].2 {
            ProtocolEvent::ReadCompleted { value, .. } => {
                assert_eq!(value.as_bytes(), b"abd value")
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Every replica that processed the store holds the full value.
        let stored: usize = servers
            .iter()
            .map(|&s| sim.process_ref::<AbdServer>(s).unwrap().storage_bytes())
            .sum();
        assert!(stored >= 3 * "abd value".len());
    }

    #[test]
    fn concurrent_operations_remain_atomic() {
        let (mut sim, _servers, clients) = build(5, 2);
        for round in 0..5u64 {
            let t = round as f64 * 7.0;
            sim.inject_at(
                t,
                clients[0],
                BaselineMessage::InvokeWrite {
                    obj: ObjectId(0),
                    value: Value::new(format!("v{round}").into_bytes()),
                },
            );
            sim.inject_at(
                t + 1.0,
                clients[1],
                BaselineMessage::InvokeRead { obj: ObjectId(0) },
            );
        }
        sim.run();
        let events = sim.take_events();
        assert_eq!(events.len(), 10);
        let history = History::from_events(events.into_iter().map(|(t, _, e)| (e, t)));
        assert!(history.check_atomicity().is_ok());
        assert!(history.check_linearizable_search().is_ok());
    }

    #[test]
    fn tolerates_minority_crashes() {
        let (mut sim, servers, clients) = build(5, 1);
        sim.schedule_crash(0.0, servers[0]);
        sim.schedule_crash(0.0, servers[1]);
        sim.inject_at(
            1.0,
            clients[0],
            BaselineMessage::InvokeWrite {
                obj: ObjectId(0),
                value: Value::from("survives"),
            },
        );
        sim.run();
        assert_eq!(
            sim.events().len(),
            1,
            "write completes despite f = 2 crashes"
        );
    }
}
