//! A coded atomic storage (CAS-style) baseline in the spirit of Cadambe,
//! Lynch, Médard and Musial (the paper's ref. \[6\]).
//!
//! Single layer of `n` servers storing Reed–Solomon coded elements; quorums
//! have size `⌈(n + k)/2⌉` so that any two quorums intersect in at least `k`
//! servers. A write proceeds in three phases (query tag → pre-write coded
//! elements → finalise); a read queries the highest finalised tag and then
//! collects `k` coded elements for it.
//!
//! This is a faithful-but-compact rendition of the CAS structure sufficient
//! for the cost comparisons of experiment E8; it is not a drop-in
//! re-implementation of every CAS variant (e.g. gossip-based garbage
//! collection is omitted).

use super::BaselineMessage;
use crate::messages::ProtocolEvent;
use crate::tag::{ClientId, ObjectId, OpId, Tag};
use crate::value::Value;
use lds_codes::rs::ReedSolomon;
use lds_codes::{ErasureCode, Share};
use lds_sim::{Context, Process, ProcessId, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Label attached to a stored coded element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    Pre,
    Fin,
}

/// A CAS server storing labelled coded elements.
pub struct CasServer {
    index: usize,
    objects: HashMap<ObjectId, BTreeMap<Tag, (Option<Share>, Label)>>,
}

impl CasServer {
    /// Creates a CAS server with code index `index`.
    pub fn new(index: usize) -> Self {
        CasServer {
            index,
            objects: HashMap::new(),
        }
    }

    /// Bytes of coded data stored across all objects and tags.
    pub fn storage_bytes(&self) -> usize {
        self.objects
            .values()
            .flat_map(|m| m.values())
            .filter_map(|(s, _)| s.as_ref().map(|s| s.data.len()))
            .sum()
    }

    /// This server's code index.
    pub fn index(&self) -> usize {
        self.index
    }

    fn highest_fin_tag(&self, obj: ObjectId) -> Tag {
        self.objects
            .get(&obj)
            .and_then(|m| {
                m.iter()
                    .rev()
                    .find(|(_, (_, label))| *label == Label::Fin)
                    .map(|(t, _)| *t)
            })
            .unwrap_or_else(Tag::initial)
    }
}

impl Process<BaselineMessage, ProtocolEvent> for CasServer {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BaselineMessage,
        ctx: &mut Context<'_, BaselineMessage, ProtocolEvent>,
    ) {
        match msg {
            BaselineMessage::QueryTag { obj, op } => {
                let tag = self.highest_fin_tag(obj);
                ctx.send(from, BaselineMessage::TagResp { obj, op, tag });
            }
            BaselineMessage::PreWrite {
                obj,
                op,
                tag,
                element,
            } => {
                self.objects
                    .entry(obj)
                    .or_default()
                    .entry(tag)
                    .and_modify(|e| e.0 = Some(element.clone()))
                    .or_insert((Some(element), Label::Pre));
                ctx.send(from, BaselineMessage::Ack { obj, op, tag });
            }
            BaselineMessage::Finalize { obj, op, tag } => {
                self.objects
                    .entry(obj)
                    .or_default()
                    .entry(tag)
                    .and_modify(|e| e.1 = Label::Fin)
                    .or_insert((None, Label::Fin));
                ctx.send(from, BaselineMessage::Ack { obj, op, tag });
            }
            BaselineMessage::QueryElem { obj, op, tag } => {
                let element = self
                    .objects
                    .get(&obj)
                    .and_then(|m| m.get(&tag))
                    .and_then(|(s, _)| s.clone());
                ctx.send(
                    from,
                    BaselineMessage::ElemResp {
                        obj,
                        op,
                        tag,
                        element,
                    },
                );
            }
            _ => {}
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    WriteQueryTag,
    PreWrite,
    Finalize,
    ReadQueryTag,
    CollectElems,
}

struct CurrentOp {
    op: OpId,
    obj: ObjectId,
    invoked_at: SimTime,
    phase: Phase,
    value: Value,
    tag: Tag,
    tag_responses: HashMap<ProcessId, Tag>,
    acks: HashSet<ProcessId>,
    elements: HashMap<usize, Share>,
    elem_responders: HashSet<ProcessId>,
}

/// A CAS client performing reads and writes.
pub struct CasClient {
    id: ClientId,
    servers: Vec<ProcessId>,
    code: Arc<ReedSolomon>,
    next_seq: u64,
    current: Option<CurrentOp>,
}

impl CasClient {
    /// Creates a client for a CAS deployment of `servers.len()` servers with
    /// reconstruction threshold `k`.
    ///
    /// # Panics
    ///
    /// Panics if the Reed–Solomon code cannot be constructed for
    /// `(n, k)`.
    pub fn new(id: ClientId, servers: Vec<ProcessId>, k: usize) -> Self {
        let code = ReedSolomon::with_dimensions(servers.len(), k)
            .expect("valid (n, k) for the CAS baseline");
        CasClient {
            id,
            servers,
            code: Arc::new(code),
            next_seq: 0,
            current: None,
        }
    }

    /// Quorum size `⌈(n + k)/2⌉`.
    pub fn quorum(&self) -> usize {
        (self.servers.len() + self.code.params().k()).div_ceil(2)
    }

    /// Whether an operation is in flight.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }
}

impl Process<BaselineMessage, ProtocolEvent> for CasClient {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BaselineMessage,
        ctx: &mut Context<'_, BaselineMessage, ProtocolEvent>,
    ) {
        match msg {
            BaselineMessage::InvokeWrite { obj, value } => {
                assert!(self.current.is_none(), "CAS clients must be well-formed");
                let op = OpId::new(self.id, self.next_seq);
                self.next_seq += 1;
                self.current = Some(CurrentOp {
                    op,
                    obj,
                    invoked_at: ctx.now(),
                    phase: Phase::WriteQueryTag,
                    value,
                    tag: Tag::initial(),
                    tag_responses: HashMap::new(),
                    acks: HashSet::new(),
                    elements: HashMap::new(),
                    elem_responders: HashSet::new(),
                });
                ctx.send_all(
                    self.servers.iter().copied(),
                    BaselineMessage::QueryTag { obj, op },
                );
            }
            BaselineMessage::InvokeRead { obj } => {
                assert!(self.current.is_none(), "CAS clients must be well-formed");
                let op = OpId::new(self.id, self.next_seq);
                self.next_seq += 1;
                self.current = Some(CurrentOp {
                    op,
                    obj,
                    invoked_at: ctx.now(),
                    phase: Phase::ReadQueryTag,
                    value: Value::initial(),
                    tag: Tag::initial(),
                    tag_responses: HashMap::new(),
                    acks: HashSet::new(),
                    elements: HashMap::new(),
                    elem_responders: HashSet::new(),
                });
                ctx.send_all(
                    self.servers.iter().copied(),
                    BaselineMessage::QueryTag { obj, op },
                );
            }
            BaselineMessage::TagResp { op, tag, .. } => {
                let quorum = self.quorum();
                let servers = self.servers.clone();
                let id = self.id;
                let code = Arc::clone(&self.code);
                let Some(cur) = self.current.as_mut() else {
                    return;
                };
                if cur.op != op
                    || !(cur.phase == Phase::WriteQueryTag || cur.phase == Phase::ReadQueryTag)
                {
                    return;
                }
                cur.tag_responses.insert(from, tag);
                if cur.tag_responses.len() < quorum {
                    return;
                }
                let max = cur
                    .tag_responses
                    .values()
                    .max()
                    .copied()
                    .unwrap_or_else(Tag::initial);
                if cur.phase == Phase::WriteQueryTag {
                    cur.tag = max.next(id);
                    cur.phase = Phase::PreWrite;
                    let obj = cur.obj;
                    let op = cur.op;
                    let tag = cur.tag;
                    let value = cur.value.clone();
                    for (i, &server) in servers.iter().enumerate() {
                        let element = code
                            .encode_share(value.as_bytes(), i)
                            .expect("indices are within the code length");
                        ctx.send(
                            server,
                            BaselineMessage::PreWrite {
                                obj,
                                op,
                                tag,
                                element,
                            },
                        );
                    }
                } else {
                    cur.tag = max;
                    cur.phase = Phase::CollectElems;
                    let msg = BaselineMessage::QueryElem {
                        obj: cur.obj,
                        op: cur.op,
                        tag: max,
                    };
                    ctx.send_all(servers, msg);
                }
            }
            BaselineMessage::Ack { op, tag, .. } => {
                let quorum = self.quorum();
                let servers = self.servers.clone();
                let Some(cur) = self.current.as_mut() else {
                    return;
                };
                if cur.op != op || cur.tag != tag {
                    return;
                }
                match cur.phase {
                    Phase::PreWrite => {
                        cur.acks.insert(from);
                        if cur.acks.len() >= quorum {
                            cur.acks.clear();
                            cur.phase = Phase::Finalize;
                            let msg = BaselineMessage::Finalize {
                                obj: cur.obj,
                                op: cur.op,
                                tag,
                            };
                            ctx.send_all(servers, msg);
                        }
                    }
                    Phase::Finalize => {
                        cur.acks.insert(from);
                        if cur.acks.len() >= quorum {
                            let done = self.current.take().expect("checked above");
                            ctx.emit(ProtocolEvent::WriteCompleted {
                                op: done.op,
                                obj: done.obj,
                                tag: done.tag,
                                value: done.value,
                                invoked_at: done.invoked_at,
                            });
                        }
                    }
                    _ => {}
                }
            }
            BaselineMessage::ElemResp {
                op, tag, element, ..
            } => {
                let quorum = self.quorum();
                let k = self.code.params().k();
                let code = Arc::clone(&self.code);
                let Some(cur) = self.current.as_mut() else {
                    return;
                };
                if cur.op != op || cur.phase != Phase::CollectElems || cur.tag != tag {
                    return;
                }
                cur.elem_responders.insert(from);
                if let Some(share) = element {
                    cur.elements.insert(share.index, share);
                }
                let decoded = if cur.tag.is_initial() {
                    // Initial value: nothing was ever written.
                    if cur.elem_responders.len() >= quorum {
                        Some(Vec::new())
                    } else {
                        None
                    }
                } else if cur.elements.len() >= k {
                    let shares: Vec<Share> = cur.elements.values().cloned().collect();
                    code.decode(&shares).ok()
                } else {
                    None
                };
                let Some(bytes) = decoded else { return };
                let done = self.current.take().expect("checked above");
                ctx.emit(ProtocolEvent::ReadCompleted {
                    op: done.op,
                    obj: done.obj,
                    tag: done.tag,
                    value: Value::new(bytes),
                    invoked_at: done.invoked_at,
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::History;
    use lds_sim::{SimConfig, Simulation};

    fn build(
        n: usize,
        k: usize,
        clients: usize,
    ) -> (
        Simulation<BaselineMessage, ProtocolEvent>,
        Vec<ProcessId>,
        Vec<ProcessId>,
    ) {
        let mut sim = Simulation::new(SimConfig::with_seed(3));
        let servers: Vec<ProcessId> = (0..n).map(|i| sim.spawn(CasServer::new(i), 1)).collect();
        let client_pids: Vec<ProcessId> = (0..clients)
            .map(|i| {
                sim.spawn(
                    CasClient::new(ClientId(i as u64 + 1), servers.clone(), k),
                    0,
                )
            })
            .collect();
        (sim, servers, client_pids)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut sim, servers, clients) = build(6, 3, 2);
        sim.inject_at(
            0.0,
            clients[0],
            BaselineMessage::InvokeWrite {
                obj: ObjectId(0),
                value: Value::from("coded atomic storage"),
            },
        );
        sim.inject_at(
            100.0,
            clients[1],
            BaselineMessage::InvokeRead { obj: ObjectId(0) },
        );
        sim.run();
        let events = sim.events();
        assert_eq!(events.len(), 2);
        match &events[1].2 {
            ProtocolEvent::ReadCompleted { value, .. } => {
                assert_eq!(value.as_bytes(), b"coded atomic storage")
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Each server stores roughly |v|/k, not the full value.
        let per_server = sim
            .process_ref::<CasServer>(servers[0])
            .unwrap()
            .storage_bytes();
        assert!(per_server < "coded atomic storage".len());
    }

    #[test]
    fn read_before_any_write_returns_initial_value() {
        let (mut sim, _servers, clients) = build(5, 2, 1);
        sim.inject_at(
            0.0,
            clients[0],
            BaselineMessage::InvokeRead { obj: ObjectId(0) },
        );
        sim.run();
        match &sim.events()[0].2 {
            ProtocolEvent::ReadCompleted { value, .. } => assert!(value.is_empty()),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn interleaved_operations_are_atomic() {
        let (mut sim, _servers, clients) = build(6, 3, 2);
        for round in 0..4u64 {
            let t = round as f64 * 9.0;
            sim.inject_at(
                t,
                clients[0],
                BaselineMessage::InvokeWrite {
                    obj: ObjectId(0),
                    value: Value::new(format!("cas{round}").into_bytes()),
                },
            );
            sim.inject_at(
                t + 2.0,
                clients[1],
                BaselineMessage::InvokeRead { obj: ObjectId(0) },
            );
        }
        sim.run();
        let events = sim.take_events();
        assert_eq!(events.len(), 8);
        let history = History::from_events(events.into_iter().map(|(t, _, e)| (e, t)));
        assert!(history.check_atomicity().is_ok());
        assert!(history.check_linearizable_search().is_ok());
    }
}
