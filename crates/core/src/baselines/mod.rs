//! Single-layer baselines the paper compares against.
//!
//! * [`abd`] — the replication-based multi-writer multi-reader atomic
//!   register of Attiya, Bar-Noy and Dolev (the paper's ref. \[3\]).
//! * [`cas`] — a Reed–Solomon-coded atomic storage algorithm in the style of
//!   Cadambe, Lynch, Médard and Musial (the paper's ref. \[6\]), with
//!   pre-write / finalise labels and quorums of size `⌈(n + k)/2⌉`.
//!
//! Both run on a single layer of `n` servers and are driven by the same
//! simulator as LDS, so their communication and storage costs are measured
//! under identical conditions (the `exp_baselines` binary in `lds-bench`).

pub mod abd;
pub mod cas;

use crate::value::Value;
use lds_codes::Share;
use lds_sim::DataSize;

use crate::tag::{ObjectId, OpId, Tag};

/// Messages shared by the single-layer baseline protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineMessage {
    /// Harness command: start a write.
    InvokeWrite {
        /// Target object.
        obj: ObjectId,
        /// Value to write.
        value: Value,
    },
    /// Harness command: start a read.
    InvokeRead {
        /// Target object.
        obj: ObjectId,
    },
    /// Query the server's highest (finalised) tag.
    QueryTag {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
    },
    /// Response to [`BaselineMessage::QueryTag`].
    TagResp {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// The server's tag.
        tag: Tag,
    },
    /// ABD: query the server's current `(tag, value)` pair.
    QueryValue {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
    },
    /// ABD: response to [`BaselineMessage::QueryValue`].
    ValueResp {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// The server's tag.
        tag: Tag,
        /// The server's value.
        value: Value,
    },
    /// ABD: store `(tag, value)` if newer (used by writes and read
    /// write-backs).
    Store {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// Tag to store.
        tag: Tag,
        /// Value to store.
        value: Value,
    },
    /// CAS: store a coded element with the `pre` label.
    PreWrite {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// Tag being written.
        tag: Tag,
        /// This server's coded element.
        element: Share,
    },
    /// CAS: move a tag to the `fin` label.
    Finalize {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// Tag being finalised.
        tag: Tag,
    },
    /// CAS: ask for the coded element of a specific tag.
    QueryElem {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// Requested tag.
        tag: Tag,
    },
    /// CAS: response to [`BaselineMessage::QueryElem`] (element may be
    /// missing on this server).
    ElemResp {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// Requested tag.
        tag: Tag,
        /// The element, if the server stores it.
        element: Option<Share>,
    },
    /// Generic acknowledgment.
    Ack {
        /// Target object.
        obj: ObjectId,
        /// Operation id.
        op: OpId,
        /// Acknowledged tag.
        tag: Tag,
    },
}

impl DataSize for BaselineMessage {
    fn data_size(&self) -> usize {
        match self {
            BaselineMessage::InvokeWrite { value, .. } => value.len(),
            BaselineMessage::ValueResp { value, .. } => value.len(),
            BaselineMessage::Store { value, .. } => value.len(),
            BaselineMessage::PreWrite { element, .. } => element.data.len(),
            BaselineMessage::ElemResp { element, .. } => {
                element.as_ref().map(|e| e.data.len()).unwrap_or(0)
            }
            _ => 0,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            BaselineMessage::InvokeWrite { .. } => "BL-INVOKE-WRITE",
            BaselineMessage::InvokeRead { .. } => "BL-INVOKE-READ",
            BaselineMessage::QueryTag { .. } => "BL-QUERY-TAG",
            BaselineMessage::TagResp { .. } => "BL-TAG-RESP",
            BaselineMessage::QueryValue { .. } => "BL-QUERY-VALUE",
            BaselineMessage::ValueResp { .. } => "BL-VALUE-RESP",
            BaselineMessage::Store { .. } => "BL-STORE",
            BaselineMessage::PreWrite { .. } => "BL-PRE-WRITE",
            BaselineMessage::Finalize { .. } => "BL-FINALIZE",
            BaselineMessage::QueryElem { .. } => "BL-QUERY-ELEM",
            BaselineMessage::ElemResp { .. } => "BL-ELEM-RESP",
            BaselineMessage::Ack { .. } => "BL-ACK",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ClientId;

    #[test]
    fn data_size_counts_only_payloads() {
        let obj = ObjectId(0);
        let op = OpId::new(ClientId(1), 0);
        let tag = Tag::initial();
        assert_eq!(BaselineMessage::QueryTag { obj, op }.data_size(), 0);
        assert_eq!(
            BaselineMessage::Store {
                obj,
                op,
                tag,
                value: Value::new(vec![0; 9])
            }
            .data_size(),
            9
        );
        assert_eq!(
            BaselineMessage::ElemResp {
                obj,
                op,
                tag,
                element: None
            }
            .data_size(),
            0
        );
        assert_eq!(
            BaselineMessage::ElemResp {
                obj,
                op,
                tag,
                element: Some(Share::new(0, vec![0; 5]))
            }
            .data_size(),
            5
        );
        assert_eq!(BaselineMessage::Ack { obj, op, tag }.kind(), "BL-ACK");
    }
}
