//! The L1 (edge) server automaton — Fig. 2 of the paper.
//!
//! An L1 server `s_j` provides temporary storage for values being written,
//! answers client queries, participates in the metadata broadcast primitive,
//! and performs the two internal operations against the back-end layer:
//! `write-to-L2` (offloading coded elements) and `regenerate-from-L2`
//! (repairing its own coded element `c_j` from helper data).
//!
//! One server process hosts the per-object state of every object it has seen,
//! so a multi-object system (paper §V-A.1) runs on the same `n1 + n2`
//! processes.

use crate::backend::BackendCodec;
use crate::membership::Membership;
use crate::messages::{LdsMessage, ProtocolEvent, ReadPayload, RepairPayload};
use crate::params::SystemParams;
use crate::stripe;
use crate::tag::{ObjectId, OpId, Tag};
use crate::value::Value;
use lds_codes::{BufPool, HelperData, PoolStats, Share};
use lds_sim::{Context, Process, ProcessId};
use std::collections::{btree_map, BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Tuning options for an L1 server.
///
/// All options default to the paper-faithful behavior; the cluster runtime's
/// high-throughput profile enables them to trade paper-exact cost accounting
/// for fewer messages per operation.
#[derive(Debug, Clone, Copy)]
pub struct L1Options {
    /// If true, the COMMIT-TAG broadcast is sent directly to all L1 servers
    /// instead of through the `f1 + 1` relay set. This loses tolerance to the
    /// broadcaster crashing mid-broadcast but reduces the metadata message
    /// count from `O(f1·n1)` to `O(n1)` per write — useful for large sweeps.
    pub direct_broadcast: bool,
    /// If true, the committed value is *kept* in temporary storage after
    /// `write-to-L2` completes (edge-cache style) instead of being replaced
    /// by `⊥`. Reads are then served from L1 without `regenerate-from-L2`;
    /// the cost is one live value per object per server (values below the
    /// committed tag are still garbage-collected on every commit). The
    /// paper's L1 storage-cost accounting assumes this is off.
    pub cache_committed_value: bool,
    /// If true, only the first `f1 + 1` L1 servers perform `write-to-L2`
    /// (each offload delivers *all* `n2` coded elements, and at least one of
    /// the `f1 + 1` offloaders is correct, so L2 durability is preserved
    /// under `f1` crashes). The remaining servers skip the `n2` messages and
    /// `n2` acks per write; since they never receive offload acks, they keep
    /// the committed value until the next commit — combine with
    /// [`L1Options::cache_committed_value`] so reads stay fast everywhere.
    pub frugal_offload: bool,
    /// If true, a server consumes its own broadcast (and, as a relay, its
    /// own forward) *inline* within the same protocol step instead of
    /// sending itself a message through the network. Every state this
    /// produces is reachable in the message-passing execution by delivering
    /// the self-addressed message first; the observable effect is that a
    /// server acknowledges a PUT-DATA as soon as it has stored the value
    /// with its committed tag advanced to it (the pre-existing "broadcast
    /// raced ahead" path), rather than waiting for the commit quorum.
    pub inline_self_broadcast: bool,
    /// Values of at least this many bytes take the chunk-striped data path:
    /// the writer streams them as per-stripe [`LdsMessage::PutStripe`]
    /// messages and the server's `write-to-L2` offload encodes stripe by
    /// stripe into pooled scratch buffers, keeping peak encode memory at
    /// O(stripe × n2) instead of O(value × n2). `0` disables striping
    /// (the paper-faithful monolithic path).
    pub stripe_threshold: usize,
    /// Stripe size in bytes for the striped data path. Ignored while
    /// [`L1Options::stripe_threshold`] is `0`.
    pub stripe_size: usize,
}

impl Default for L1Options {
    fn default() -> Self {
        L1Options {
            direct_broadcast: false,
            cache_committed_value: false,
            frugal_offload: false,
            inline_self_broadcast: false,
            stripe_threshold: 0,
            stripe_size: stripe::DEFAULT_STRIPE_SIZE,
        }
    }
}

/// An in-progress chunk-striped write: the stripes of one logical
/// [`LdsMessage::PutStripe`] stream, collected until all `count` have
/// arrived and the completed value can run through the normal
/// `put-data-resp` action.
///
/// Assemblies are **never pruned**: the writer sends every stripe of a write
/// to every L1 server unconditionally, so each assembly completes after
/// exactly `count` deliveries and removes itself. Dropping one early (e.g.
/// because its tag went stale while in flight) could strand later stripes as
/// a permanent partial entry and lose the writer's ack.
#[derive(Debug, Clone)]
struct StripeAssembly {
    /// Expected number of stripes.
    count: u32,
    /// Received stripes by sequence number (order-independent).
    parts: BTreeMap<u32, Value>,
    /// The writer process to acknowledge.
    from: ProcessId,
    /// The write operation id.
    op: OpId,
}

/// A reader registered in Γ, waiting to be served.
#[derive(Debug, Clone)]
struct RegisteredReader {
    reader: ProcessId,
    op: OpId,
    treq: Tag,
}

/// State of one outstanding `regenerate-from-L2` operation (the paper's
/// per-reader `readCounter[r]` and key-value set `K[r]`).
#[derive(Debug, Clone)]
struct RegenState {
    treq: Tag,
    respondents: HashSet<ProcessId>,
    responses: Vec<(Tag, HelperData)>,
}

/// Per-object server state (the paper's `L`, `Γ`, `t_c` and counters).
///
/// All per-tag bookkeeping lives in ordered maps so that everything below the
/// committed tag can be garbage-collected in one cheap `split_off` when `t_c`
/// advances — without GC, `commitCounter`, the broadcast dedup sets and the
/// list keys themselves grow forever on a long-running workload.
#[derive(Debug, Clone)]
struct ObjectState {
    /// The list `L`: tag → value (`None` represents `⊥`).
    list: BTreeMap<Tag, Option<Value>>,
    /// Registered readers Γ.
    gamma: Vec<RegisteredReader>,
    /// Committed tag `t_c`.
    tc: Tag,
    /// `commitCounter[t]`: number of distinct COMMIT-TAG broadcasts consumed.
    commit_count: BTreeMap<Tag, usize>,
    /// Tags already acknowledged to their writer by this server.
    acked: BTreeSet<Tag>,
    /// For each tag received via PUT-DATA, the writer process and op to ack.
    pending_write: BTreeMap<Tag, (ProcessId, OpId)>,
    /// `writeCounter[t]`: ACK-CODE-ELEM responses received from L2.
    write_counter: BTreeMap<Tag, usize>,
    /// Tags for which this server already initiated `write-to-L2`.
    offloaded: BTreeSet<Tag>,
    /// Broadcast relay dedup: origins already forwarded, per tag.
    relayed: BTreeMap<Tag, HashSet<ProcessId>>,
    /// Broadcast consumption dedup: origins already counted, per tag.
    consumed: BTreeMap<Tag, HashSet<ProcessId>>,
    /// Outstanding regenerate-from-L2 operations keyed by (reader, op).
    regen: HashMap<(ProcessId, OpId), RegenState>,
}

impl ObjectState {
    fn new() -> Self {
        let mut list = BTreeMap::new();
        list.insert(Tag::initial(), None);
        ObjectState {
            list,
            gamma: Vec::new(),
            tc: Tag::initial(),
            commit_count: BTreeMap::new(),
            acked: BTreeSet::new(),
            pending_write: BTreeMap::new(),
            write_counter: BTreeMap::new(),
            offloaded: BTreeSet::new(),
            relayed: BTreeMap::new(),
            consumed: BTreeMap::new(),
            regen: HashMap::new(),
        }
    }

    fn max_list_tag(&self) -> Tag {
        *self
            .list
            .keys()
            .next_back()
            .expect("list always contains at least the committed tag")
    }

    /// Number of per-tag metadata entries currently held for this object.
    fn metadata_entries(&self) -> usize {
        self.list.len()
            + self.commit_count.len()
            + self.acked.len()
            + self.pending_write.len()
            + self.write_counter.len()
            + self.offloaded.len()
            + self.relayed.values().map(HashSet::len).sum::<usize>()
            + self.consumed.values().map(HashSet::len).sum::<usize>()
            + self.gamma.len()
            + self.regen.len()
    }

    /// The highest tag strictly below `below` whose value is still present.
    fn latest_value_below(&self, below: Tag) -> Option<(Tag, Value)> {
        self.list
            .range(..below)
            .rev()
            .find_map(|(t, v)| v.as_ref().map(|v| (*t, v.clone())))
    }

    /// Garbage-collects everything associated with tags strictly below
    /// `below` (which the caller has just committed).
    ///
    /// Entries below the committed tag can never influence future quorums:
    /// `max_list_tag` stays ≥ `t_c`, reads for old tags are answered with the
    /// committed value, and late duplicate broadcasts for pruned tags only
    /// recreate a transient counter that the next advance removes again.
    /// PUT-DATA entries whose ack is still outstanding are acknowledged on
    /// the way out — the tag is superseded by a committed higher tag, which
    /// is exactly the `put-data-resp` stale-tag case.
    ///
    /// Returns `(entries, bytes)` pruned, for the server's eviction
    /// counters.
    fn gc_below(
        &mut self,
        obj: ObjectId,
        below: Tag,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) -> (u64, u64) {
        let kept = self.list.split_off(&below);
        let stale_list = std::mem::replace(&mut self.list, kept);
        let mut entries = stale_list.len() as u64;
        let bytes: u64 = stale_list
            .values()
            .filter_map(|v| v.as_ref().map(|v| v.len() as u64))
            .sum();
        self.list.entry(below).or_insert(None);

        let kept = self.pending_write.split_off(&below);
        let stale = std::mem::replace(&mut self.pending_write, kept);
        entries += stale.len() as u64;
        for (tag, (writer, op)) in stale {
            if !self.acked.contains(&tag) {
                ctx.send(writer, LdsMessage::AckPutData { obj, op, tag });
            }
        }

        let kept = self.commit_count.split_off(&below);
        entries += (std::mem::replace(&mut self.commit_count, kept)).len() as u64;
        let kept = self.acked.split_off(&below);
        entries += (std::mem::replace(&mut self.acked, kept)).len() as u64;
        let kept = self.write_counter.split_off(&below);
        entries += (std::mem::replace(&mut self.write_counter, kept)).len() as u64;
        let kept = self.offloaded.split_off(&below);
        entries += (std::mem::replace(&mut self.offloaded, kept)).len() as u64;
        let kept = self.relayed.split_off(&below);
        entries += std::mem::replace(&mut self.relayed, kept)
            .values()
            .map(|s| s.len() as u64)
            .sum::<u64>();
        let kept = self.consumed.split_off(&below);
        entries += std::mem::replace(&mut self.consumed, kept)
            .values()
            .map(|s| s.len() as u64)
            .sum::<u64>();
        (entries, bytes)
    }
}

/// Accumulated state of a replacement L1 server while it reconstructs its
/// metadata (committed tags and lists) from live peers' snapshots. While
/// rebuilding, the server answers **no** client queries — an incomplete list
/// could break get-tag quorum monotonicity — but it absorbs the normal
/// PUT-DATA / broadcast stream, which is how in-flight writes catch it up
/// before it declares itself live.
struct L1Rebuild {
    /// `RepairDone` markers to expect (helpers × helper worker shards).
    expected_dones: usize,
    /// Markers received so far.
    dones: usize,
    /// Where to report completion and accounting.
    report_to: ProcessId,
    /// Highest committed tag reported per object (applied at finalization
    /// through the normal committed-tag advancement, so gc and write-to-L2
    /// run exactly as for a live commit).
    reported_tc: HashMap<ObjectId, Tag>,
    /// Snapshot value bytes received per helper process.
    bytes_by_helper: BTreeMap<ProcessId, u64>,
}

/// Monotonic observability counters an L1 server accumulates as it runs.
/// Plain `u64`s bumped inside the sans-IO handlers — the hosting runtime
/// reads them between protocol steps (e.g. when a worker shard idles) and
/// publishes deltas to its metrics registry.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct L1ObsCounters {
    /// Striped-write assemblies opened (first part of a new (object, tag)).
    pub assemblies_opened: u64,
    /// Assemblies that received all their parts and reassembled.
    pub assemblies_completed: u64,
    /// Stripe parts rejected without being buffered (malformed header or a
    /// stripe-count disagreement with the open assembly).
    pub assembly_parts_dropped: u64,
    /// Per-tag metadata entries pruned by committed-tag garbage collection.
    pub gc_evicted_entries: u64,
    /// Bytes of temporarily stored values released by garbage collection.
    pub gc_evicted_bytes: u64,
}

/// The L1 server automaton.
pub struct L1Server {
    /// This server's code index `j` (0-based position in the L1 list).
    index: usize,
    params: SystemParams,
    membership: Membership,
    backend: Arc<dyn BackendCodec>,
    options: L1Options,
    objects: HashMap<ObjectId, ObjectState>,
    /// In-progress chunk-striped writes, keyed by object then tag.
    stripes: HashMap<ObjectId, BTreeMap<Tag, StripeAssembly>>,
    /// Scratch-buffer pool for the striped `write-to-L2` encode path. The
    /// per-stripe frame scratch and the `n2` element output buffers all come
    /// from here, so its peak-round accounting *is* the offload's peak
    /// allocation.
    pool: BufPool,
    /// Monotonic counters for the observability registry.
    obs: L1ObsCounters,
    /// `Some` while this server is a replacement reconstructing metadata.
    rebuild: Option<L1Rebuild>,
}

impl L1Server {
    /// Creates the L1 server with code index `index`.
    pub fn new(
        index: usize,
        params: SystemParams,
        membership: Membership,
        backend: Arc<dyn BackendCodec>,
        options: L1Options,
    ) -> Self {
        assert!(index < params.n1(), "L1 index out of range");
        assert_eq!(
            membership.n1(),
            params.n1(),
            "membership/params n1 mismatch"
        );
        assert_eq!(
            membership.n2(),
            params.n2(),
            "membership/params n2 mismatch"
        );
        L1Server {
            index,
            params,
            membership,
            backend,
            options,
            objects: HashMap::new(),
            stripes: HashMap::new(),
            pool: BufPool::new(),
            obs: L1ObsCounters::default(),
            rebuild: None,
        }
    }

    /// Creates a **replacement** L1 server in rebuilding mode: silent on
    /// `QUERY-TAG` / `QUERY-COMM-TAG` / `QUERY-DATA`, absorbing the live
    /// write stream, merging peer metadata snapshots, and going live (with a
    /// completion report to `report_to`) once `expected_dones`
    /// [`LdsMessage::RepairDone`] markers have arrived.
    pub fn rebuilding(
        index: usize,
        params: SystemParams,
        membership: Membership,
        backend: Arc<dyn BackendCodec>,
        options: L1Options,
        expected_dones: usize,
        report_to: ProcessId,
    ) -> Self {
        let mut server = L1Server::new(index, params, membership, backend, options);
        server.rebuild = Some(L1Rebuild {
            expected_dones,
            dones: 0,
            report_to,
            reported_tc: HashMap::new(),
            bytes_by_helper: BTreeMap::new(),
        });
        server
    }

    /// This server's code index `j`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the server is still reconstructing metadata (not yet
    /// answering client queries).
    pub fn is_rebuilding(&self) -> bool {
        self.rebuild.is_some()
    }

    /// The committed tag for an object (t0 if the object is unknown).
    pub fn committed_tag(&self, obj: ObjectId) -> Tag {
        self.objects
            .get(&obj)
            .map(|s| s.tc)
            .unwrap_or_else(Tag::initial)
    }

    /// Total bytes of values currently held in temporary storage across all
    /// objects (the paper's L1 storage cost, un-normalised).
    pub fn temporary_storage_bytes(&self) -> usize {
        self.objects
            .values()
            .flat_map(|s| s.list.values())
            .filter_map(|v| v.as_ref().map(Value::len))
            .sum()
    }

    /// Number of (tag, value) entries whose value is still present, across
    /// all objects.
    pub fn live_list_entries(&self) -> usize {
        self.objects
            .values()
            .flat_map(|s| s.list.values())
            .filter(|v| v.is_some())
            .count()
    }

    /// Number of readers currently registered in Γ across all objects.
    pub fn registered_readers(&self) -> usize {
        self.objects.values().map(|s| s.gamma.len()).sum()
    }

    /// Total number of per-tag metadata entries (list keys, commit counters,
    /// broadcast dedup sets, pending acks, …) across all objects.
    ///
    /// With garbage collection at the committed tag, this stays proportional
    /// to the number of objects plus the operations *concurrently* in flight
    /// — not to the total number of operations ever performed. The cluster
    /// stress tests assert exactly that bound over sustained runs.
    pub fn metadata_entries(&self) -> usize {
        self.objects
            .values()
            .map(ObjectState::metadata_entries)
            .sum()
    }

    /// Number of stripe parts currently buffered in incomplete striped-write
    /// assemblies, across all objects.
    pub fn pending_stripe_parts(&self) -> usize {
        self.stripes
            .values()
            .flat_map(|by_tag| by_tag.values())
            .map(|a| a.parts.len())
            .sum()
    }

    /// Scratch-pool statistics for the striped `write-to-L2` path.
    ///
    /// `peak_round_bytes` is the peak number of buffer bytes simultaneously
    /// checked out of the pool — i.e. the offload's peak encode allocation
    /// (one frame scratch plus `n2` element outputs per stripe).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The server's monotonic observability counters (stripe assembly
    /// lifecycle, garbage-collection evictions).
    pub fn obs_counters(&self) -> L1ObsCounters {
        self.obs
    }

    fn state(&mut self, obj: ObjectId) -> &mut ObjectState {
        self.objects.entry(obj).or_insert_with(ObjectState::new)
    }

    // ------------------------------------------------------------------
    // Broadcast primitive.
    // ------------------------------------------------------------------

    fn broadcast_commit(
        &mut self,
        obj: ObjectId,
        tag: Tag,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let origin = ctx.id();
        if self.options.direct_broadcast {
            let msg = LdsMessage::BcastDeliver { obj, tag, origin };
            if self.options.inline_self_broadcast {
                ctx.send_all(
                    self.membership.l1.iter().copied().filter(|&p| p != origin),
                    msg,
                );
                self.on_bcast_deliver(obj, tag, origin, ctx);
            } else {
                ctx.send_all(self.membership.l1.iter().copied(), msg);
            }
        } else {
            let relays = self.membership.broadcast_relays(self.params.f1());
            let inline_relay = self.options.inline_self_broadcast && relays.contains(&origin);
            ctx.send_all(
                relays
                    .iter()
                    .copied()
                    .filter(|&p| !inline_relay || p != origin),
                LdsMessage::BcastSend { obj, tag, origin },
            );
            if inline_relay {
                self.on_bcast_send(obj, tag, origin, ctx);
            }
        }
    }

    fn on_bcast_send(
        &mut self,
        obj: ObjectId,
        tag: Tag,
        origin: ProcessId,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        // Relay role: forward to every L1 server on first reception.
        if self
            .state(obj)
            .relayed
            .entry(tag)
            .or_default()
            .insert(origin)
        {
            let msg = LdsMessage::BcastDeliver { obj, tag, origin };
            if self.options.inline_self_broadcast {
                let me = ctx.id();
                ctx.send_all(self.membership.l1.iter().copied().filter(|&p| p != me), msg);
                self.on_bcast_deliver(obj, tag, origin, ctx);
            } else {
                ctx.send_all(self.membership.l1.iter().copied(), msg);
            }
        }
    }

    fn on_bcast_deliver(
        &mut self,
        obj: ObjectId,
        tag: Tag,
        origin: ProcessId,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let commit_quorum = self.params.commit_quorum();
        let st = self.state(obj);
        // Consume each (object, tag, origin) broadcast exactly once.
        if !st.consumed.entry(tag).or_default().insert(origin) {
            return;
        }
        let count = st.commit_count.entry(tag).or_insert(0);
        *count += 1;
        let count = *count;

        // ACK the writer once enough broadcasts were consumed and the pair is
        // (still) in the list — i.e. this server received the PUT-DATA.
        if st.list.contains_key(&tag) && count >= commit_quorum && !st.acked.contains(&tag) {
            if let Some(&(writer, op)) = st.pending_write.get(&tag) {
                st.acked.insert(tag);
                ctx.send(writer, LdsMessage::AckPutData { obj, op, tag });
            }
        }

        if tag > st.tc {
            self.advance_committed_tag(obj, tag, false, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Committed-tag advancement (shared by broadcast-resp and put-tag-resp).
    // ------------------------------------------------------------------

    /// Updates `t_c` to `new_tc` and performs the accompanying steps: serving
    /// registered readers, garbage collection and (when the value is
    /// available) the internal `write-to-L2`.
    fn advance_committed_tag(
        &mut self,
        obj: ObjectId,
        new_tc: Tag,
        via_put_tag: bool,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let st = self.state(obj);
        debug_assert!(new_tc > st.tc);
        st.tc = new_tc;
        let value = st.list.get(&new_tc).cloned().flatten();

        let (gc_entries, gc_bytes) = match value {
            Some(v) => {
                // Serve every registered reader whose requested tag is covered.
                Self::serve_registered(st, obj, new_tc, &v, ctx);
                let gc = st.gc_below(obj, new_tc, ctx);
                self.write_to_l2(obj, new_tc, &v, ctx);
                gc
            }
            None => {
                // Record the committed tag as (t_c, ⊥) even when the value has
                // not arrived here: later get-tag quorums must observe every
                // tag this server ever acknowledged or committed, or a future
                // writer could mint a non-monotonic (even colliding) tag.
                st.list.entry(new_tc).or_insert(None);
                if via_put_tag {
                    // Serve readers with the newest value still held, if any
                    // covers their request.
                    if let Some((t_bar, v_bar)) = st.latest_value_below(new_tc) {
                        Self::serve_registered(st, obj, t_bar, &v_bar, ctx);
                    }
                }
                st.gc_below(obj, new_tc, ctx)
            }
        };
        self.obs.gc_evicted_entries += gc_entries;
        self.obs.gc_evicted_bytes += gc_bytes;
    }

    fn serve_registered(
        st: &mut ObjectState,
        obj: ObjectId,
        tag: Tag,
        value: &Value,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let mut remaining = Vec::with_capacity(st.gamma.len());
        for reg in st.gamma.drain(..) {
            if tag >= reg.treq {
                ctx.send(
                    reg.reader,
                    LdsMessage::DataResp {
                        obj,
                        op: reg.op,
                        tag: Some(tag),
                        payload: ReadPayload::Value(value.clone()),
                    },
                );
            } else {
                remaining.push(reg);
            }
        }
        st.gamma = remaining;
    }

    // ------------------------------------------------------------------
    // Internal write-to-L2.
    // ------------------------------------------------------------------

    fn write_to_l2(
        &mut self,
        obj: ObjectId,
        tag: Tag,
        value: &Value,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        if self.options.frugal_offload && self.index > self.params.f1() {
            // Offloading is left to the first f1+1 servers; this server keeps
            // the committed value (it never receives offload acks, so the
            // value survives until the next commit's gc).
            return;
        }
        {
            let st = self.state(obj);
            if !st.offloaded.insert(tag) {
                return; // already initiated for this tag
            }
            st.write_counter.entry(tag).or_insert(0);
        }
        let n1 = self.backend.n1();
        if self.options.stripe_threshold > 0 && value.len() >= self.options.stripe_threshold {
            // Chunk-striped offload: encode stripe by stripe into pooled
            // scratch buffers and stream each stripe's n2 encodes as
            // WRITE-CODE-STRIPE messages. Peak allocation is one frame
            // scratch plus n2 element outputs per stripe — O(stripe × n2)
            // instead of O(value × n2) — and the L2 servers reassemble the
            // parts under the single tag.
            let backend = Arc::clone(&self.backend);
            let l2 = self.membership.l2.clone();
            let stripe_size = self.options.stripe_size;
            let result = stripe::encode_elements_striped(
                &*backend,
                value,
                stripe_size,
                &mut self.pool,
                |i, seq, count, part| {
                    ctx.send(
                        l2[i],
                        LdsMessage::WriteCodeStripe {
                            obj,
                            tag,
                            seq,
                            count,
                            part,
                        },
                    );
                },
            );
            match result {
                Ok(()) => return,
                Err(err) => {
                    // Fall through to the monolithic path (which has its own
                    // per-element fallback) rather than losing the offload.
                    // Stripes emitted before the failure are not recalled;
                    // the L2 servers drop a partial assembly from this sender
                    // when the monolithic WRITE-CODE-ELEM for the same
                    // (obj, tag) arrives behind it on the same channel, so no
                    // stranded partial stream survives the fallback.
                    debug_assert!(false, "striped write-to-L2 encoding failure: {err}");
                }
            }
        }
        // Encode all n2 elements in one call, straight into the buffers the
        // messages will own: the MBR backend frames the value once for the
        // whole batch (instead of once per element — the dominant redundant
        // work of small-value writes), and the plan-cached codec creates no
        // temporaries inside.
        let mut bufs: Vec<Vec<u8>> = (0..self.membership.n2()).map(|_| Vec::new()).collect();
        match self.backend.encode_l2_elements_into(value, &mut bufs) {
            Ok(()) => {
                for (i, (buf, &l2)) in bufs.into_iter().zip(self.membership.l2.iter()).enumerate() {
                    let element = Share::new(n1 + i, buf);
                    ctx.send(l2, LdsMessage::WriteCodeElem { obj, tag, element });
                }
            }
            Err(err) => {
                // Encoding failures indicate misconfiguration; surface in
                // debug builds. In release, fall back to per-element encodes
                // so one bad element loses only its own message (like a
                // crashed link endpoint), not the whole offload.
                debug_assert!(false, "write-to-L2 bulk encoding failure: {err}");
                for (i, &l2) in self.membership.l2.iter().enumerate() {
                    let mut buf = Vec::new();
                    if self
                        .backend
                        .encode_l2_element_into(value, i, &mut buf)
                        .is_ok()
                    {
                        let element = Share::new(n1 + i, buf);
                        ctx.send(l2, LdsMessage::WriteCodeElem { obj, tag, element });
                    }
                }
            }
        }
    }

    fn on_ack_code_elem(&mut self, obj: ObjectId, tag: Tag) {
        let quorum = self.params.l2_quorum();
        let cache = self.options.cache_committed_value;
        let st = self.state(obj);
        let counter = st.write_counter.entry(tag).or_insert(0);
        *counter += 1;
        if *counter == quorum && !cache {
            // write-to-L2 complete: garbage-collect the value (keep the tag).
            // With the edge-cache option the value stays until the next
            // commit's gc instead, so reads skip regenerate-from-L2.
            if let Some(entry) = st.list.get_mut(&tag) {
                *entry = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Writer-facing actions.
    // ------------------------------------------------------------------

    fn on_query_tag(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        op: OpId,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let tag = self.state(obj).max_list_tag();
        ctx.send(from, LdsMessage::TagResp { obj, op, tag });
    }

    fn on_put_data(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        op: OpId,
        tag: Tag,
        value: Value,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        {
            let st = self.state(obj);
            st.pending_write.insert(tag, (from, op));
        }
        // Announce the tag to all L1 servers (metadata broadcast).
        self.broadcast_commit(obj, tag, ctx);
        let st = self.state(obj);
        if tag > st.tc {
            st.list.insert(tag, Some(value));
        } else if tag == st.tc && matches!(st.list.get(&tag), None | Some(None)) {
            // The commit broadcasts raced ahead of the writer's PUT-DATA: the
            // tag is already committed here but the value never arrived. Store
            // it now so registered readers can be served and the coded
            // elements reach L2, then acknowledge.
            st.list.insert(tag, Some(value.clone()));
            Self::serve_registered(st, obj, tag, &value, ctx);
            st.acked.insert(tag);
            ctx.send(from, LdsMessage::AckPutData { obj, op, tag });
            self.write_to_l2(obj, tag, &value, ctx);
        } else {
            // The tag is strictly outdated (or its value is already present);
            // record it in the list so get-tag quorums observe it, and
            // acknowledge immediately.
            st.list.entry(tag).or_insert(None);
            st.acked.insert(tag);
            ctx.send(from, LdsMessage::AckPutData { obj, op, tag });
        }
    }

    /// One stripe of a chunk-striped write arrived. Stripes are buffered
    /// (order-independently) per (object, tag); once all `count` are present
    /// the reassembled value runs through the normal `put-data-resp` action,
    /// so commit broadcasting, reader service, acks and `write-to-L2` treat
    /// the logical write exactly like a monolithic PUT-DATA.
    ///
    /// Reassembly is zero-copy in-process: the writer's stripes are
    /// `Arc`-slice views of one source buffer, which [`Value::concat`]
    /// rejoins without copying when they are contiguous.
    #[allow(clippy::too_many_arguments)]
    fn on_put_stripe(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        op: OpId,
        tag: Tag,
        seq: u32,
        count: u32,
        stripe: Value,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        // A malformed header can never reassemble the value; drop it (in
        // release builds too) rather than buffer a part that would complete
        // a corrupt assembly or strand it forever.
        if count == 0 || seq >= count {
            self.obs.assembly_parts_dropped += 1;
            debug_assert!(false, "malformed stripe header: seq {seq}, count {count}");
            return;
        }
        let by_tag = self.stripes.entry(obj).or_default();
        let opened = !by_tag.contains_key(&tag);
        let assembly = by_tag.entry(tag).or_insert_with(|| StripeAssembly {
            count,
            parts: BTreeMap::new(),
            from,
            op,
        });
        if opened {
            self.obs.assemblies_opened += 1;
        }
        if assembly.count != count {
            // The stripe count is fixed per logical write (the tag binds the
            // stream to one writer and one value); a disagreeing part would
            // reassemble a corrupt value, so reject it like any other
            // malformed message.
            self.obs.assembly_parts_dropped += 1;
            return;
        }
        assembly.parts.insert(seq, stripe);
        if assembly.parts.len() < assembly.count as usize {
            return;
        }
        self.obs.assemblies_completed += 1;
        let assembly = by_tag.remove(&tag).expect("assembly present");
        if by_tag.is_empty() {
            self.stripes.remove(&obj);
        }
        let parts: Vec<Value> = assembly.parts.into_values().collect();
        let value = Value::concat(&parts);
        self.on_put_data(assembly.from, obj, assembly.op, tag, value, ctx);
    }

    // ------------------------------------------------------------------
    // Reader-facing actions.
    // ------------------------------------------------------------------

    fn on_query_comm_tag(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        op: OpId,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let tag = self.state(obj).tc;
        ctx.send(from, LdsMessage::CommTagResp { obj, op, tag });
    }

    fn on_query_data(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        op: OpId,
        treq: Tag,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let (serve, register) = {
            let st = self.state(obj);
            if let Some(Some(v)) = st.list.get(&treq) {
                (Some((treq, v.clone())), false)
            } else if st.tc > treq {
                match st.list.get(&st.tc) {
                    Some(Some(v)) => (Some((st.tc, v.clone())), false),
                    _ => (None, true),
                }
            } else {
                (None, true)
            }
        };

        if let Some((tag, value)) = serve {
            ctx.send(
                from,
                LdsMessage::DataResp {
                    obj,
                    op,
                    tag: Some(tag),
                    payload: ReadPayload::Value(value),
                },
            );
            return;
        }
        if register {
            let st = self.state(obj);
            st.gamma.push(RegisteredReader {
                reader: from,
                op,
                treq,
            });
            st.regen.insert(
                (from, op),
                RegenState {
                    treq,
                    respondents: HashSet::new(),
                    responses: Vec::new(),
                },
            );
            // regenerate-from-L2: ask every L2 server for helper data.
            let msg = LdsMessage::QueryCodeElem {
                obj,
                reader: from,
                op,
            };
            ctx.send_all(self.membership.l2.iter().copied(), msg);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_send_helper_elem(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        reader: ProcessId,
        op: OpId,
        tag: Tag,
        helper: HelperData,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let quorum = self.params.l2_quorum();
        let repair_threshold = self.backend.repair_threshold();
        let my_index = self.index;
        let backend = Arc::clone(&self.backend);

        let st = self.state(obj);
        let Some(regen) = st.regen.get_mut(&(reader, op)) else {
            return; // stale helper response for an already-completed regenerate
        };
        if !regen.respondents.insert(from) {
            return;
        }
        regen.responses.push((tag, helper));
        if regen.respondents.len() < quorum {
            return;
        }
        // n2 - f2 responses received: attempt regeneration of c_j with the
        // highest tag that has at least `repair_threshold` helper payloads.
        let regen = st.regen.remove(&(reader, op)).expect("checked above");
        let mut by_tag: BTreeMap<Tag, Vec<HelperData>> = BTreeMap::new();
        for (t, h) in regen.responses {
            by_tag.entry(t).or_default().push(h);
        }
        let mut regenerated = None;
        for (t, helpers) in by_tag.iter().rev() {
            if helpers.len() >= repair_threshold {
                if let Ok(share) = stripe::regenerate_l1(&*backend, my_index, helpers) {
                    regenerated = Some((*t, share));
                    break;
                }
            }
        }

        // Only respond if this reader is still registered (it may have been
        // served — and unregistered — by a concurrent commit in the meantime).
        let still_registered = st.gamma.iter().any(|g| g.reader == reader && g.op == op);
        if !still_registered {
            return;
        }
        match regenerated {
            Some((t, share)) if t >= regen.treq => ctx.send(
                reader,
                LdsMessage::DataResp {
                    obj,
                    op,
                    tag: Some(t),
                    payload: ReadPayload::Coded(share),
                },
            ),
            _ => ctx.send(
                reader,
                LdsMessage::DataResp {
                    obj,
                    op,
                    tag: None,
                    payload: ReadPayload::None,
                },
            ),
        }
        // Note: the reader stays registered; it may still be served later with
        // a full (tag, value) pair.
    }

    fn on_put_tag(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        op: OpId,
        tag: Tag,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        {
            let st = self.state(obj);
            // Unregister the reader (all registrations from this reader).
            st.gamma.retain(|g| g.reader != from);
        }
        let needs_advance = {
            let st = self.state(obj);
            tag > st.tc
        };
        if needs_advance {
            self.advance_committed_tag(obj, tag, true, ctx);
        }
        ctx.send(from, LdsMessage::AckPutTag { obj, op });
    }

    // ------------------------------------------------------------------
    // Online node repair (cluster runtime extension).
    // ------------------------------------------------------------------

    /// Helper role: stream a metadata snapshot (committed tag + list
    /// entries) for every known object to the replacement of crashed L1
    /// peer `failed`, then an end-of-stream marker.
    fn on_repair_help(
        &mut self,
        failed: ProcessId,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        if self.rebuild.is_some() {
            return; // a rebuilding server cannot help anyone
        }
        if self.membership.l1_index_of(failed).is_none() || failed == ctx.id() {
            return; // not an L1 repair (or nonsensical self-repair)
        }
        let mut sent = 0u64;
        for (&obj, st) in &self.objects {
            if st.tc == Tag::initial() && st.max_list_tag() == Tag::initial() {
                continue; // pristine object — the replacement starts there anyway
            }
            let entries: Vec<(Tag, Option<Value>)> =
                st.list.iter().map(|(t, v)| (*t, v.clone())).collect();
            ctx.send(
                failed,
                LdsMessage::RepairShare {
                    obj,
                    payload: RepairPayload::Meta { tc: st.tc, entries },
                },
            );
            sent += 1;
        }
        ctx.send(
            failed,
            LdsMessage::RepairDone {
                obj: ObjectId(0),
                objects: sent,
                bytes_by_helper: Vec::new(),
                fallback_bytes: 0,
            },
        );
    }

    /// Replacement role: merge one peer's per-object metadata snapshot.
    /// List entries are facts — a tag uniquely identifies its value — so the
    /// union over all snapshots (plus anything the live stream delivers
    /// concurrently) is merged in place; committed tags are deferred to
    /// finalization so the normal advancement (reader service, gc,
    /// write-to-L2) runs once per object.
    fn on_repair_meta(
        &mut self,
        from: ProcessId,
        obj: ObjectId,
        tc: Tag,
        entries: Vec<(Tag, Option<Value>)>,
    ) {
        {
            let Some(rebuild) = self.rebuild.as_mut() else {
                return; // stale snapshot for an already-completed repair
            };
            let bytes: usize = entries
                .iter()
                .filter_map(|(_, v)| v.as_ref().map(Value::len))
                .sum();
            *rebuild.bytes_by_helper.entry(from).or_insert(0) += bytes as u64;
            let reported = rebuild.reported_tc.entry(obj).or_insert(tc);
            if tc > *reported {
                *reported = tc;
            }
        }
        let st = self.state(obj);
        for (tag, value) in entries {
            if tag < st.tc {
                // Already superseded by a commit the replacement absorbed
                // from the live stream: merging it back would resurrect
                // state gc_below just pruned (and retain it until the
                // object's next commit).
                continue;
            }
            match st.list.entry(tag) {
                btree_map::Entry::Vacant(e) => {
                    e.insert(value);
                }
                btree_map::Entry::Occupied(mut e) => {
                    // Fill in a value another peer had already gc'ed to ⊥.
                    if e.get().is_none() && value.is_some() {
                        e.insert(value);
                    }
                }
            }
        }
    }

    /// Replacement role: count an end-of-stream marker; on the last one,
    /// commit the reconstructed tags, report, and go live.
    fn on_repair_done(&mut self, ctx: &mut Context<'_, LdsMessage, ProtocolEvent>) {
        let Some(rebuild) = self.rebuild.as_mut() else {
            return;
        };
        rebuild.dones += 1;
        if rebuild.dones < rebuild.expected_dones {
            return;
        }
        let rebuild = self.rebuild.take().expect("checked above");
        let mut objects = 0u64;
        for (obj, tc) in rebuild.reported_tc {
            objects += 1;
            let needs_advance = tc > self.state(obj).tc;
            if needs_advance {
                // The normal advancement path: serves (no) readers, gc's
                // below the committed tag and re-offloads the committed
                // value to L2 when it is present.
                self.advance_committed_tag(obj, tc, false, ctx);
            }
        }
        let bytes_total: u64 = rebuild.bytes_by_helper.values().sum();
        ctx.send(
            rebuild.report_to,
            LdsMessage::RepairDone {
                obj: ObjectId(0),
                objects,
                bytes_by_helper: rebuild.bytes_by_helper.into_iter().collect(),
                // Metadata reconstruction has no coded shortcut: the
                // "fallback" is exactly what was shipped.
                fallback_bytes: bytes_total,
            },
        );
    }
}

impl Process<LdsMessage, ProtocolEvent> for L1Server {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: LdsMessage,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        // While rebuilding, the replacement answers no client queries: a
        // get-tag / committed-tag / data response computed from an incomplete
        // list could displace a complete server in a quorum and break tag
        // monotonicity. Everything else — the write stream, broadcasts,
        // put-tag write-backs — is absorbed normally, which is exactly how
        // in-flight operations catch the replacement up.
        if self.rebuild.is_some()
            && matches!(
                msg,
                LdsMessage::QueryTag { .. }
                    | LdsMessage::QueryCommTag { .. }
                    | LdsMessage::QueryData { .. }
            )
        {
            return;
        }
        match msg {
            LdsMessage::QueryTag { obj, op } => self.on_query_tag(from, obj, op, ctx),
            LdsMessage::PutData {
                obj,
                op,
                tag,
                value,
            } => self.on_put_data(from, obj, op, tag, value, ctx),
            LdsMessage::PutStripe {
                obj,
                op,
                tag,
                seq,
                count,
                stripe,
            } => self.on_put_stripe(from, obj, op, tag, seq, count, stripe, ctx),
            LdsMessage::BcastSend { obj, tag, origin } => self.on_bcast_send(obj, tag, origin, ctx),
            LdsMessage::BcastDeliver { obj, tag, origin } => {
                self.on_bcast_deliver(obj, tag, origin, ctx)
            }
            LdsMessage::QueryCommTag { obj, op } => self.on_query_comm_tag(from, obj, op, ctx),
            LdsMessage::QueryData { obj, op, treq } => self.on_query_data(from, obj, op, treq, ctx),
            LdsMessage::PutTag { obj, op, tag } => self.on_put_tag(from, obj, op, tag, ctx),
            LdsMessage::AckCodeElem { obj, tag } => self.on_ack_code_elem(obj, tag),
            LdsMessage::SendHelperElem {
                obj,
                reader,
                op,
                tag,
                helper,
            } => self.on_send_helper_elem(from, obj, reader, op, tag, helper, ctx),
            LdsMessage::RepairHelp { failed, .. } => self.on_repair_help(failed, ctx),
            LdsMessage::RepairShare {
                obj,
                payload: RepairPayload::Meta { tc, entries },
            } => self.on_repair_meta(from, obj, tc, entries),
            LdsMessage::RepairDone { .. } => self.on_repair_done(ctx),
            // Messages not addressed to an L1 server are ignored (they can
            // only appear through harness misconfiguration).
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{make_backend, BackendKind};

    fn setup() -> (SystemParams, Membership, Arc<dyn BackendCodec>) {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap(); // n1=4, n2=5
        let l1: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (4..9).map(ProcessId).collect();
        let membership = Membership::new(l1, l2);
        let backend = make_backend(BackendKind::Mbr, &params).unwrap();
        (params, membership, backend)
    }

    fn make_server(index: usize) -> L1Server {
        let (params, membership, backend) = setup();
        L1Server::new(index, params, membership, backend, L1Options::default())
    }

    /// Drives one message into the server and returns the outgoing messages.
    fn step(
        server: &mut L1Server,
        from: ProcessId,
        msg: LdsMessage,
    ) -> Vec<(ProcessId, LdsMessage)> {
        let mut outgoing = Vec::new();
        let mut events = Vec::new();
        let mut ctx = Context::standalone(
            ProcessId(server.index),
            lds_sim::SimTime::ZERO,
            &mut outgoing,
            &mut events,
        );
        server.on_message(from, msg, &mut ctx);
        outgoing
    }

    #[test]
    fn query_tag_returns_max_list_tag() {
        let mut s = make_server(0);
        let out = step(
            &mut s,
            ProcessId(100),
            LdsMessage::QueryTag {
                obj: ObjectId(0),
                op: OpId::default(),
            },
        );
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            LdsMessage::TagResp { tag, .. } => assert_eq!(*tag, Tag::initial()),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn put_data_with_new_tag_stores_and_broadcasts() {
        let mut s = make_server(0);
        let tag = Tag::new(1, crate::tag::ClientId(7));
        let out = step(
            &mut s,
            ProcessId(100),
            LdsMessage::PutData {
                obj: ObjectId(0),
                op: OpId::default(),
                tag,
                value: Value::from("v"),
            },
        );
        // No immediate ACK (tag is fresh); broadcasts go to the f1+1 = 2 relays.
        assert!(out
            .iter()
            .all(|(_, m)| !matches!(m, LdsMessage::AckPutData { .. })));
        let relays: Vec<_> = out
            .iter()
            .filter(|(_, m)| matches!(m, LdsMessage::BcastSend { .. }))
            .collect();
        assert_eq!(relays.len(), 2);
        assert_eq!(s.live_list_entries(), 1);
        assert_eq!(s.temporary_storage_bytes(), 1);
    }

    #[test]
    fn put_data_with_stale_tag_acks_immediately() {
        let mut s = make_server(0);
        let obj = ObjectId(0);
        let t1 = Tag::new(5, crate::tag::ClientId(1));
        // Commit a higher tag first via direct consumption of broadcasts.
        for origin in 0..4 {
            step(
                &mut s,
                ProcessId(origin),
                LdsMessage::BcastDeliver {
                    obj,
                    tag: t1,
                    origin: ProcessId(origin),
                },
            );
        }
        assert_eq!(s.committed_tag(obj), t1);
        // Now a PUT-DATA with an older tag must be acked straight away.
        let stale = Tag::new(2, crate::tag::ClientId(1));
        let out = step(
            &mut s,
            ProcessId(50),
            LdsMessage::PutData {
                obj,
                op: OpId::default(),
                tag: stale,
                value: Value::from("old"),
            },
        );
        assert!(out
            .iter()
            .any(|(to, m)| *to == ProcessId(50) && matches!(m, LdsMessage::AckPutData { .. })));
    }

    #[test]
    fn commit_quorum_triggers_ack_and_offload() {
        let mut s = make_server(0);
        let obj = ObjectId(0);
        let tag = Tag::new(1, crate::tag::ClientId(3));
        let writer = ProcessId(77);
        step(
            &mut s,
            writer,
            LdsMessage::PutData {
                obj,
                op: OpId::default(),
                tag,
                value: Value::from("value!"),
            },
        );
        // Consume commit_quorum = f1 + k = 3 distinct broadcasts.
        let mut all_out = Vec::new();
        for origin in 0..3 {
            all_out.extend(step(
                &mut s,
                ProcessId(origin),
                LdsMessage::BcastDeliver {
                    obj,
                    tag,
                    origin: ProcessId(origin),
                },
            ));
        }
        // ACK to the writer.
        assert!(all_out
            .iter()
            .any(|(to, m)| *to == writer && matches!(m, LdsMessage::AckPutData { .. })));
        // write-to-L2 initiated: one WRITE-CODE-ELEM per L2 server.
        let writes: Vec<_> = all_out
            .iter()
            .filter(|(_, m)| matches!(m, LdsMessage::WriteCodeElem { .. }))
            .collect();
        assert_eq!(writes.len(), 5);
        assert_eq!(s.committed_tag(obj), tag);

        // Value is garbage collected only after n2 - f2 = 4 ACKs from L2.
        for _ in 0..3 {
            step(&mut s, ProcessId(4), LdsMessage::AckCodeElem { obj, tag });
        }
        assert_eq!(s.live_list_entries(), 1);
        step(&mut s, ProcessId(5), LdsMessage::AckCodeElem { obj, tag });
        assert_eq!(
            s.live_list_entries(),
            0,
            "value gc'ed after write-to-L2 completes"
        );
        assert_eq!(s.temporary_storage_bytes(), 0);
    }

    #[test]
    fn query_data_served_from_list_when_possible() {
        let mut s = make_server(1);
        let obj = ObjectId(0);
        let tag = Tag::new(1, crate::tag::ClientId(1));
        step(
            &mut s,
            ProcessId(70),
            LdsMessage::PutData {
                obj,
                op: OpId::default(),
                tag,
                value: Value::from("cached"),
            },
        );
        let out = step(
            &mut s,
            ProcessId(80),
            LdsMessage::QueryData {
                obj,
                op: OpId::default(),
                treq: tag,
            },
        );
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            LdsMessage::DataResp {
                tag: Some(t),
                payload: ReadPayload::Value(v),
                ..
            } => {
                assert_eq!(*t, tag);
                assert_eq!(v.as_bytes(), b"cached");
            }
            other => panic!("expected value response, got {other:?}"),
        }
    }

    #[test]
    fn query_data_registers_reader_and_queries_l2_on_miss() {
        let mut s = make_server(2);
        let obj = ObjectId(0);
        let out = step(
            &mut s,
            ProcessId(90),
            LdsMessage::QueryData {
                obj,
                op: OpId::default(),
                treq: Tag::initial(),
            },
        );
        // One QUERY-CODE-ELEM per L2 server, no direct response.
        assert_eq!(out.len(), 5);
        assert!(out
            .iter()
            .all(|(_, m)| matches!(m, LdsMessage::QueryCodeElem { .. })));
        assert_eq!(s.registered_readers(), 1);
    }

    #[test]
    fn put_tag_unregisters_and_advances_commit() {
        let mut s = make_server(0);
        let obj = ObjectId(0);
        let reader = ProcessId(90);
        step(
            &mut s,
            reader,
            LdsMessage::QueryData {
                obj,
                op: OpId::default(),
                treq: Tag::initial(),
            },
        );
        assert_eq!(s.registered_readers(), 1);
        let t = Tag::new(3, crate::tag::ClientId(2));
        let out = step(
            &mut s,
            reader,
            LdsMessage::PutTag {
                obj,
                op: OpId::default(),
                tag: t,
            },
        );
        assert_eq!(s.registered_readers(), 0);
        assert_eq!(s.committed_tag(obj), t);
        assert!(out
            .iter()
            .any(|(to, m)| *to == reader && matches!(m, LdsMessage::AckPutTag { .. })));
    }

    #[test]
    fn late_commit_serves_registered_reader() {
        let mut s = make_server(0);
        let obj = ObjectId(0);
        let reader = ProcessId(91);
        // Reader registers (nothing in the list yet).
        step(
            &mut s,
            reader,
            LdsMessage::QueryData {
                obj,
                op: OpId::default(),
                treq: Tag::initial(),
            },
        );
        // A concurrent write arrives and commits.
        let tag = Tag::new(1, crate::tag::ClientId(4));
        step(
            &mut s,
            ProcessId(60),
            LdsMessage::PutData {
                obj,
                op: OpId::default(),
                tag,
                value: Value::from("fresh"),
            },
        );
        let mut served = Vec::new();
        for origin in 0..3 {
            served.extend(step(
                &mut s,
                ProcessId(origin),
                LdsMessage::BcastDeliver {
                    obj,
                    tag,
                    origin: ProcessId(origin),
                },
            ));
        }
        let to_reader: Vec<_> = served.iter().filter(|(to, _)| *to == reader).collect();
        assert_eq!(
            to_reader.len(),
            1,
            "registered reader is served exactly once"
        );
        match &to_reader[0].1 {
            LdsMessage::DataResp {
                payload: ReadPayload::Value(v),
                ..
            } => {
                assert_eq!(v.as_bytes(), b"fresh")
            }
            other => panic!("expected value response, got {other:?}"),
        }
        assert_eq!(s.registered_readers(), 0);
    }

    #[test]
    fn helper_responses_regenerate_coded_element() {
        // Build a full complement of L2 elements for a known value, feed the
        // helper payloads to the server and check the regenerated response.
        let (params, membership, backend) = setup();
        let mut s = L1Server::new(
            1,
            params,
            membership.clone(),
            Arc::clone(&backend),
            L1Options::default(),
        );
        let obj = ObjectId(0);
        let reader = ProcessId(90);
        let op = OpId::default();
        // Register the reader.
        step(
            &mut s,
            reader,
            LdsMessage::QueryData {
                obj,
                op,
                treq: Tag::initial(),
            },
        );

        let value = Value::from("regenerate me");
        let tag = Tag::new(1, crate::tag::ClientId(1));
        let mut responses = Vec::new();
        for i in 0..5 {
            let elem = backend.encode_l2_element(&value, i).unwrap();
            let helper = backend.helper_for_l1(&elem, i, 1).unwrap();
            responses.extend(step(
                &mut s,
                membership.l2[i],
                LdsMessage::SendHelperElem {
                    obj,
                    reader,
                    op,
                    tag,
                    helper,
                },
            ));
        }
        // After n2 - f2 = 4 responses the server regenerates and replies; the
        // fifth helper is stale and ignored.
        let to_reader: Vec<_> = responses.iter().filter(|(to, _)| *to == reader).collect();
        assert_eq!(to_reader.len(), 1);
        match &to_reader[0].1 {
            LdsMessage::DataResp {
                tag: Some(t),
                payload: ReadPayload::Coded(share),
                ..
            } => {
                assert_eq!(*t, tag);
                assert_eq!(share.index, 1);
                // The regenerated element matches a direct encoding of c_1.
                let direct = {
                    let full = lds_codes::mbr::ProductMatrixMbr::with_dimensions(9, 2, 3).unwrap();
                    lds_codes::ErasureCode::encode_share(&full, value.as_bytes(), 1).unwrap()
                };
                assert_eq!(share.data, direct.data);
            }
            other => panic!("expected coded response, got {other:?}"),
        }
    }

    #[test]
    fn mixed_tag_helpers_fail_regeneration_gracefully() {
        let (params, membership, backend) = setup();
        let mut s = L1Server::new(
            3,
            params,
            membership.clone(),
            Arc::clone(&backend),
            L1Options::default(),
        );
        let obj = ObjectId(0);
        let reader = ProcessId(91);
        let op = OpId::default();
        step(
            &mut s,
            reader,
            LdsMessage::QueryData {
                obj,
                op,
                treq: Tag::new(9, crate::tag::ClientId(9)),
            },
        );

        // Four helpers, each for a *different* tag: no common tag reaches the
        // repair threshold, so the server answers (⊥, ⊥).
        let value = Value::from("x");
        let mut responses = Vec::new();
        for i in 0..4 {
            let elem = backend.encode_l2_element(&value, i).unwrap();
            let helper = backend.helper_for_l1(&elem, i, 3).unwrap();
            responses.extend(step(
                &mut s,
                membership.l2[i],
                LdsMessage::SendHelperElem {
                    obj,
                    reader,
                    op,
                    tag: Tag::new(i as u64 + 1, crate::tag::ClientId(1)),
                    helper,
                },
            ));
        }
        let to_reader: Vec<_> = responses.iter().filter(|(to, _)| *to == reader).collect();
        assert_eq!(to_reader.len(), 1);
        assert!(matches!(
            &to_reader[0].1,
            LdsMessage::DataResp {
                tag: None,
                payload: ReadPayload::None,
                ..
            }
        ));
    }

    #[test]
    fn direct_broadcast_option_skips_relays() {
        let (params, membership, backend) = setup();
        let mut s = L1Server::new(
            0,
            params,
            membership,
            backend,
            L1Options {
                direct_broadcast: true,
                ..L1Options::default()
            },
        );
        let out = step(
            &mut s,
            ProcessId(100),
            LdsMessage::PutData {
                obj: ObjectId(0),
                op: OpId::default(),
                tag: Tag::new(1, crate::tag::ClientId(1)),
                value: Value::from("v"),
            },
        );
        let delivers = out
            .iter()
            .filter(|(_, m)| matches!(m, LdsMessage::BcastDeliver { .. }))
            .count();
        assert_eq!(
            delivers, 4,
            "direct mode sends COMMIT-TAG to all n1 servers"
        );
        assert_eq!(
            out.iter()
                .filter(|(_, m)| matches!(m, LdsMessage::BcastSend { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn helpers_snapshot_metadata_then_mark_done() {
        let (params, membership, backend) = setup();
        let mut s = L1Server::new(0, params, membership.clone(), backend, L1Options::default());
        let obj = ObjectId(4);
        let tag = Tag::new(2, crate::tag::ClientId(5));
        step(
            &mut s,
            ProcessId(70),
            LdsMessage::PutData {
                obj,
                op: OpId::default(),
                tag,
                value: Value::from("snapshot me"),
            },
        );
        let failed = membership.l1[3];
        let out = step(
            &mut s,
            ProcessId(99),
            LdsMessage::RepairHelp {
                obj: ObjectId(0),
                failed,
            },
        );
        assert_eq!(out.len(), 2, "one snapshot plus the done marker");
        assert!(out.iter().all(|(to, _)| *to == failed));
        match &out[0].1 {
            LdsMessage::RepairShare {
                obj: o,
                payload: RepairPayload::Meta { entries, .. },
            } => {
                assert_eq!(*o, obj);
                assert!(entries
                    .iter()
                    .any(|(t, v)| *t == tag && v.as_ref().is_some_and(|v| !v.is_empty())));
            }
            other => panic!("expected metadata snapshot, got {other:?}"),
        }
        assert!(matches!(
            out[1].1,
            LdsMessage::RepairDone { objects: 1, .. }
        ));
        // An L2 pid as the failed server is refused (wrong layer).
        assert!(step(
            &mut s,
            ProcessId(99),
            LdsMessage::RepairHelp {
                obj: ObjectId(0),
                failed: membership.l2[0],
            }
        )
        .is_empty());
    }

    #[test]
    fn rebuilding_l1_reconstructs_metadata_and_goes_live() {
        let (params, membership, backend) = setup();
        let coordinator = ProcessId(99);
        let mut s = L1Server::rebuilding(
            3,
            params,
            membership.clone(),
            Arc::clone(&backend),
            L1Options::default(),
            2, // two helper peers, one shard each
            coordinator,
        );
        assert!(s.is_rebuilding());
        let obj = ObjectId(0);
        let t1 = Tag::new(1, crate::tag::ClientId(1));
        let t2 = Tag::new(2, crate::tag::ClientId(2));

        // While rebuilding, client queries get no answer.
        assert!(step(
            &mut s,
            ProcessId(70),
            LdsMessage::QueryTag {
                obj,
                op: OpId::default()
            },
        )
        .is_empty());
        assert!(step(
            &mut s,
            ProcessId(70),
            LdsMessage::QueryCommTag {
                obj,
                op: OpId::default()
            },
        )
        .is_empty());

        // Peer snapshots: one peer gc'ed the value of t2, the other still
        // holds it; the union restores both the tag set and the value.
        step(
            &mut s,
            membership.l1[0],
            LdsMessage::RepairShare {
                obj,
                payload: RepairPayload::Meta {
                    tc: t2,
                    entries: vec![(t1, None), (t2, None)],
                },
            },
        );
        step(
            &mut s,
            membership.l1[0],
            LdsMessage::RepairDone {
                obj: ObjectId(0),
                objects: 1,
                bytes_by_helper: Vec::new(),
                fallback_bytes: 0,
            },
        );
        assert!(s.is_rebuilding(), "one of two helpers done");
        step(
            &mut s,
            membership.l1[1],
            LdsMessage::RepairShare {
                obj,
                payload: RepairPayload::Meta {
                    tc: t1,
                    entries: vec![(t1, None), (t2, Some(Value::from("kept")))],
                },
            },
        );
        let out = step(
            &mut s,
            membership.l1[1],
            LdsMessage::RepairDone {
                obj: ObjectId(0),
                objects: 1,
                bytes_by_helper: Vec::new(),
                fallback_bytes: 0,
            },
        );
        assert!(!s.is_rebuilding());
        // Finalization committed the max reported tc — with the value
        // present, the normal advancement offloads it to L2 — and reported
        // to the coordinator.
        assert_eq!(s.committed_tag(obj), t2);
        let to_coord: Vec<_> = out.iter().filter(|(to, _)| *to == coordinator).collect();
        assert_eq!(to_coord.len(), 1);
        match &to_coord[0].1 {
            LdsMessage::RepairDone {
                objects,
                bytes_by_helper,
                ..
            } => {
                assert_eq!(*objects, 1);
                assert_eq!(bytes_by_helper.len(), 2);
            }
            other => panic!("expected completion report, got {other:?}"),
        }
        assert!(
            out.iter()
                .any(|(_, m)| matches!(m, LdsMessage::WriteCodeElem { .. })),
            "restored committed value is re-offloaded to L2"
        );

        // Live again: queries are answered with the reconstructed state.
        let out = step(
            &mut s,
            ProcessId(70),
            LdsMessage::QueryTag {
                obj,
                op: OpId::default(),
            },
        );
        assert!(matches!(out[0].1, LdsMessage::TagResp { tag, .. } if tag == t2));
    }

    #[test]
    fn rebuilding_l1_absorbs_inflight_writes() {
        let (params, membership, backend) = setup();
        let mut s = L1Server::rebuilding(
            0,
            params,
            membership.clone(),
            backend,
            L1Options::default(),
            1,
            ProcessId(99),
        );
        let obj = ObjectId(1);
        let tag = Tag::new(7, crate::tag::ClientId(1));
        // A PUT-DATA streams in mid-rebuild: stored and broadcast as usual.
        let out = step(
            &mut s,
            ProcessId(70),
            LdsMessage::PutData {
                obj,
                op: OpId::default(),
                tag,
                value: Value::from("in flight"),
            },
        );
        assert!(out
            .iter()
            .any(|(_, m)| matches!(m, LdsMessage::BcastSend { .. })));
        // Empty helper set finishes instantly; the in-flight tag survives.
        step(
            &mut s,
            membership.l1[1],
            LdsMessage::RepairDone {
                obj: ObjectId(0),
                objects: 0,
                bytes_by_helper: Vec::new(),
                fallback_bytes: 0,
            },
        );
        assert!(!s.is_rebuilding());
        let out = step(
            &mut s,
            ProcessId(70),
            LdsMessage::QueryTag {
                obj,
                op: OpId::default(),
            },
        );
        assert!(matches!(out[0].1, LdsMessage::TagResp { tag: t, .. } if t == tag));
    }

    #[test]
    fn striped_put_assembles_out_of_order_and_acts_like_put_data() {
        let mut s = make_server(0);
        let obj = ObjectId(0);
        let op = OpId::default();
        let tag = Tag::new(1, crate::tag::ClientId(3));
        let writer = ProcessId(77);
        let source = Value::new((0u16..300).map(|b| b as u8).collect());
        let spans = stripe::stripe_spans(source.len(), 128);
        let count = spans.len() as u32;
        assert_eq!(count, 3);

        // Deliver the stripes out of order; nothing happens until the last.
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.rotate_left(1);
        let mut all_out = Vec::new();
        for (delivered, &i) in order.iter().enumerate() {
            assert_eq!(s.pending_stripe_parts(), delivered);
            all_out.extend(step(
                &mut s,
                writer,
                LdsMessage::PutStripe {
                    obj,
                    op,
                    tag,
                    seq: i as u32,
                    count,
                    stripe: source.slice(spans[i].clone()),
                },
            ));
            if delivered + 1 < order.len() {
                assert!(all_out.is_empty(), "incomplete assembly stays silent");
            }
        }
        assert_eq!(s.pending_stripe_parts(), 0, "completed assembly is dropped");
        // The completed write behaves exactly like a monolithic PUT-DATA:
        // broadcasts to the f1+1 relays, value stored whole.
        assert_eq!(
            all_out
                .iter()
                .filter(|(_, m)| matches!(m, LdsMessage::BcastSend { .. }))
                .count(),
            2
        );
        assert_eq!(s.live_list_entries(), 1);
        assert_eq!(s.temporary_storage_bytes(), 300);

        // Committing then serves readers and acks as usual.
        let mut commit_out = Vec::new();
        for origin in 0..3 {
            commit_out.extend(step(
                &mut s,
                ProcessId(origin),
                LdsMessage::BcastDeliver {
                    obj,
                    tag,
                    origin: ProcessId(origin),
                },
            ));
        }
        assert!(commit_out
            .iter()
            .any(|(to, m)| *to == writer && matches!(m, LdsMessage::AckPutData { .. })));
        let out = step(
            &mut s,
            ProcessId(80),
            LdsMessage::QueryData {
                obj,
                op: OpId::default(),
                treq: tag,
            },
        );
        match &out[0].1 {
            LdsMessage::DataResp {
                payload: ReadPayload::Value(v),
                ..
            } => assert_eq!(v.as_bytes(), source.as_bytes()),
            other => panic!("expected value response, got {other:?}"),
        }
    }

    #[test]
    fn striped_offload_streams_stripe_parts_from_the_pool() {
        let (params, membership, backend) = setup();
        let mut s = L1Server::new(
            0,
            params,
            membership,
            backend,
            L1Options {
                stripe_threshold: 1,
                stripe_size: 64,
                ..L1Options::default()
            },
        );
        let obj = ObjectId(0);
        let tag = Tag::new(1, crate::tag::ClientId(3));
        step(
            &mut s,
            ProcessId(77),
            LdsMessage::PutData {
                obj,
                op: OpId::default(),
                tag,
                value: Value::new(vec![7u8; 200]),
            },
        );
        let mut all_out = Vec::new();
        for origin in 0..3 {
            all_out.extend(step(
                &mut s,
                ProcessId(origin),
                LdsMessage::BcastDeliver {
                    obj,
                    tag,
                    origin: ProcessId(origin),
                },
            ));
        }
        // 200 bytes at stripe 64 → 4 stripes × n2 = 5 L2 servers.
        let parts: Vec<_> = all_out
            .iter()
            .filter_map(|(_, m)| match m {
                LdsMessage::WriteCodeStripe { count, .. } => Some(*count),
                _ => None,
            })
            .collect();
        assert_eq!(parts.len(), 20);
        assert!(parts.iter().all(|&c| c == 4));
        assert!(
            !all_out
                .iter()
                .any(|(_, m)| matches!(m, LdsMessage::WriteCodeElem { .. })),
            "striped offload replaces the monolithic element messages"
        );
        let stats = s.pool_stats();
        assert!(stats.reused > 0, "frame scratch is reused across stripes");
        // Peak = one stripe's frame scratch + its n2 element encodes, far
        // below a whole-value encode (whose scratch alone is ~210 bytes).
        assert!(
            stats.peak_round_bytes <= 400,
            "peak {} exceeds the per-stripe bound",
            stats.peak_round_bytes
        );
    }

    /// Acceptance criterion: a 16 MiB write through the striped path
    /// completes with peak encode allocation proportional to
    /// `stripe_size × n2`, not `value × n2`. The replication backend keeps
    /// the test fast (its element is a plain copy), while the pool
    /// instrumentation measures exactly what the MBR path would allocate
    /// per round: every scratch and output buffer comes from the pool.
    #[test]
    fn sixteen_mib_striped_write_has_bounded_peak_allocation() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let l1: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (4..9).map(ProcessId).collect();
        let membership = Membership::new(l1, l2);
        let backend = make_backend(BackendKind::Replication, &params).unwrap();
        let mut s = L1Server::new(
            0,
            params,
            membership,
            backend,
            L1Options {
                stripe_threshold: 1 << 20,
                ..L1Options::default()
            },
        );
        let obj = ObjectId(0);
        let tag = Tag::new(1, crate::tag::ClientId(1));
        const VALUE_LEN: usize = 16 << 20;
        step(
            &mut s,
            ProcessId(77),
            LdsMessage::PutData {
                obj,
                op: OpId::default(),
                tag,
                value: Value::new(vec![0xabu8; VALUE_LEN]),
            },
        );
        let mut all_out = Vec::new();
        for origin in 0..3 {
            all_out.extend(step(
                &mut s,
                ProcessId(origin),
                LdsMessage::BcastDeliver {
                    obj,
                    tag,
                    origin: ProcessId(origin),
                },
            ));
        }
        let stripes = VALUE_LEN / stripe::DEFAULT_STRIPE_SIZE; // 64
        let parts = all_out
            .iter()
            .filter(|(_, m)| matches!(m, LdsMessage::WriteCodeStripe { .. }))
            .count();
        assert_eq!(parts, stripes * 5);
        let stats = s.pool_stats();
        assert!(stats.reused > 0);
        // Peak ≈ stripe × n2 (plus the unused frame scratch); the monolithic
        // path would hold value × n2 = 80 MiB here.
        let bound = 2 * stripe::DEFAULT_STRIPE_SIZE * 5;
        assert!(
            stats.peak_round_bytes <= bound,
            "peak {} exceeds stripe-proportional bound {}",
            stats.peak_round_bytes,
            bound
        );
    }

    #[test]
    fn put_stripe_with_disagreeing_count_is_rejected() {
        let mut s = make_server(0);
        let obj = ObjectId(0);
        let tag = Tag::new(1, crate::tag::ClientId(1));
        let writer = ProcessId(77);
        let op = OpId::default();
        let out = step(
            &mut s,
            writer,
            LdsMessage::PutStripe {
                obj,
                op,
                tag,
                seq: 0,
                count: 2,
                stripe: Value::from("he"),
            },
        );
        assert!(out.is_empty());
        assert_eq!(s.pending_stripe_parts(), 1);
        // A part whose count disagrees with the open assembly is dropped
        // instead of corrupting (or prematurely completing) it.
        let out = step(
            &mut s,
            writer,
            LdsMessage::PutStripe {
                obj,
                op,
                tag,
                seq: 1,
                count: 3,
                stripe: Value::from("xx"),
            },
        );
        assert!(out.is_empty());
        assert_eq!(s.pending_stripe_parts(), 1);
        // The well-formed final part completes the stream and runs the
        // normal put-data action (commit broadcast to the f1+1 relays).
        let out = step(
            &mut s,
            writer,
            LdsMessage::PutStripe {
                obj,
                op,
                tag,
                seq: 1,
                count: 2,
                stripe: Value::from("llo"),
            },
        );
        assert!(out
            .iter()
            .any(|(_, m)| matches!(m, LdsMessage::BcastSend { .. })));
        assert_eq!(s.pending_stripe_parts(), 0);
        assert_eq!(s.temporary_storage_bytes(), 5);
    }

    #[test]
    fn multi_object_state_is_independent() {
        let mut s = make_server(0);
        let t = Tag::new(1, crate::tag::ClientId(1));
        step(
            &mut s,
            ProcessId(100),
            LdsMessage::PutData {
                obj: ObjectId(7),
                op: OpId::default(),
                tag: t,
                value: Value::from("seven"),
            },
        );
        assert_eq!(s.committed_tag(ObjectId(7)), Tag::initial());
        assert_eq!(s.committed_tag(ObjectId(8)), Tag::initial());
        assert_eq!(s.live_list_entries(), 1);
        // Committing on object 7 does not touch object 8.
        for origin in 0..3 {
            step(
                &mut s,
                ProcessId(origin),
                LdsMessage::BcastDeliver {
                    obj: ObjectId(7),
                    tag: t,
                    origin: ProcessId(origin),
                },
            );
        }
        assert_eq!(s.committed_tag(ObjectId(7)), t);
        assert_eq!(s.committed_tag(ObjectId(8)), Tag::initial());
    }
}
