//! The reader client automaton — right column of Fig. 1.
//!
//! A read is three phases, all against L1 only:
//!
//! 1. **get-committed-tag**: collect committed tags from `f1 + k` servers and
//!    set `t_req` to their maximum.
//! 2. **get-data**: send `t_req` to all L1 servers and wait for responses
//!    from `f1 + k` distinct servers such that at least one is a
//!    `(tag, value)` pair, or at least `k` are `(tag, coded-element)` pairs
//!    for a common tag (in which case the value is decoded with the code
//!    `C1`). The pair with the highest tag is selected.
//! 3. **put-tag**: write back the selected tag (not the value) to `f1 + k`
//!    servers, then return the value.
//!
//! # Pipelining
//!
//! Like the writer, the automaton supports several reads in flight at once,
//! keyed by [`OpId`], as long as they target *distinct* objects (the per-
//! object restriction keeps the L1 servers' reader registration, which is
//! keyed by the reader process, unambiguous, and gives pipelined drivers
//! per-object FIFO semantics for free).

use crate::backend::BackendCodec;
use crate::membership::Membership;
use crate::messages::{LdsMessage, ProtocolEvent, ReadPayload};
use crate::params::SystemParams;
use crate::stripe;
use crate::tag::{ClientId, ObjectId, OpId, Tag};
use crate::value::Value;
use lds_codes::Share;
use lds_sim::{Context, Process, ProcessId, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A small tag-validated LRU of hot objects' committed `(tag, value)` pairs.
///
/// The cache never weakens atomicity because it is only consulted *after*
/// the read's get-committed-tag quorum has fixed `t_req`: a tag uniquely
/// identifies its value, so when the cached tag equals `t_req` the cached
/// bytes are exactly what the get-data phase would return — the reader skips
/// straight to the put-tag write-back (which still runs in full).
#[derive(Debug, Default)]
struct ReadCache {
    /// Capacity in entries; `0` disables the cache.
    entries: usize,
    /// LRU order: front = least recently used. One entry per object.
    items: VecDeque<(ObjectId, Tag, Value)>,
}

impl ReadCache {
    /// Returns the cached value for `(obj, tag)` and refreshes its recency.
    fn lookup(&mut self, obj: ObjectId, tag: Tag) -> Option<Value> {
        let pos = self
            .items
            .iter()
            .position(|(o, t, _)| *o == obj && *t == tag)?;
        let entry = self.items.remove(pos).expect("position just found");
        let value = entry.2.clone();
        self.items.push_back(entry);
        Some(value)
    }

    /// Inserts (or refreshes) the committed pair for `obj`, evicting the
    /// least recently used entry when full. No-op while disabled.
    fn insert(&mut self, obj: ObjectId, tag: Tag, value: Value) {
        if self.entries == 0 {
            return;
        }
        if let Some(pos) = self.items.iter().position(|(o, _, _)| *o == obj) {
            self.items.remove(pos);
        }
        self.items.push_back((obj, tag, value));
        while self.items.len() > self.entries {
            self.items.pop_front();
        }
    }

    fn resize(&mut self, entries: usize) {
        self.entries = entries;
        while self.items.len() > entries {
            self.items.pop_front();
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ReadPhase {
    GetCommittedTag,
    GetData,
    PutTag,
}

struct ReadOp {
    op: OpId,
    obj: ObjectId,
    invoked_at: SimTime,
    phase: ReadPhase,
    comm_tags: HashMap<ProcessId, Tag>,
    treq: Tag,
    /// Distinct servers that have responded in the get-data phase.
    responders: HashSet<ProcessId>,
    /// Full (tag, value) responses received.
    value_responses: BTreeMap<Tag, Value>,
    /// Coded responses received, grouped by tag and deduplicated by share
    /// index.
    coded_responses: BTreeMap<Tag, HashMap<usize, Share>>,
    /// The selected result, fixed when entering put-tag.
    result: Option<(Tag, Value)>,
    put_tag_acks: HashSet<ProcessId>,
    /// Scratch buffer reused across decode attempts while get-data responses
    /// trickle in (a failed attempt keeps its capacity for the next one).
    decode_scratch: Vec<u8>,
}

/// The reader client automaton.
///
/// Readers are *well-formed per object*: a new read for an object must not
/// start before the previous read of that object completed. Reads of distinct
/// objects may be pipelined freely.
pub struct ReaderClient {
    id: ClientId,
    params: SystemParams,
    membership: Membership,
    backend: Arc<dyn BackendCodec>,
    next_seq: u64,
    ops: HashMap<OpId, ReadOp>,
    busy_objects: HashSet<ObjectId>,
    completed: u64,
    /// Number of completed reads that were served purely from L1 value
    /// responses (no coded decode needed) — useful for cache-hit style
    /// statistics in the examples.
    served_from_l1: u64,
    /// Tag-validated hot-object cache consulted after the committed-tag
    /// quorum.
    cache: ReadCache,
    /// Number of reads whose data-transfer phase was skipped on a cache hit.
    cache_hits: u64,
    /// Number of reads that consulted an *enabled* cache and had to pay the
    /// data transfer anyway (absent object or stale tag). Disabled caches
    /// count nothing, so `hits / (hits + misses)` is a meaningful ratio.
    cache_misses: u64,
}

impl ReaderClient {
    /// Creates a reader with the given client id.
    pub fn new(
        id: ClientId,
        params: SystemParams,
        membership: Membership,
        backend: Arc<dyn BackendCodec>,
    ) -> Self {
        assert_eq!(
            membership.n1(),
            params.n1(),
            "membership/params n1 mismatch"
        );
        ReaderClient {
            id,
            params,
            membership,
            backend,
            next_seq: 0,
            ops: HashMap::new(),
            busy_objects: HashSet::new(),
            completed: 0,
            served_from_l1: 0,
            cache: ReadCache::default(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Sets the capacity of the tag-validated read cache (`0` disables it,
    /// dropping any cached entries beyond the new capacity).
    pub fn set_cache_entries(&mut self, entries: usize) {
        self.cache.resize(entries);
    }

    /// Number of reads that skipped the data-transfer phase because the
    /// quorum-committed tag matched a cached entry.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Number of reads that consulted an enabled cache and missed (absent
    /// object or stale tag), paying the full data transfer. Always zero
    /// while the cache is disabled.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Records a known committed `(tag, value)` pair for `obj` in the read
    /// cache. Besides read completions (recorded automatically), drivers
    /// call this for their *own* completed writes — the writer knows the
    /// exact committed pair, so its subsequent reads of a hot object can hit
    /// without ever paying a data transfer. No-op while the cache is
    /// disabled.
    pub fn cache_insert(&mut self, obj: ObjectId, tag: Tag, value: Value) {
        self.cache.insert(obj, tag, value);
    }

    /// The reader's client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Whether any read is currently in progress.
    pub fn is_busy(&self) -> bool {
        !self.ops.is_empty()
    }

    /// Number of reads currently in flight.
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }

    /// Whether a read of `obj` is currently in flight.
    pub fn is_object_busy(&self, obj: ObjectId) -> bool {
        self.busy_objects.contains(&obj)
    }

    /// Number of reads completed by this client.
    pub fn completed_ops(&self) -> u64 {
        self.completed
    }

    /// Number of completed reads that did not require decoding coded
    /// elements.
    pub fn reads_served_from_l1(&self) -> u64 {
        self.served_from_l1
    }

    /// Starts a read of `obj` and returns its operation id.
    ///
    /// This is the entry point used by pipelined drivers; injecting an
    /// [`LdsMessage::InvokeRead`] is equivalent.
    ///
    /// # Panics
    ///
    /// Panics if a read of the same object is already in flight (readers must
    /// be well-formed per object).
    pub fn start_read(
        &mut self,
        obj: ObjectId,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) -> OpId {
        assert!(
            self.busy_objects.insert(obj),
            "reader {} received a new invocation for {} while busy (clients must be well-formed per object)",
            self.id,
            obj
        );
        let op = OpId::new(self.id, self.next_seq);
        self.next_seq += 1;
        self.ops.insert(
            op,
            ReadOp {
                op,
                obj,
                invoked_at: ctx.now(),
                phase: ReadPhase::GetCommittedTag,
                comm_tags: HashMap::new(),
                treq: Tag::initial(),
                responders: HashSet::new(),
                value_responses: BTreeMap::new(),
                coded_responses: BTreeMap::new(),
                result: None,
                put_tag_acks: HashSet::new(),
                decode_scratch: Vec::new(),
            },
        );
        ctx.send_all(
            self.membership.l1.iter().copied(),
            LdsMessage::QueryCommTag { obj, op },
        );
        op
    }

    /// Abandons the in-flight read `op` (used by drivers on timeout).
    /// Returns `true` if the operation existed.
    pub fn cancel(&mut self, op: OpId) -> bool {
        match self.ops.remove(&op) {
            Some(r) => {
                self.busy_objects.remove(&r.obj);
                true
            }
            None => false,
        }
    }

    /// Abandons every in-flight read.
    pub fn cancel_all(&mut self) {
        self.ops.clear();
        self.busy_objects.clear();
    }

    fn on_comm_tag_resp(
        &mut self,
        from: ProcessId,
        op: OpId,
        tag: Tag,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let quorum = self.params.read_quorum();
        let Some(current) = self.ops.get_mut(&op) else {
            return;
        };
        if current.phase != ReadPhase::GetCommittedTag {
            return;
        }
        current.comm_tags.insert(from, tag);
        if current.comm_tags.len() < quorum {
            return;
        }
        current.treq = current
            .comm_tags
            .values()
            .max()
            .copied()
            .unwrap_or_else(Tag::initial);
        // Tag-validated cache: the quorum has fixed `t_req`, and a tag
        // uniquely identifies its value — if the cache holds exactly that
        // pair, the data-transfer phase would return the cached bytes, so
        // skip it and go straight to the put-tag write-back.
        if let Some(value) = self.cache.lookup(current.obj, current.treq) {
            self.cache_hits += 1;
            current.result = Some((current.treq, value));
            current.phase = ReadPhase::PutTag;
            let msg = LdsMessage::PutTag {
                obj: current.obj,
                op: current.op,
                tag: current.treq,
            };
            ctx.send_all(self.membership.l1.iter().copied(), msg);
            return;
        }
        if self.cache.entries > 0 {
            self.cache_misses += 1;
        }
        current.phase = ReadPhase::GetData;
        let msg = LdsMessage::QueryData {
            obj: current.obj,
            op: current.op,
            treq: current.treq,
        };
        ctx.send_all(self.membership.l1.iter().copied(), msg);
    }

    fn on_data_resp(
        &mut self,
        from: ProcessId,
        op: OpId,
        tag: Option<Tag>,
        payload: ReadPayload,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let quorum = self.params.read_quorum();
        let decode_threshold = self.backend.decode_threshold();
        let backend = Arc::clone(&self.backend);
        let Some(current) = self.ops.get_mut(&op) else {
            return;
        };
        if current.phase != ReadPhase::GetData {
            return;
        }
        current.responders.insert(from);
        match (tag, payload) {
            (Some(t), ReadPayload::Value(v)) => {
                current.value_responses.insert(t, v);
            }
            (Some(t), ReadPayload::Coded(share)) => {
                current
                    .coded_responses
                    .entry(t)
                    .or_default()
                    .insert(share.index, share);
            }
            _ => {} // (⊥, ⊥): counts towards the responder set only
        }

        if current.responders.len() < quorum {
            return;
        }
        // Candidate from full values.
        let mut best: Option<(Tag, Value, bool)> = current
            .value_responses
            .iter()
            .next_back()
            .map(|(t, v)| (*t, v.clone(), true));
        // Candidate from coded elements: highest tag with >= k distinct shares.
        for (t, shares) in current.coded_responses.iter().rev() {
            if best.as_ref().is_some_and(|(bt, _, _)| bt >= t) {
                break;
            }
            if shares.len() >= decode_threshold {
                let share_vec: Vec<Share> = shares.values().cloned().collect();
                // Stripe-aware decode: elements regenerated from a striped
                // write carry a per-stripe layout and are decoded stripe by
                // stripe; monolithic elements take the direct path.
                if stripe::decode_from_l1_into(&*backend, &share_vec, &mut current.decode_scratch)
                    .is_ok()
                {
                    let bytes = std::mem::take(&mut current.decode_scratch);
                    best = Some((*t, Value::new(bytes), false));
                    break;
                }
            }
        }
        let Some((tag, value, from_l1_value)) = best else {
            return; // condition not yet satisfied; keep waiting for responses
        };
        if tag < current.treq {
            // Should be impossible (servers filter on treq); wait for more.
            return;
        }
        current.result = Some((tag, value));
        current.phase = ReadPhase::PutTag;
        let (obj, op) = (current.obj, current.op);
        if from_l1_value {
            self.served_from_l1 += 1;
        }
        ctx.send_all(
            self.membership.l1.iter().copied(),
            LdsMessage::PutTag { obj, op, tag },
        );
    }

    fn on_ack_put_tag(
        &mut self,
        from: ProcessId,
        op: OpId,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        let quorum = self.params.read_quorum();
        let Some(current) = self.ops.get_mut(&op) else {
            return;
        };
        if current.phase != ReadPhase::PutTag {
            return;
        }
        current.put_tag_acks.insert(from);
        if current.put_tag_acks.len() < quorum {
            return;
        }
        let finished = self.ops.remove(&op).expect("checked above");
        self.busy_objects.remove(&finished.obj);
        let (tag, value) = finished.result.expect("result fixed before put-tag");
        self.cache.insert(finished.obj, tag, value.clone());
        self.completed += 1;
        ctx.emit(ProtocolEvent::ReadCompleted {
            op: finished.op,
            obj: finished.obj,
            tag,
            value,
            invoked_at: finished.invoked_at,
        });
    }
}

impl Process<LdsMessage, ProtocolEvent> for ReaderClient {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: LdsMessage,
        ctx: &mut Context<'_, LdsMessage, ProtocolEvent>,
    ) {
        match msg {
            LdsMessage::InvokeRead { obj } => {
                self.start_read(obj, ctx);
            }
            LdsMessage::CommTagResp { op, tag, .. } => self.on_comm_tag_resp(from, op, tag, ctx),
            LdsMessage::DataResp {
                op, tag, payload, ..
            } => self.on_data_resp(from, op, tag, payload, ctx),
            LdsMessage::AckPutTag { op, .. } => self.on_ack_put_tag(from, op, ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{make_backend, BackendKind};

    fn setup() -> (SystemParams, Membership, Arc<dyn BackendCodec>) {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap(); // n1=4, n2=5, k=2, d=3
        let l1: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (4..9).map(ProcessId).collect();
        let membership = Membership::new(l1, l2);
        let backend = make_backend(BackendKind::Mbr, &params).unwrap();
        (params, membership, backend)
    }

    fn step(
        r: &mut ReaderClient,
        from: ProcessId,
        msg: LdsMessage,
    ) -> (Vec<(ProcessId, LdsMessage)>, Vec<ProtocolEvent>) {
        let mut outgoing = Vec::new();
        let mut events = Vec::new();
        let mut ctx = Context::standalone(ProcessId(50), SimTime::ZERO, &mut outgoing, &mut events);
        r.on_message(from, msg, &mut ctx);
        (outgoing, events.into_iter().map(|(_, _, e)| e).collect())
    }

    fn start_and_reach_get_data(r: &mut ReaderClient, treq: Tag) -> OpId {
        let (out, _) = step(
            r,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeRead { obj: ObjectId(0) },
        );
        assert_eq!(out.len(), 4);
        let op = match &out[0].1 {
            LdsMessage::QueryCommTag { op, .. } => *op,
            _ => unreachable!(),
        };
        let mut query_data_sent = false;
        for i in 0..3 {
            let (out, _) = step(
                r,
                ProcessId(i),
                LdsMessage::CommTagResp {
                    obj: ObjectId(0),
                    op,
                    tag: treq,
                },
            );
            if !out.is_empty() {
                assert!(out
                    .iter()
                    .all(|(_, m)| matches!(m, LdsMessage::QueryData { .. })));
                query_data_sent = true;
            }
        }
        assert!(query_data_sent);
        op
    }

    #[test]
    fn read_served_by_value_responses() {
        let (params, membership, backend) = setup();
        let mut r = ReaderClient::new(ClientId(5), params, membership, backend);
        let treq = Tag::new(2, ClientId(1));
        let op = start_and_reach_get_data(&mut r, treq);

        // Two servers answer with (tag, value) pairs for different tags, one
        // answers (⊥, ⊥); after 3 distinct responders with at least one value
        // the reader picks the highest tag and writes it back.
        step(
            &mut r,
            ProcessId(0),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: Some(Tag::new(2, ClientId(1))),
                payload: ReadPayload::Value(Value::from("older")),
            },
        );
        step(
            &mut r,
            ProcessId(1),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: None,
                payload: ReadPayload::None,
            },
        );
        let (out, _) = step(
            &mut r,
            ProcessId(2),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: Some(Tag::new(3, ClientId(2))),
                payload: ReadPayload::Value(Value::from("newest")),
            },
        );
        assert_eq!(out.len(), 4);
        match &out[0].1 {
            LdsMessage::PutTag { tag, .. } => assert_eq!(*tag, Tag::new(3, ClientId(2))),
            other => panic!("expected PUT-TAG, got {other:?}"),
        }

        // Three ACK-PUT-TAG responses complete the read.
        let mut events = Vec::new();
        for i in 0..3 {
            let (_, evs) = step(
                &mut r,
                ProcessId(i),
                LdsMessage::AckPutTag {
                    obj: ObjectId(0),
                    op,
                },
            );
            events = evs;
        }
        assert_eq!(events.len(), 1);
        match &events[0] {
            ProtocolEvent::ReadCompleted { tag, value, .. } => {
                assert_eq!(*tag, Tag::new(3, ClientId(2)));
                assert_eq!(value.as_bytes(), b"newest");
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(r.completed_ops(), 1);
        assert_eq!(r.reads_served_from_l1(), 1);
        assert!(!r.is_busy());
    }

    #[test]
    fn read_decodes_from_coded_elements() {
        let (params, membership, backend) = setup();
        let mut r = ReaderClient::new(ClientId(6), params, membership, Arc::clone(&backend));
        let tag = Tag::new(4, ClientId(2));
        let op = start_and_reach_get_data(&mut r, tag);

        // Regenerate the value's C1 elements for servers 0 and 1 (k = 2).
        let value = Value::from("decoded from the back-end layer");
        let mut c1_shares = Vec::new();
        for l1 in 0..2 {
            let helpers: Vec<_> = (0..3)
                .map(|i| {
                    let elem = backend.encode_l2_element(&value, i).unwrap();
                    backend.helper_for_l1(&elem, i, l1).unwrap()
                })
                .collect();
            c1_shares.push(backend.regenerate_l1(l1, &helpers).unwrap());
        }

        step(
            &mut r,
            ProcessId(2),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: None,
                payload: ReadPayload::None,
            },
        );
        step(
            &mut r,
            ProcessId(0),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: Some(tag),
                payload: ReadPayload::Coded(c1_shares[0].clone()),
            },
        );
        let (out, _) = step(
            &mut r,
            ProcessId(1),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: Some(tag),
                payload: ReadPayload::Coded(c1_shares[1].clone()),
            },
        );
        assert!(
            out.iter()
                .all(|(_, m)| matches!(m, LdsMessage::PutTag { .. }))
                && out.len() == 4,
            "decoding k coded elements moves the reader to put-tag"
        );

        let mut events = Vec::new();
        for i in 0..3 {
            let (_, evs) = step(
                &mut r,
                ProcessId(i),
                LdsMessage::AckPutTag {
                    obj: ObjectId(0),
                    op,
                },
            );
            events = evs;
        }
        match &events[0] {
            ProtocolEvent::ReadCompleted {
                value: v, tag: t, ..
            } => {
                assert_eq!(v.as_bytes(), value.as_bytes());
                assert_eq!(*t, tag);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(r.reads_served_from_l1(), 0);
    }

    #[test]
    fn insufficient_responses_keep_waiting() {
        let (params, membership, backend) = setup();
        let mut r = ReaderClient::new(ClientId(7), params, membership, backend);
        let op = start_and_reach_get_data(&mut r, Tag::initial());

        // Three (⊥,⊥) responses: responder quorum reached but no usable data,
        // so the read must not progress.
        for i in 0..3 {
            let (out, _) = step(
                &mut r,
                ProcessId(i),
                LdsMessage::DataResp {
                    obj: ObjectId(0),
                    op,
                    tag: None,
                    payload: ReadPayload::None,
                },
            );
            assert!(out.is_empty());
        }
        assert!(r.is_busy());

        // A late value response finally unblocks it.
        let (out, _) = step(
            &mut r,
            ProcessId(0),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: Some(Tag::new(1, ClientId(1))),
                payload: ReadPayload::Value(Value::from("late")),
            },
        );
        assert!(out
            .iter()
            .any(|(_, m)| matches!(m, LdsMessage::PutTag { .. })));
    }

    #[test]
    fn coded_elements_for_distinct_tags_do_not_combine() {
        let (params, membership, backend) = setup();
        let mut r = ReaderClient::new(ClientId(8), params, membership, Arc::clone(&backend));
        let op = start_and_reach_get_data(&mut r, Tag::initial());

        let value = Value::from("v");
        let helpers: Vec<_> = (0..3)
            .map(|i| {
                let elem = backend.encode_l2_element(&value, i).unwrap();
                backend.helper_for_l1(&elem, i, 0).unwrap()
            })
            .collect();
        let share0 = backend.regenerate_l1(0, &helpers).unwrap();

        // Two coded responses with *different* tags: even with responder
        // quorum, k distinct shares for a common tag are missing.
        step(
            &mut r,
            ProcessId(0),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: Some(Tag::new(1, ClientId(1))),
                payload: ReadPayload::Coded(share0.clone()),
            },
        );
        step(
            &mut r,
            ProcessId(1),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: Some(Tag::new(2, ClientId(1))),
                payload: ReadPayload::Coded(share0.clone()),
            },
        );
        let (out, _) = step(
            &mut r,
            ProcessId(2),
            LdsMessage::DataResp {
                obj: ObjectId(0),
                op,
                tag: None,
                payload: ReadPayload::None,
            },
        );
        assert!(out.is_empty());
        assert!(r.is_busy());
    }

    #[test]
    fn cached_tag_skips_the_data_transfer_phase() {
        let (params, membership, backend) = setup();
        let mut r = ReaderClient::new(ClientId(11), params, membership, backend);
        r.set_cache_entries(4);
        let tag = Tag::new(3, ClientId(2));
        let value = Value::from("hot object");
        r.cache_insert(ObjectId(0), tag, value.clone());

        // Invoke: the committed-tag quorum still runs in full.
        let (out, _) = step(
            &mut r,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeRead { obj: ObjectId(0) },
        );
        let op = match &out[0].1 {
            LdsMessage::QueryCommTag { op, .. } => *op,
            _ => unreachable!(),
        };
        let mut put_tags = Vec::new();
        for i in 0..3 {
            let (out, _) = step(
                &mut r,
                ProcessId(i),
                LdsMessage::CommTagResp {
                    obj: ObjectId(0),
                    op,
                    tag,
                },
            );
            put_tags.extend(out);
        }
        // Cache hit: no QUERY-DATA — straight to the put-tag write-back.
        assert_eq!(put_tags.len(), 4);
        assert!(put_tags
            .iter()
            .all(|(_, m)| matches!(m, LdsMessage::PutTag { tag: t, .. } if *t == tag)));
        assert_eq!(r.cache_hits(), 1);

        let mut events = Vec::new();
        for i in 0..3 {
            let (_, evs) = step(
                &mut r,
                ProcessId(i),
                LdsMessage::AckPutTag {
                    obj: ObjectId(0),
                    op,
                },
            );
            events.extend(evs);
        }
        match &events[0] {
            ProtocolEvent::ReadCompleted {
                value: v, tag: t, ..
            } => {
                assert_eq!(v.as_bytes(), value.as_bytes());
                assert_eq!(*t, tag);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn stale_cache_entry_misses_and_is_refreshed_by_completion() {
        let (params, membership, backend) = setup();
        let mut r = ReaderClient::new(ClientId(12), params, membership, backend);
        r.set_cache_entries(4);
        // Cached pair is for an older tag than the quorum will report.
        r.cache_insert(ObjectId(0), Tag::new(1, ClientId(1)), Value::from("old"));
        let treq = Tag::new(2, ClientId(1));
        let op = start_and_reach_get_data(&mut r, treq);
        assert_eq!(r.cache_hits(), 0, "tag mismatch must not hit");

        // Serve the read normally; completion refreshes the cache.
        for i in 0..3 {
            step(
                &mut r,
                ProcessId(i),
                LdsMessage::DataResp {
                    obj: ObjectId(0),
                    op,
                    tag: Some(treq),
                    payload: ReadPayload::Value(Value::from("fresh")),
                },
            );
        }
        for i in 0..3 {
            step(
                &mut r,
                ProcessId(i),
                LdsMessage::AckPutTag {
                    obj: ObjectId(0),
                    op,
                },
            );
        }
        assert_eq!(r.completed_ops(), 1);

        // A second read of the same committed tag now hits.
        let (out, _) = step(
            &mut r,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeRead { obj: ObjectId(0) },
        );
        let op2 = match &out[0].1 {
            LdsMessage::QueryCommTag { op, .. } => *op,
            _ => unreachable!(),
        };
        let mut out2 = Vec::new();
        for i in 0..3 {
            let (out, _) = step(
                &mut r,
                ProcessId(i),
                LdsMessage::CommTagResp {
                    obj: ObjectId(0),
                    op: op2,
                    tag: treq,
                },
            );
            out2.extend(out);
        }
        assert!(out2
            .iter()
            .all(|(_, m)| matches!(m, LdsMessage::PutTag { .. })));
        assert_eq!(r.cache_hits(), 1);
    }

    #[test]
    fn cache_capacity_evicts_least_recently_used() {
        let (params, membership, backend) = setup();
        let mut r = ReaderClient::new(ClientId(13), params, membership, backend);
        r.set_cache_entries(2);
        let t = Tag::new(1, ClientId(1));
        r.cache_insert(ObjectId(0), t, Value::from("a"));
        r.cache_insert(ObjectId(1), t, Value::from("b"));
        // Touch object 0 so object 1 becomes the LRU entry, then overflow.
        assert!(r.cache.lookup(ObjectId(0), t).is_some());
        r.cache_insert(ObjectId(2), t, Value::from("c"));
        assert!(r.cache.lookup(ObjectId(1), t).is_none(), "LRU evicted");
        assert!(r.cache.lookup(ObjectId(0), t).is_some());
        assert!(r.cache.lookup(ObjectId(2), t).is_some());
        // Disabling drops everything.
        r.set_cache_entries(0);
        assert!(r.cache.lookup(ObjectId(0), t).is_none());
        r.cache_insert(ObjectId(0), t, Value::from("a"));
        assert!(
            r.cache.lookup(ObjectId(0), t).is_none(),
            "disabled cache stays empty"
        );
    }

    #[test]
    #[should_panic(expected = "well-formed")]
    fn overlapping_reads_panic() {
        let (params, membership, backend) = setup();
        let mut r = ReaderClient::new(ClientId(9), params, membership, backend);
        step(
            &mut r,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeRead { obj: ObjectId(0) },
        );
        step(
            &mut r,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeRead { obj: ObjectId(0) },
        );
    }

    #[test]
    fn reads_of_distinct_objects_pipeline() {
        let (params, membership, backend) = setup();
        let mut r = ReaderClient::new(ClientId(10), params, membership, backend);
        let (out_a, _) = step(
            &mut r,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeRead { obj: ObjectId(0) },
        );
        let (out_b, _) = step(
            &mut r,
            ProcessId::EXTERNAL,
            LdsMessage::InvokeRead { obj: ObjectId(1) },
        );
        assert_eq!(r.in_flight(), 2);
        let op_a = match &out_a[0].1 {
            LdsMessage::QueryCommTag { op, .. } => *op,
            _ => unreachable!(),
        };
        let op_b = match &out_b[0].1 {
            LdsMessage::QueryCommTag { op, .. } => *op,
            _ => unreachable!(),
        };
        assert_ne!(op_a, op_b);
        // Cancelling one leaves the other alive and frees its object.
        assert!(r.cancel(op_b));
        assert!(!r.is_object_busy(ObjectId(1)));
        assert!(r.is_object_busy(ObjectId(0)));
        assert_eq!(r.in_flight(), 1);
    }
}
