//! Seeded chaos schedules for crash-injection harnesses.
//!
//! A [`ChaosSchedule`] is a deterministic, seeded stream of *kill events*
//! against a two-layer deployment: each event names a layer and a server
//! index, spaced by a jittered gap. The schedule is **budget-aware** — given
//! the set of servers currently down it never proposes a kill that would
//! exceed a layer's crash-fault budget (`f1` L1 / `f2` L2 per cluster), so a
//! harness driving it against a live cluster keeps every kill inside the
//! envelope the protocol tolerates, no matter how slowly repairs catch up.
//!
//! The schedule is pure bookkeeping over a [`rand::rngs::SmallRng`]: it knows
//! nothing about the cluster crates, so the same schedule can drive the
//! in-process cluster runtime, the simulator, or a future networked
//! deployment. The caller owns the down-set and reports it back on each
//! draw.
//!
//! ```rust
//! use lds_workload::chaos::{ChaosLayer, ChaosScheduleConfig, ChaosSchedule};
//!
//! let mut schedule = ChaosSchedule::new(ChaosScheduleConfig {
//!     seed: 7,
//!     clusters: 2,
//!     n1: 4,
//!     f1: 1,
//!     n2: 5,
//!     f2: 1,
//!     total_kills: 10,
//!     min_gap_ms: 5,
//!     max_gap_ms: 20,
//! });
//! let mut killed = 0;
//! while let Some(kill) = schedule.next_kill(&[]) {
//!     assert!(kill.index < if kill.layer == ChaosLayer::L1 { 4 } else { 5 });
//!     killed += 1;
//! }
//! assert_eq!(killed, 10);
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The layer a chaos kill targets. Mirrors the cluster runtime's repair
/// layer enum without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosLayer {
    /// The edge/metadata layer (`n1` servers, budget `f1` per cluster).
    L1,
    /// The coded back-end layer (`n2` servers, budget `f2` per cluster).
    L2,
}

/// One kill event drawn from a [`ChaosSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChaosTarget {
    /// The cluster shard the victim lives in (`0..clusters`).
    pub cluster: usize,
    /// The victim's layer.
    pub layer: ChaosLayer,
    /// The victim's index within its layer.
    pub index: usize,
    /// Jittered gap to wait before injecting this kill, in milliseconds
    /// (drawn uniformly from `[min_gap_ms, max_gap_ms]`).
    pub gap_ms: u64,
}

/// Shape of a [`ChaosSchedule`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosScheduleConfig {
    /// Seed of the deterministic RNG — the same seed replays the same
    /// schedule against the same down-set history.
    pub seed: u64,
    /// Cluster shards in the deployment.
    pub clusters: usize,
    /// L1 servers per cluster.
    pub n1: usize,
    /// L1 crash budget per cluster: at most this many L1 servers of one
    /// cluster are ever down at once.
    pub f1: usize,
    /// L2 servers per cluster.
    pub n2: usize,
    /// L2 crash budget per cluster.
    pub f2: usize,
    /// Kills the schedule emits in total before running dry.
    pub total_kills: usize,
    /// Minimum jittered gap between kills, milliseconds.
    pub min_gap_ms: u64,
    /// Maximum jittered gap between kills, milliseconds (inclusive; must be
    /// at least `min_gap_ms`).
    pub max_gap_ms: u64,
}

/// A deterministic, budget-aware stream of kill events (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct ChaosSchedule {
    config: ChaosScheduleConfig,
    rng: SmallRng,
    emitted: usize,
}

impl ChaosSchedule {
    /// Builds the schedule for `config`.
    ///
    /// # Panics
    ///
    /// Panics if a layer size, the cluster count or `total_kills` is zero,
    /// if a budget is zero or not below its layer size, or if
    /// `max_gap_ms < min_gap_ms` — a schedule that can never emit a legal
    /// kill is a harness bug, not a runtime condition.
    pub fn new(config: ChaosScheduleConfig) -> ChaosSchedule {
        assert!(config.clusters > 0, "chaos schedule needs a cluster");
        assert!(config.total_kills > 0, "chaos schedule needs kills to emit");
        assert!(
            config.f1 > 0 && config.f1 < config.n1,
            "L1 budget must be in 1..n1"
        );
        assert!(
            config.f2 > 0 && config.f2 < config.n2,
            "L2 budget must be in 1..n2"
        );
        assert!(
            config.max_gap_ms >= config.min_gap_ms,
            "max_gap_ms must be at least min_gap_ms"
        );
        ChaosSchedule {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
            emitted: 0,
        }
    }

    /// Kills emitted so far.
    pub fn kills_emitted(&self) -> usize {
        self.emitted
    }

    /// Whether the schedule has emitted every kill it was configured for.
    pub fn is_done(&self) -> bool {
        self.emitted >= self.config.total_kills
    }

    /// Draws the next kill, given the servers currently down.
    ///
    /// Only targets whose kill keeps every per-cluster layer budget intact
    /// are candidates (a server already down is never re-killed). Returns
    /// `None` — **without consuming an event** — when the schedule is done
    /// or every layer of every cluster is at its budget; the harness should
    /// let repairs catch up and call again.
    pub fn next_kill(&mut self, down: &[ChaosTarget]) -> Option<ChaosTarget> {
        if self.is_done() {
            return None;
        }
        let c = &self.config;
        let down_count = |cluster: usize, layer: ChaosLayer| {
            down.iter()
                .filter(|t| t.cluster == cluster && t.layer == layer)
                .count()
        };
        let is_down = |cluster: usize, layer: ChaosLayer, index: usize| {
            down.iter()
                .any(|t| t.cluster == cluster && t.layer == layer && t.index == index)
        };
        let mut candidates: Vec<(usize, ChaosLayer, usize)> = Vec::new();
        for cluster in 0..c.clusters {
            if down_count(cluster, ChaosLayer::L1) < c.f1 {
                for index in 0..c.n1 {
                    if !is_down(cluster, ChaosLayer::L1, index) {
                        candidates.push((cluster, ChaosLayer::L1, index));
                    }
                }
            }
            if down_count(cluster, ChaosLayer::L2) < c.f2 {
                for index in 0..c.n2 {
                    if !is_down(cluster, ChaosLayer::L2, index) {
                        candidates.push((cluster, ChaosLayer::L2, index));
                    }
                }
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let (cluster, layer, index) = candidates[self.rng.gen_range(0..candidates.len())];
        let gap_ms = self.rng.gen_range(c.min_gap_ms..=c.max_gap_ms);
        self.emitted += 1;
        Some(ChaosTarget {
            cluster,
            layer,
            index,
            gap_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> ChaosScheduleConfig {
        ChaosScheduleConfig {
            seed,
            clusters: 2,
            n1: 4,
            f1: 1,
            n2: 5,
            f2: 1,
            total_kills: 25,
            min_gap_ms: 1,
            max_gap_ms: 9,
        }
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let mut a = ChaosSchedule::new(config(42));
        let mut b = ChaosSchedule::new(config(42));
        for _ in 0..25 {
            assert_eq!(a.next_kill(&[]), b.next_kill(&[]));
        }
        assert!(a.is_done() && b.is_done());
        assert_eq!(a.next_kill(&[]), None);
    }

    #[test]
    fn respects_per_layer_budgets_against_a_down_set() {
        let mut schedule = ChaosSchedule::new(config(7));
        let mut down: Vec<ChaosTarget> = Vec::new();
        // Kill without ever repairing: the schedule must stop at the budget
        // (f1 + f2 per cluster = 4 total here), never exceed it, and not
        // consume events while saturated.
        while let Some(kill) = schedule.next_kill(&down) {
            assert!(
                !down.iter().any(
                    |t| (t.cluster, t.layer, t.index) == (kill.cluster, kill.layer, kill.index)
                ),
                "re-killed a down server"
            );
            down.push(kill);
            for cluster in 0..2 {
                for (layer, budget) in [(ChaosLayer::L1, 1), (ChaosLayer::L2, 1)] {
                    let count = down
                        .iter()
                        .filter(|t| t.cluster == cluster && t.layer == layer)
                        .count();
                    assert!(count <= budget, "budget exceeded on {cluster}/{layer:?}");
                }
            }
        }
        assert_eq!(down.len(), 4);
        assert_eq!(schedule.kills_emitted(), 4);
        assert!(!schedule.is_done());
        // Repair everything: the schedule resumes exactly where it left off.
        down.clear();
        assert!(schedule.next_kill(&down).is_some());
        assert_eq!(schedule.kills_emitted(), 5);
    }

    #[test]
    fn gaps_stay_inside_the_configured_window() {
        let mut schedule = ChaosSchedule::new(config(3));
        while let Some(kill) = schedule.next_kill(&[]) {
            assert!((1..=9).contains(&kill.gap_ms));
        }
    }

    #[test]
    fn eventually_touches_both_layers_of_every_cluster() {
        let mut schedule = ChaosSchedule::new(config(11));
        let mut seen = std::collections::HashSet::new();
        while let Some(kill) = schedule.next_kill(&[]) {
            seen.insert((kill.cluster, kill.layer));
        }
        assert_eq!(
            seen.len(),
            4,
            "25 seeded kills should cover 2 clusters × 2 layers"
        );
    }
}
