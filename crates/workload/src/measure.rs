//! Single-number cost measurements used to reproduce Lemmas V.2–V.4.
//!
//! Communication costs are measured by attributing message kinds to
//! operations — exactly the decomposition the paper uses:
//!
//! * **write cost** = value transfers to L1 (`PUT-DATA`) plus the internal
//!   `write-to-L2` transfers (`WRITE-CODE-ELEM`), normalised by value size;
//! * **read cost** = responses to the reader (`DATA-RESP`) plus the
//!   regeneration traffic (`SEND-HELPER-ELEM`), normalised by value size.
//!
//! Latencies are measured as invocation-to-response durations under the
//! deterministic bounded-latency model.

use crate::runner::{RunnerConfig, SimRunner};
use lds_core::backend::BackendKind;
use lds_core::costs::LatencyBounds;
use lds_core::params::SystemParams;

/// A measured-vs-predicted comparison for one cost metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostMeasurement {
    /// Value measured from the simulated execution.
    pub measured: f64,
    /// Closed-form prediction from the paper (§V).
    pub predicted: f64,
}

impl CostMeasurement {
    /// Measured / predicted ratio.
    pub fn ratio(&self) -> f64 {
        self.measured / self.predicted
    }
}

/// Full cost report for one parameter point.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// System parameters used.
    pub params: SystemParams,
    /// Back-end code used.
    pub backend: BackendKind,
    /// Write communication cost (value-size units).
    pub write_cost: CostMeasurement,
    /// Read communication cost with no concurrency (δ = 0).
    pub read_cost_idle: CostMeasurement,
    /// Read communication cost under concurrency (δ > 0).
    pub read_cost_concurrent: CostMeasurement,
    /// Per-object permanent storage cost in L2 (value-size units).
    pub l2_storage: CostMeasurement,
    /// Write latency (time units) against the Lemma V.4 bound.
    pub write_latency: CostMeasurement,
    /// Read latency (time units) against the Lemma V.4 bound.
    pub read_latency: CostMeasurement,
}

/// Size of values used by the measurement runs. Large enough that framing
/// overhead (8-byte header + padding) is negligible relative to the value.
pub const MEASURE_VALUE_SIZE: usize = 1 << 15;

/// Measures every cost of [`CostReport`] for one configuration.
///
/// The runs use the deterministic bounded-latency model with
/// `τ0 = τ1 = 1, τ2 = mu`.
pub fn measure_costs(params: SystemParams, backend: BackendKind, mu: f64) -> CostReport {
    let value_size = MEASURE_VALUE_SIZE;
    let bounds = LatencyBounds::new(1.0, 1.0, mu);

    // --- Write cost and latency: a single write on an idle system. ---
    let (write_cost, write_latency) = {
        let mut runner = SimRunner::new(
            RunnerConfig::new(params)
                .backend(backend)
                .latencies(1.0, 1.0, mu),
        );
        let w = runner.add_writer();
        runner.invoke_write(w, 0.0, vec![0xA5; value_size]);
        let report = runner.run();
        let bytes = report.metrics.data_bytes_for_kind("PUT-DATA")
            + report.metrics.data_bytes_for_kind("WRITE-CODE-ELEM");
        let op = &report.history.operations()[0];
        let latency = op.completed_at - op.invoked_at;
        (bytes as f64 / value_size as f64, latency)
    };

    // --- Read cost / latency with δ = 0: write, quiesce, then read. ---
    let (read_cost_idle, read_latency) = {
        let mut runner = SimRunner::new(
            RunnerConfig::new(params)
                .backend(backend)
                .latencies(1.0, 1.0, mu),
        );
        let w = runner.add_writer();
        let r = runner.add_reader();
        runner.invoke_write(w, 0.0, vec![0x3C; value_size]);
        // Leave plenty of time for the extended write to finish.
        let read_start = 100.0 * (1.0 + mu);
        runner.invoke_read(r, read_start);
        let report = runner.run();
        let bytes = report.metrics.data_bytes_for_kind("DATA-RESP")
            + report.metrics.data_bytes_for_kind("SEND-HELPER-ELEM");
        let read = report
            .history
            .operations()
            .iter()
            .find(|o| !o.is_write())
            .expect("read completed");
        (
            bytes as f64 / value_size as f64,
            read.completed_at - read.invoked_at,
        )
    };

    // --- Read cost with δ > 0: the read overlaps an in-flight write. ---
    let read_cost_concurrent = {
        let mut runner = SimRunner::new(
            RunnerConfig::new(params)
                .backend(backend)
                .latencies(1.0, 1.0, mu),
        );
        let w = runner.add_writer();
        let r = runner.add_reader();
        runner.invoke_write(w, 0.0, vec![0x77; value_size]);
        // Start the read right after the write's put-data messages land, so
        // temporary storage still holds the value.
        runner.invoke_read(r, 3.0);
        let report = runner.run();
        let bytes = report.metrics.data_bytes_for_kind("DATA-RESP")
            + report.metrics.data_bytes_for_kind("SEND-HELPER-ELEM");
        bytes as f64 / value_size as f64
    };

    // --- L2 storage per object. ---
    let l2_storage = {
        let mut runner = SimRunner::new(
            RunnerConfig::new(params)
                .backend(backend)
                .latencies(1.0, 1.0, mu),
        );
        let w = runner.add_writer();
        runner.invoke_write(w, 0.0, vec![0x11; value_size]);
        let report = runner.run();
        report.l2_storage_bytes as f64 / value_size as f64
    };

    let predicted_l2 = match backend {
        BackendKind::Mbr => lds_core::costs::l2_storage_cost(&params),
        BackendKind::Replication => lds_core::costs::l2_storage_cost_replication(&params),
        BackendKind::MsrPoint | BackendKind::ProductMatrixMsr => {
            lds_core::costs::l2_storage_cost_msr(&params)
        }
    };

    CostReport {
        params,
        backend,
        write_cost: CostMeasurement {
            measured: write_cost,
            predicted: lds_core::costs::write_cost(&params),
        },
        read_cost_idle: CostMeasurement {
            measured: read_cost_idle,
            predicted: lds_core::costs::read_cost(&params, 0),
        },
        read_cost_concurrent: CostMeasurement {
            measured: read_cost_concurrent,
            predicted: lds_core::costs::read_cost(&params, 1),
        },
        l2_storage: CostMeasurement {
            measured: l2_storage,
            predicted: predicted_l2,
        },
        write_latency: CostMeasurement {
            measured: write_latency,
            predicted: bounds.write_latency_bound(),
        },
        read_latency: CostMeasurement {
            measured: read_latency,
            predicted: bounds.read_latency_bound(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_costs_track_the_paper_formulas() {
        let params = SystemParams::for_failures(2, 2, 4, 6).unwrap(); // n1=8, n2=10
        let report = measure_costs(params, BackendKind::Mbr, 10.0);

        // Write cost: measured should be close to the prediction (framing
        // overhead only). Allow 15% slack.
        assert!(
            (report.write_cost.ratio() - 1.0).abs() < 0.15,
            "write cost ratio {:?}",
            report.write_cost
        );
        // Idle read cost: matches the Lemma V.2 formula and is far below the
        // write cost (which is Θ(n1)).
        assert!(
            (report.read_cost_idle.ratio() - 1.0).abs() < 0.3,
            "idle read cost ratio {:?}",
            report.read_cost_idle
        );
        assert!(
            report.read_cost_idle.measured < 0.5 * report.write_cost.measured,
            "idle read cost {:?} should be far below the write cost {:?}",
            report.read_cost_idle,
            report.write_cost
        );
        // Concurrent read cost jumps by roughly n1 (value served from L1).
        assert!(
            report.read_cost_concurrent.measured > report.read_cost_idle.measured,
            "concurrency must increase the read cost"
        );
        // Storage cost matches Lemma V.3.
        assert!(
            (report.l2_storage.ratio() - 1.0).abs() < 0.15,
            "storage ratio {:?}",
            report.l2_storage
        );
        // Latencies respect the Lemma V.4 bounds.
        assert!(report.write_latency.measured <= report.write_latency.predicted + 1e-9);
        assert!(report.read_latency.measured <= report.read_latency.predicted + 1e-9);
    }

    #[test]
    fn replication_backend_inflates_l2_storage() {
        // n1 = n2 = 10, k = d = 6: MBR stores ≈ 2.86 per object, replication
        // stores n2 = 10.
        let params = SystemParams::symmetric(10, 2).unwrap();
        let mbr = measure_costs(params, BackendKind::Mbr, 5.0);
        let rep = measure_costs(params, BackendKind::Replication, 5.0);
        assert!(
            rep.l2_storage.measured > 2.0 * mbr.l2_storage.measured,
            "replication L2 storage {} should far exceed MBR {}",
            rep.l2_storage.measured,
            mbr.l2_storage.measured
        );
    }
}
