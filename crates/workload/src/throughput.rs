//! Latency and throughput accounting for closed-loop cluster drivers.
//!
//! The cluster throughput benchmark (`exp_throughput`) and the stress tests
//! drive real wall-clock operations; this module collects their per-operation
//! latencies and reduces them to the numbers recorded in
//! `BENCH_CLUSTER.json`: ops/sec plus latency percentiles.

use std::time::Duration;

/// Collects per-operation latency samples.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one operation's latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples_ns.push(latency.as_nanos() as u64);
    }

    /// Absorbs every sample of `other`.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// The `p`-th percentile (0.0 ..= 100.0, nearest-rank) of the recorded
    /// latencies, or zero if nothing was recorded.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.samples_ns.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        Duration::from_nanos(sorted[rank.min(sorted.len() - 1)])
    }

    /// Mean latency, or zero if nothing was recorded.
    pub fn mean(&self) -> Duration {
        if self.samples_ns.is_empty() {
            return Duration::ZERO;
        }
        let total: u128 = self.samples_ns.iter().map(|&n| n as u128).sum();
        Duration::from_nanos((total / self.samples_ns.len() as u128) as u64)
    }

    /// Reduces the samples to a summary for a run that took `elapsed`
    /// (sorts the samples once for both percentiles).
    pub fn summarize(&self, elapsed: Duration) -> ThroughputSummary {
        let ops = self.samples_ns.len() as u64;
        let elapsed_s = elapsed.as_secs_f64();
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let pick = |p: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
            sorted[rank.min(sorted.len() - 1)] as f64 / 1e3
        };
        ThroughputSummary {
            ops,
            elapsed_s,
            ops_per_sec: if elapsed_s > 0.0 {
                ops as f64 / elapsed_s
            } else {
                0.0
            },
            p50_us: pick(50.0),
            p99_us: pick(99.0),
            mean_us: self.mean().as_secs_f64() * 1e6,
        }
    }
}

/// Ops/sec and latency percentiles of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSummary {
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_s: f64,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// Median operation latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile operation latency in microseconds.
    pub p99_us: f64,
    /// Mean operation latency in microseconds.
    pub mean_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_is_all_zero() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.percentile(50.0), Duration::ZERO);
        assert_eq!(rec.mean(), Duration::ZERO);
        let s = rec.summarize(Duration::from_secs(1));
        assert_eq!(s.ops, 0);
        assert_eq!(s.ops_per_sec, 0.0);
    }

    #[test]
    fn percentiles_and_mean() {
        let mut rec = LatencyRecorder::new();
        for ms in 1..=100u64 {
            rec.record(Duration::from_millis(ms));
        }
        assert_eq!(rec.len(), 100);
        let p50 = rec.percentile(50.0).as_millis();
        assert!((50..=51).contains(&p50), "p50 = {p50}");
        let p99 = rec.percentile(99.0).as_millis();
        assert!((99..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(rec.percentile(0.0), Duration::from_millis(1));
        assert_eq!(rec.percentile(100.0), Duration::from_millis(100));
        assert_eq!(rec.mean(), Duration::from_micros(50_500));
    }

    #[test]
    fn merge_and_summarize() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(Duration::from_millis(10));
        b.record(Duration::from_millis(30));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        let s = a.summarize(Duration::from_secs(2));
        assert_eq!(s.ops, 2);
        assert!((s.ops_per_sec - 1.0).abs() < 1e-9);
        assert!((s.mean_us - 20_000.0).abs() < 1.0);
    }
}
