//! Shared seed plumbing for the seeded chaos / adversarial test suites.
//!
//! Every seeded test in the repository reads its seed the same way — through
//! [`chaos_seed`] — so a failure seen anywhere (CI fault matrix, a rotating
//! seed, a local run) can be reproduced by exporting one environment
//! variable. To make that loop one copy-paste, tests hold a [`ReproGuard`]:
//! if the test panics, the guard prints a single
//! `LDS_CHAOS_SEED=… cargo test …` line on its way out of scope.
//!
//! ```rust
//! use lds_workload::seed::{chaos_seed, repro_guard};
//!
//! let seed = chaos_seed(0xC4A0_5EED);
//! let _repro = repro_guard(seed, "partition");
//! // ... seeded assertions; on panic the guard prints the repro line ...
//! ```

/// Environment variable overriding the seed of every seeded test.
pub const CHAOS_SEED_ENV: &str = "LDS_CHAOS_SEED";

/// Returns the seed a seeded test should run with: the value of the
/// `LDS_CHAOS_SEED` environment variable when set and parseable (decimal, or
/// hex with an `0x` prefix), otherwise `default`.
pub fn chaos_seed(default: u64) -> u64 {
    match std::env::var(CHAOS_SEED_ENV) {
        Ok(raw) => parse_seed(raw.trim()).unwrap_or(default),
        Err(_) => default,
    }
}

fn parse_seed(raw: &str) -> Option<u64> {
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        raw.replace('_', "").parse().ok()
    }
}

/// Prints a one-line reproduction command if the holding test panics.
///
/// Constructed by [`repro_guard`] at the top of a seeded test; on a clean
/// pass it drops silently, on an assertion failure its `Drop` runs while the
/// thread is panicking and prints the exact command to re-run the failing
/// test with the failing seed.
///
/// When the store under test has its flight recorder on, arm the guard with
/// [`ReproGuard::with_trace`] and the failure printout also carries the
/// recorder's tail — the last events (faults injected, repair lifecycle,
/// op phases) leading up to the assertion, as JSONL.
pub struct ReproGuard {
    seed: u64,
    test: String,
    trace: Option<Box<dyn Fn() -> Option<String> + Send>>,
}

impl std::fmt::Debug for ReproGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReproGuard")
            .field("seed", &self.seed)
            .field("test", &self.test)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

/// Arms a [`ReproGuard`] for the integration test binary named `test`
/// running with `seed`.
pub fn repro_guard(seed: u64, test: &str) -> ReproGuard {
    ReproGuard {
        seed,
        test: test.to_string(),
        trace: None,
    }
}

impl ReproGuard {
    /// Attaches a flight-recorder tail hook, called only if the test
    /// panics. The hook returns the tail as JSONL (one event per line), or
    /// `None` when there is nothing to dump (e.g. tracing was off). Taking
    /// a closure — not a recorder — keeps this crate decoupled from the
    /// engine crate:
    ///
    /// ```rust,ignore
    /// let admin = store.admin();
    /// let _repro = repro_guard(seed, "chaos")
    ///     .with_trace(move || Some(admin.trace_dump().tail_jsonl(64)));
    /// ```
    pub fn with_trace(mut self, hook: impl Fn() -> Option<String> + Send + 'static) -> ReproGuard {
        self.trace = Some(Box::new(hook));
        self
    }
}

impl Drop for ReproGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "repro: {}={} cargo test --release --test {} -- --nocapture",
                CHAOS_SEED_ENV, self.seed, self.test
            );
            if let Some(tail) = self.trace.as_ref().and_then(|hook| hook()) {
                if !tail.is_empty() {
                    eprintln!("flight recorder tail (JSONL):");
                    eprint!("{tail}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_hex_and_underscores() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xC4A0_5EED"), Some(0xC4A0_5EED));
        assert_eq!(parse_seed("0Xff"), Some(255));
        assert_eq!(parse_seed("1_000"), Some(1000));
        assert_eq!(parse_seed("nope"), None);
        assert_eq!(parse_seed(""), None);
    }

    #[test]
    fn guard_is_silent_on_success() {
        let _guard = repro_guard(7, "chaos");
        // Dropping without a panic must not print or panic itself.
    }
}
