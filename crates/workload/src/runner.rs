//! Wiring a complete two-layer LDS deployment into the simulator.

use lds_core::backend::{make_backend, BackendCodec, BackendKind};
use lds_core::consistency::History;
use lds_core::membership::{Membership, CLIENT_GROUP, L1_GROUP, L2_GROUP};
use lds_core::messages::{LdsMessage, ProtocolEvent};
use lds_core::params::SystemParams;
use lds_core::reader::ReaderClient;
use lds_core::server1::{L1Options, L1Server};
use lds_core::server2::L2Server;
use lds_core::tag::{ClientId, ObjectId};
use lds_core::value::Value;
use lds_core::writer::WriterClient;
use lds_sim::{ClassLatency, LinkSpec, NetworkMetrics, ProcessId, SimConfig, SimTime, Simulation};
use std::sync::Arc;

/// Configuration of a simulated LDS deployment.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// System parameters (layer sizes, fault tolerances, code parameters).
    pub params: SystemParams,
    /// Back-end code used in L2.
    pub backend: BackendKind,
    /// Simulation seed.
    pub seed: u64,
    /// Upper bound on L1 ↔ L1 link delay (τ0).
    pub tau0: f64,
    /// Upper bound on client ↔ L1 link delay (τ1).
    pub tau1: f64,
    /// Upper bound on L1 ↔ L2 link delay (τ2).
    pub tau2: f64,
    /// Fraction of jitter: each delay is drawn uniformly from
    /// `[(1 − jitter)·τ, τ]`. Zero gives the deterministic bounded-latency
    /// model used in the paper's latency analysis.
    pub jitter: f64,
    /// Use the direct (non-relayed) COMMIT-TAG broadcast. See
    /// [`L1Options::direct_broadcast`].
    pub direct_broadcast: bool,
}

impl RunnerConfig {
    /// Creates a configuration with the paper's default latency regime
    /// (τ0 = τ1 = 1, τ2 = 10) and an MBR back-end.
    pub fn new(params: SystemParams) -> Self {
        RunnerConfig {
            params,
            backend: BackendKind::Mbr,
            seed: 0,
            tau0: 1.0,
            tau1: 1.0,
            tau2: 10.0,
            jitter: 0.0,
            direct_broadcast: false,
        }
    }

    /// Sets the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the back-end code.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the three link-delay bounds.
    pub fn latencies(mut self, tau0: f64, tau1: f64, tau2: f64) -> Self {
        self.tau0 = tau0;
        self.tau1 = tau1;
        self.tau2 = tau2;
        self
    }

    /// Sets the jitter fraction (0 = deterministic delays).
    pub fn jitter(mut self, jitter: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&jitter),
            "jitter must be within [0, 1]"
        );
        self.jitter = jitter;
        self
    }

    /// Enables the direct (cheaper, less fault-tolerant) broadcast.
    pub fn direct_broadcast(mut self, on: bool) -> Self {
        self.direct_broadcast = on;
        self
    }

    fn latency_model(&self) -> ClassLatency {
        let spec = |tau: f64| {
            if self.jitter > 0.0 {
                LinkSpec::uniform(tau * (1.0 - self.jitter), tau)
            } else {
                LinkSpec::fixed(tau)
            }
        };
        ClassLatency::new(spec(self.tau1))
            .with_link(CLIENT_GROUP, L1_GROUP, spec(self.tau1))
            .with_link(L1_GROUP, L1_GROUP, spec(self.tau0))
            .with_link(L1_GROUP, L2_GROUP, spec(self.tau2))
            .with_link(L2_GROUP, L2_GROUP, spec(self.tau2))
            .with_link(CLIENT_GROUP, L2_GROUP, spec(self.tau2))
    }
}

/// The result of running a simulated workload.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Completed-operation history (input to the atomicity checkers).
    pub history: History,
    /// Traffic counters for the whole run.
    pub metrics: NetworkMetrics,
    /// Simulated time at which the run finished.
    pub finished_at: SimTime,
    /// Total bytes in L1 temporary storage at the end of the run.
    pub l1_storage_bytes: usize,
    /// Total bytes in L2 permanent storage at the end of the run.
    pub l2_storage_bytes: usize,
}

/// A complete simulated LDS deployment: `n1` L1 servers, `n2` L2 servers and
/// any number of writer / reader clients, all driven by the deterministic
/// simulator.
pub struct SimRunner {
    config: RunnerConfig,
    sim: Simulation<LdsMessage, ProtocolEvent>,
    membership: Membership,
    backend: Arc<dyn BackendCodec>,
    writers: Vec<ProcessId>,
    readers: Vec<ProcessId>,
    next_client_id: u64,
}

impl SimRunner {
    /// Builds the deployment described by `config`.
    pub fn new(config: RunnerConfig) -> Self {
        let params = config.params;
        let backend =
            make_backend(config.backend, &params).expect("backend construction for valid params");
        // Pre-warm the codec's memoized decode / repair plans for the
        // canonical quorums so measured operations run at steady-state speed.
        backend.warm_plans();
        let sim_config = SimConfig::with_seed(config.seed).latency(config.latency_model());
        let mut sim: Simulation<LdsMessage, ProtocolEvent> = Simulation::new(sim_config);

        // Process ids are assigned densely in spawn order, so the membership
        // can be computed up front: L1 first, then L2.
        let l1: Vec<ProcessId> = (0..params.n1()).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (params.n1()..params.n1() + params.n2())
            .map(ProcessId)
            .collect();
        let membership = Membership::new(l1.clone(), l2.clone());
        let options = L1Options {
            direct_broadcast: config.direct_broadcast,
            ..L1Options::default()
        };

        for (j, &expected) in l1.iter().enumerate() {
            let server =
                L1Server::new(j, params, membership.clone(), Arc::clone(&backend), options);
            let pid = sim.spawn(server, L1_GROUP);
            assert_eq!(
                pid, expected,
                "spawn order must match the precomputed membership"
            );
        }
        for (i, &expected) in l2.iter().enumerate() {
            let server = L2Server::new(i, membership.clone(), Arc::clone(&backend));
            let pid = sim.spawn(server, L2_GROUP);
            assert_eq!(
                pid, expected,
                "spawn order must match the precomputed membership"
            );
        }

        SimRunner {
            config,
            sim,
            membership,
            backend,
            writers: Vec::new(),
            readers: Vec::new(),
            next_client_id: 1,
        }
    }

    /// The system parameters of this deployment.
    pub fn params(&self) -> SystemParams {
        self.config.params
    }

    /// The configuration the runner was built with.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// The deployment's membership (server process ids).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Direct access to the underlying simulation (advanced probes).
    pub fn sim(&self) -> &Simulation<LdsMessage, ProtocolEvent> {
        &self.sim
    }

    /// Adds a writer client and returns its process id.
    pub fn add_writer(&mut self) -> ProcessId {
        let id = ClientId(self.next_client_id);
        self.next_client_id += 1;
        let writer = WriterClient::new(id, self.config.params, self.membership.clone());
        let pid = self.sim.spawn(writer, CLIENT_GROUP);
        self.writers.push(pid);
        pid
    }

    /// Adds a reader client and returns its process id.
    pub fn add_reader(&mut self) -> ProcessId {
        let id = ClientId(self.next_client_id);
        self.next_client_id += 1;
        let reader = ReaderClient::new(
            id,
            self.config.params,
            self.membership.clone(),
            Arc::clone(&self.backend),
        );
        let pid = self.sim.spawn(reader, CLIENT_GROUP);
        self.readers.push(pid);
        pid
    }

    /// All writer process ids added so far.
    pub fn writers(&self) -> &[ProcessId] {
        &self.writers
    }

    /// All reader process ids added so far.
    pub fn readers(&self) -> &[ProcessId] {
        &self.readers
    }

    /// Schedules a write of `value` to the default object at `time`. Accepts
    /// anything convertible into a [`Value`] — `Vec<u8>` is framed once,
    /// already-framed `Value`s (e.g. from a reuse-friendly
    /// [`crate::ValueGenerator`]) are passed through without copying.
    pub fn invoke_write(&mut self, writer: ProcessId, time: f64, value: impl Into<Value>) {
        self.invoke_write_obj(writer, time, ObjectId(0), value);
    }

    /// Schedules a write to a specific object at `time`.
    pub fn invoke_write_obj(
        &mut self,
        writer: ProcessId,
        time: f64,
        obj: ObjectId,
        value: impl Into<Value>,
    ) {
        self.sim.inject_at(
            time,
            writer,
            LdsMessage::InvokeWrite {
                obj,
                value: value.into(),
            },
        );
    }

    /// Schedules a read of the default object at `time`.
    pub fn invoke_read(&mut self, reader: ProcessId, time: f64) {
        self.invoke_read_obj(reader, time, ObjectId(0));
    }

    /// Schedules a read of a specific object at `time`.
    pub fn invoke_read_obj(&mut self, reader: ProcessId, time: f64, obj: ObjectId) {
        self.sim
            .inject_at(time, reader, LdsMessage::InvokeRead { obj });
    }

    /// Crashes the L1 server with code index `index` at `time`.
    pub fn crash_l1(&mut self, index: usize, time: f64) {
        self.sim.schedule_crash(time, self.membership.l1[index]);
    }

    /// Crashes the L2 server with code index `index` at `time`.
    pub fn crash_l2(&mut self, index: usize, time: f64) {
        self.sim.schedule_crash(time, self.membership.l2[index]);
    }

    /// Runs until quiescence and collects the report.
    pub fn run(&mut self) -> RunReport {
        self.sim.run();
        self.report()
    }

    /// Runs until simulated `time` (events after it stay queued).
    pub fn run_until(&mut self, time: f64) {
        self.sim.run_until(time);
    }

    /// Current total bytes of temporary storage across L1 servers.
    pub fn l1_storage_bytes(&self) -> usize {
        self.membership
            .l1
            .iter()
            .filter_map(|&pid| self.sim.process_ref::<L1Server>(pid))
            .map(L1Server::temporary_storage_bytes)
            .sum()
    }

    /// Current total bytes of permanent storage across L2 servers.
    pub fn l2_storage_bytes(&self) -> usize {
        self.membership
            .l2
            .iter()
            .filter_map(|&pid| self.sim.process_ref::<L2Server>(pid))
            .map(L2Server::storage_bytes)
            .sum()
    }

    /// Number of readers currently registered across all L1 servers (useful
    /// to verify that reads unregister themselves).
    pub fn registered_readers(&self) -> usize {
        self.membership
            .l1
            .iter()
            .filter_map(|&pid| self.sim.process_ref::<L1Server>(pid))
            .map(L1Server::registered_readers)
            .sum()
    }

    /// Builds the report for the events observed so far without consuming
    /// pending events.
    pub fn report(&self) -> RunReport {
        let history =
            History::from_events(self.sim.events().iter().map(|(t, _, e)| (e.clone(), *t)));
        RunReport {
            history,
            metrics: self.sim.metrics().clone(),
            finished_at: self.sim.now(),
            l1_storage_bytes: self.l1_storage_bytes(),
            l2_storage_bytes: self.l2_storage_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> SystemParams {
        SystemParams::for_failures(1, 1, 2, 3).unwrap() // n1=4, n2=5, k=2, d=3
    }

    #[test]
    fn single_write_and_read_roundtrip() {
        let mut runner = SimRunner::new(RunnerConfig::new(small_params()).seed(42));
        let w = runner.add_writer();
        let r = runner.add_reader();
        runner.invoke_write(w, 0.0, b"layered".to_vec());
        runner.invoke_read(r, 200.0);
        let report = runner.run();

        assert_eq!(report.history.len(), 2);
        report.history.check_atomicity().unwrap();
        let read = report
            .history
            .operations()
            .iter()
            .find(|o| !o.is_write())
            .expect("read completed");
        assert_eq!(read.value().as_bytes(), b"layered");
        assert_eq!(runner.registered_readers(), 0);
    }

    #[test]
    fn read_with_no_prior_write_returns_initial_value() {
        let mut runner = SimRunner::new(RunnerConfig::new(small_params()).seed(3));
        let r = runner.add_reader();
        runner.invoke_read(r, 0.0);
        let report = runner.run();
        assert_eq!(report.history.len(), 1);
        let read = &report.history.operations()[0];
        assert!(read.value().is_empty());
        assert!(read.tag.is_initial());
        report.history.check_atomicity().unwrap();
    }

    #[test]
    fn value_is_offloaded_to_l2_and_gc_from_l1() {
        let mut runner = SimRunner::new(RunnerConfig::new(small_params()).seed(7));
        let w = runner.add_writer();
        runner.invoke_write(w, 0.0, vec![9u8; 900]);
        let report = runner.run();
        assert_eq!(report.history.len(), 1);
        // After quiescence the value lives only as coded elements in L2.
        assert_eq!(report.l1_storage_bytes, 0, "L1 storage is temporary");
        assert!(report.l2_storage_bytes > 0, "L2 holds the coded elements");
        // With the MBR code the total L2 storage is far below n2 full copies.
        assert!(report.l2_storage_bytes < 5 * 900);
    }

    #[test]
    fn read_concurrent_with_write_is_served_from_l1() {
        let mut runner = SimRunner::new(RunnerConfig::new(small_params()).seed(1));
        let w = runner.add_writer();
        let r = runner.add_reader();
        runner.invoke_write(w, 0.0, b"concurrent".to_vec());
        // The read starts while the write is still in flight (write takes
        // ~6 time units under unit latencies).
        runner.invoke_read(r, 1.0);
        let report = runner.run();
        assert_eq!(report.history.len(), 2);
        report.history.check_atomicity().unwrap();
    }

    #[test]
    fn survives_maximum_failures_in_both_layers() {
        let mut runner = SimRunner::new(RunnerConfig::new(small_params()).seed(5));
        let w = runner.add_writer();
        let r = runner.add_reader();
        // f1 = 1 crash in L1 and f2 = 1 crash in L2, before any operation.
        runner.crash_l1(0, 0.0);
        runner.crash_l2(4, 0.0);
        runner.invoke_write(w, 1.0, b"fault tolerant".to_vec());
        runner.invoke_read(r, 300.0);
        let report = runner.run();
        assert_eq!(
            report.history.len(),
            2,
            "operations complete despite crashes"
        );
        let read = report
            .history
            .operations()
            .iter()
            .find(|o| !o.is_write())
            .unwrap();
        assert_eq!(read.value().as_bytes(), b"fault tolerant");
        report.history.check_atomicity().unwrap();
    }

    #[test]
    fn direct_broadcast_reduces_message_count() {
        let run = |direct: bool| {
            let mut runner = SimRunner::new(
                RunnerConfig::new(small_params())
                    .seed(9)
                    .direct_broadcast(direct),
            );
            let w = runner.add_writer();
            runner.invoke_write(w, 0.0, b"x".to_vec());
            runner.run().metrics.messages_sent()
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut runner =
                SimRunner::new(RunnerConfig::new(small_params()).seed(seed).jitter(0.3));
            let w = runner.add_writer();
            let r = runner.add_reader();
            runner.invoke_write(w, 0.0, b"det".to_vec());
            runner.invoke_read(r, 10.0);
            let report = runner.run();
            (report.metrics.messages_sent(), report.finished_at)
        };
        assert_eq!(run(11), run(11));
    }
}
