//! # lds-workload
//!
//! Workload generation and experiment running for the LDS reproduction.
//!
//! The central type is [`runner::SimRunner`]: it wires a full two-layer LDS
//! deployment (L1 servers, L2 servers, writer and reader clients) into the
//! deterministic simulator from `lds-sim`, injects client operations, and
//! returns a [`runner::RunReport`] with the operation history (for atomicity
//! checking), the traffic metrics (for the paper's communication-cost
//! accounting) and storage probes (for the storage-cost accounting).
//!
//! On top of the runner:
//!
//! * [`measure`] — single-number cost measurements (write cost, read cost at
//!   `δ = 0` and `δ > 0`, per-object storage) used by the benchmark harness
//!   to reproduce Lemmas V.2–V.4;
//! * [`generator`] — value generators and closed-loop workload drivers;
//! * [`multi_object`] — the multi-object storage experiment behind Fig. 6 /
//!   Lemma V.5;
//! * [`throughput`] — latency/ops-per-second accounting for the wall-clock
//!   cluster benchmark (`exp_throughput`) and the cluster stress tests;
//! * [`repair`] — repair-bandwidth accounting for the online node-repair
//!   benchmark (`exp_repair`);
//! * [`chaos`] — deterministic, budget-aware kill schedules for the
//!   self-healing chaos harness (seeded, never exceeding a layer's crash
//!   budget given the current down-set);
//! * [`seed`] — the one place seeded tests read `LDS_CHAOS_SEED` from, plus
//!   the [`seed::ReproGuard`] that prints a one-line repro command when a
//!   seeded test fails.
//!
//! # Example
//!
//! ```rust
//! use lds_core::params::SystemParams;
//! use lds_workload::runner::{RunnerConfig, SimRunner};
//!
//! let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
//! let mut runner = SimRunner::new(RunnerConfig::new(params).seed(1));
//! let w = runner.add_writer();
//! let r = runner.add_reader();
//! runner.invoke_write(w, 0.0, b"hello".to_vec());
//! runner.invoke_read(r, 100.0);
//! let report = runner.run();
//! assert_eq!(report.history.len(), 2);
//! report.history.check_atomicity().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod generator;
pub mod measure;
pub mod multi_object;
pub mod repair;
pub mod runner;
pub mod seed;
pub mod throughput;

pub use chaos::{ChaosLayer, ChaosSchedule, ChaosScheduleConfig, ChaosTarget};
pub use generator::{ClosedLoopWorkload, ValueGenerator, ZipfianGenerator};
pub use measure::{CostMeasurement, CostReport};
pub use repair::RepairBandwidth;
pub use runner::{RunReport, RunnerConfig, SimRunner};
pub use seed::{chaos_seed, repro_guard, ReproGuard};
pub use throughput::{LatencyRecorder, ThroughputSummary};
