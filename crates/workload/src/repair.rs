//! Repair-bandwidth accounting for the online node-repair benchmark
//! (`exp_repair` → `BENCH_REPAIR.json`).
//!
//! The cluster's repair coordinator reports how many bytes each helper
//! actually shipped and what the decode-and-re-encode fallback would have
//! moved; this module turns those numbers into the derived quantities the
//! benchmark records (bytes per object, bandwidth ratio) and into stable
//! JSON rows, so the bench binary and the CI schema check share one format.

/// One measured repair run: what moved, what the fallback would have moved.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairBandwidth {
    /// Backend label (e.g. `MBR`).
    pub backend: String,
    /// Repaired layer label (`L1` / `L2`).
    pub layer: String,
    /// Value size written to every object before the crash, in bytes.
    pub value_size: usize,
    /// Objects the replacement regenerated from helper payloads.
    pub objects: u64,
    /// Live helpers that contributed.
    pub helpers: usize,
    /// Repair payload bytes actually moved.
    pub bytes_total: u64,
    /// Bytes the full-element (decode-and-re-encode) fallback would move.
    pub fallback_bytes: u64,
    /// Wall-clock duration of the online repair in milliseconds.
    pub elapsed_ms: f64,
}

impl RepairBandwidth {
    /// Average repair bytes moved per regenerated object.
    pub fn bytes_per_object(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.bytes_total as f64 / self.objects as f64
        }
    }

    /// Measured traffic over the fallback (`1.0` = no saving; an MBR
    /// back-end achieves `≈ 1/α`).
    pub fn bandwidth_ratio(&self) -> f64 {
        if self.fallback_bytes == 0 {
            1.0
        } else {
            self.bytes_total as f64 / self.fallback_bytes as f64
        }
    }

    /// Renders the record as one JSON object (no trailing comma/newline) —
    /// the row format of `BENCH_REPAIR.json`'s `results` array.
    pub fn json_row(&self) -> String {
        format!(
            "{{ \"backend\": \"{}\", \"layer\": \"{}\", \"value_size\": {}, \
             \"objects\": {}, \"helpers\": {}, \"repair_bytes_total\": {}, \
             \"bytes_per_object\": {:.1}, \"fallback_bytes\": {}, \
             \"bandwidth_ratio\": {:.4}, \"elapsed_ms\": {:.2} }}",
            self.backend,
            self.layer,
            self.value_size,
            self.objects,
            self.helpers,
            self.bytes_total,
            self.bytes_per_object(),
            self.fallback_bytes,
            self.bandwidth_ratio(),
            self.elapsed_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RepairBandwidth {
        RepairBandwidth {
            backend: "MBR".into(),
            layer: "L2".into(),
            value_size: 1024,
            objects: 8,
            helpers: 4,
            bytes_total: 4000,
            fallback_bytes: 20_000,
            elapsed_ms: 3.25,
        }
    }

    #[test]
    fn derived_quantities() {
        let r = sample();
        assert_eq!(r.bytes_per_object(), 500.0);
        assert!((r.bandwidth_ratio() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn zero_cases_are_well_defined() {
        let mut r = sample();
        r.objects = 0;
        r.fallback_bytes = 0;
        assert_eq!(r.bytes_per_object(), 0.0);
        assert_eq!(r.bandwidth_ratio(), 1.0);
    }

    #[test]
    fn json_row_has_the_schema_fields() {
        let row = sample().json_row();
        for field in [
            "\"backend\"",
            "\"layer\"",
            "\"value_size\"",
            "\"objects\"",
            "\"helpers\"",
            "\"repair_bytes_total\"",
            "\"bytes_per_object\"",
            "\"fallback_bytes\"",
            "\"bandwidth_ratio\"",
            "\"elapsed_ms\"",
        ] {
            assert!(row.contains(field), "missing {field} in {row}");
        }
    }
}
