//! The multi-object storage experiment behind Lemma V.5 and Fig. 6.
//!
//! `N` objects are implemented by `N` independent LDS instances hosted on the
//! same `n1 + n2` servers. A write workload with bounded concurrency `θ`
//! (concurrent writes per τ1 interval) runs for a while; we then measure the
//! peak temporary (L1) storage and the final permanent (L2) storage, both
//! normalised by the value size, and compare against the paper's bounds.

use crate::generator::ValueGenerator;
use crate::runner::{RunnerConfig, SimRunner};
use lds_core::params::SystemParams;
use lds_core::tag::ObjectId;

/// Configuration of one multi-object run.
#[derive(Debug, Clone)]
pub struct MultiObjectConfig {
    /// System parameters.
    pub params: SystemParams,
    /// Number of objects `N`.
    pub objects: usize,
    /// Number of writer clients issuing concurrent writes (this bounds θ).
    pub concurrent_writers: usize,
    /// Writes performed by each writer.
    pub writes_per_writer: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// The τ2 / τ1 ratio µ.
    pub mu: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl MultiObjectConfig {
    /// A small default suitable for tests.
    pub fn small(params: SystemParams, objects: usize) -> Self {
        MultiObjectConfig {
            params,
            objects,
            concurrent_writers: 2,
            writes_per_writer: 2,
            value_size: 256,
            mu: 5.0,
            seed: 0,
        }
    }
}

/// Result of a multi-object run, in value-size units.
#[derive(Debug, Clone, Copy)]
pub struct MultiObjectReport {
    /// Number of objects written.
    pub objects: usize,
    /// Peak temporary storage observed in L1 during the run.
    pub peak_l1_storage: f64,
    /// Final permanent storage in L2 after quiescence.
    pub final_l2_storage: f64,
    /// The paper's bound on L1 storage (Lemma V.5): `⌈5 + 2µ⌉·θ·n1`.
    pub l1_bound: f64,
    /// The paper's L2 storage value (Lemma V.5): `2·N·n2 / (k + 1)` for the
    /// symmetric configuration.
    pub l2_bound: f64,
}

/// Runs the multi-object write workload and measures storage.
///
/// Writers issue writes round-robin over the `N` objects; the simulation is
/// stepped in small increments so the peak L1 occupancy is observed rather
/// than just the final state.
pub fn run_multi_object(config: &MultiObjectConfig) -> MultiObjectReport {
    let runner_config = RunnerConfig::new(config.params)
        .seed(config.seed)
        .latencies(1.0, 1.0, config.mu);
    let mut runner = SimRunner::new(runner_config);
    let writers: Vec<_> = (0..config.concurrent_writers)
        .map(|_| runner.add_writer())
        .collect();

    let mut values = ValueGenerator::new(config.value_size, config.seed);
    // Schedule writes: each writer performs its writes back-to-back with a
    // conservative spacing larger than the extended-write latency bound, so
    // clients stay well-formed without a closed loop.
    let spacing = 8.0 + 4.0 * config.mu;
    let mut next_obj = 0u64;
    for round in 0..config.writes_per_writer {
        for &w in &writers {
            let obj = ObjectId(next_obj % config.objects as u64);
            next_obj += 1;
            runner.invoke_write_obj(w, round as f64 * spacing, obj, values.next_value());
        }
    }

    // Step the simulation and record the peak L1 occupancy.
    let horizon = (config.writes_per_writer as f64 + 2.0) * spacing + 20.0 * config.mu;
    let mut peak_l1 = 0usize;
    let mut t = 0.0;
    while t < horizon {
        t += 1.0;
        runner.run_until(t);
        peak_l1 = peak_l1.max(runner.l1_storage_bytes());
    }
    let report = runner.run();
    let vs = config.value_size as f64;

    // θ: writes that can overlap within a τ1 window is at most the number of
    // concurrent writers in this workload.
    let theta = config.concurrent_writers as f64;
    MultiObjectReport {
        objects: config.objects,
        peak_l1_storage: peak_l1 as f64 / vs,
        final_l2_storage: report.l2_storage_bytes as f64 / vs,
        l1_bound: lds_core::costs::l1_storage_bound_multi_object(&config.params, theta, config.mu),
        l2_bound: lds_core::costs::l2_storage_bound_multi_object(&config.params, config.objects),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_stays_within_paper_bounds() {
        let params = SystemParams::symmetric(6, 1).unwrap(); // n1 = n2 = 6, k = d = 4
        let config = MultiObjectConfig {
            objects: 4,
            writes_per_writer: 2,
            concurrent_writers: 2,
            value_size: 512,
            mu: 3.0,
            seed: 2,
            params,
        };
        let report = run_multi_object(&config);
        assert!(report.peak_l1_storage > 0.0, "writes must pass through L1");
        assert!(
            report.peak_l1_storage <= report.l1_bound,
            "peak L1 storage {} exceeded the Lemma V.5 bound {}",
            report.peak_l1_storage,
            report.l1_bound
        );
        // Final L2 storage: every written object stores 2/(k+1) per server →
        // 2 n2 / (k+1) per object; unwritten objects may contribute nothing.
        assert!(report.final_l2_storage > 0.0);
        assert!(
            report.final_l2_storage <= report.l2_bound * 1.1,
            "final L2 storage {} exceeded the bound {}",
            report.final_l2_storage,
            report.l2_bound
        );
        // After quiescence, L1 temporary storage is empty again.
    }

    #[test]
    fn l2_storage_grows_linearly_with_objects() {
        let params = SystemParams::symmetric(6, 1).unwrap();
        let run = |objects| {
            let config = MultiObjectConfig {
                objects,
                writes_per_writer: objects, // ensure every object is written
                concurrent_writers: 1,
                value_size: 256,
                mu: 2.0,
                seed: 3,
                params,
            };
            run_multi_object(&config).final_l2_storage
        };
        let two = run(2);
        let four = run(4);
        assert!(
            (four / two - 2.0).abs() < 0.3,
            "L2 storage should scale linearly with N: {two} vs {four}"
        );
    }
}
