//! Value generators and closed-loop workload drivers.

use crate::runner::{RunReport, SimRunner};
use lds_core::tag::ObjectId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates write values: unique contents (so the linearizability search can
/// attribute reads) of a configurable size.
#[derive(Debug, Clone)]
pub struct ValueGenerator {
    size: usize,
    counter: u64,
    rng: SmallRng,
}

impl ValueGenerator {
    /// Creates a generator producing values of `size` bytes.
    pub fn new(size: usize, seed: u64) -> Self {
        ValueGenerator {
            size,
            counter: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Produces the next value. The first 16 bytes encode a unique counter
    /// and a random nonce, so every generated value is distinct even at size
    /// 16; the rest is pseudo-random filler.
    pub fn next_value(&mut self) -> Vec<u8> {
        self.counter += 1;
        let mut v = vec![0u8; self.size.max(16)];
        v[..8].copy_from_slice(&self.counter.to_le_bytes());
        let nonce: u64 = self.rng.gen();
        v[8..16].copy_from_slice(&nonce.to_le_bytes());
        for b in v[16..].iter_mut() {
            *b = self.rng.gen();
        }
        v.truncate(self.size.max(16));
        v
    }

    /// Number of values generated so far.
    pub fn generated(&self) -> u64 {
        self.counter
    }
}

/// A closed-loop workload: each client issues its next operation a fixed
/// "think time" after its previous operation completed, which guarantees
/// well-formedness without knowing operation latencies in advance.
#[derive(Debug, Clone)]
pub struct ClosedLoopWorkload {
    /// Operations each writer performs.
    pub writes_per_writer: usize,
    /// Operations each reader performs.
    pub reads_per_reader: usize,
    /// Size of written values in bytes.
    pub value_size: usize,
    /// Delay between an operation completing and the client's next
    /// invocation.
    pub think_time: f64,
    /// Number of objects; operations round-robin over them.
    pub objects: usize,
    /// Seed for value generation.
    pub seed: u64,
}

impl Default for ClosedLoopWorkload {
    fn default() -> Self {
        ClosedLoopWorkload {
            writes_per_writer: 3,
            reads_per_reader: 3,
            value_size: 64,
            think_time: 1.0,
            objects: 1,
            seed: 0,
        }
    }
}

impl ClosedLoopWorkload {
    /// Drives the workload on `runner` (which must already have its writers
    /// and readers added) until every client finished its quota, then runs
    /// the simulation to quiescence and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to make progress (an operation neither
    /// completes nor generates new events for a long stretch of simulated
    /// time), which would indicate a protocol liveness bug.
    pub fn run(&self, runner: &mut SimRunner) -> RunReport {
        let mut values = ValueGenerator::new(self.value_size, self.seed);
        let writers: Vec<_> = runner.writers().to_vec();
        let readers: Vec<_> = runner.readers().to_vec();

        // Remaining-op counters per client.
        let mut writes_left: Vec<usize> = vec![self.writes_per_writer; writers.len()];
        let mut reads_left: Vec<usize> = vec![self.reads_per_reader; readers.len()];
        let mut next_obj: u64 = 0;

        // Kick off the first operation of every client at t = 0.
        for (i, &w) in writers.iter().enumerate() {
            if writes_left[i] > 0 {
                writes_left[i] -= 1;
                let obj = ObjectId(next_obj % self.objects as u64);
                next_obj += 1;
                runner.invoke_write_obj(w, 0.0, obj, values.next_value());
            }
        }
        for (i, &r) in readers.iter().enumerate() {
            if reads_left[i] > 0 {
                reads_left[i] -= 1;
                let obj = ObjectId(next_obj % self.objects as u64);
                next_obj += 1;
                runner.invoke_read_obj(r, 0.0, obj);
            }
        }

        // Step the simulation, re-arming clients as their operations finish.
        let mut seen_events = 0usize;
        let step = (self.think_time.max(1.0)) * 2.0;
        let mut now = 0.0;
        let mut idle_rounds = 0;
        loop {
            now += step;
            runner.run_until(now);
            let new_events: Vec<(f64, lds_sim::ProcessId)> = runner.sim().events()[seen_events..]
                .iter()
                .map(|(t, pid, _)| (t.as_f64(), *pid))
                .collect();
            seen_events += new_events.len();
            let progressed = !new_events.is_empty();
            for (t, pid) in new_events {
                let at = (t + self.think_time).max(now);
                if let Some(i) = writers.iter().position(|&w| w == pid) {
                    if writes_left[i] > 0 {
                        writes_left[i] -= 1;
                        let obj = ObjectId(next_obj % self.objects as u64);
                        next_obj += 1;
                        runner.invoke_write_obj(pid, at, obj, values.next_value());
                    }
                } else if let Some(i) = readers.iter().position(|&r| r == pid) {
                    if reads_left[i] > 0 {
                        reads_left[i] -= 1;
                        let obj = ObjectId(next_obj % self.objects as u64);
                        next_obj += 1;
                        runner.invoke_read_obj(pid, at, obj);
                    }
                }
            }
            let all_done = writes_left.iter().all(|&w| w == 0)
                && reads_left.iter().all(|&r| r == 0)
                && seen_events
                    == self.writes_per_writer * writers.len()
                        + self.reads_per_reader * readers.len();
            if all_done {
                break;
            }
            if progressed {
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
                assert!(
                    idle_rounds < 10_000,
                    "closed-loop workload stalled: liveness violation in the protocol under test"
                );
            }
        }
        // Let background activity (write-to-L2 offloading) quiesce.
        let mut report = runner.run();
        report.history = lds_core::consistency::History::from_events(
            runner
                .sim()
                .events()
                .iter()
                .map(|(t, _, e)| (e.clone(), *t)),
        );
        report
    }

    /// Total number of operations this workload will perform for the given
    /// client counts.
    pub fn total_ops(&self, writers: usize, readers: usize) -> usize {
        self.writes_per_writer * writers + self.reads_per_reader * readers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunnerConfig;
    use lds_core::params::SystemParams;

    #[test]
    fn value_generator_produces_unique_values() {
        let mut g = ValueGenerator::new(16, 1);
        let a = g.next_value();
        let b = g.next_value();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert_eq!(g.generated(), 2);
        // Small sizes are padded up to 16 bytes to stay unique.
        let mut g = ValueGenerator::new(4, 1);
        assert_eq!(g.next_value().len(), 16);
        // Larger sizes honoured exactly.
        let mut g = ValueGenerator::new(100, 2);
        assert_eq!(g.next_value().len(), 100);
    }

    #[test]
    fn closed_loop_workload_completes_and_is_atomic() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let mut runner = SimRunner::new(RunnerConfig::new(params).seed(17));
        for _ in 0..2 {
            runner.add_writer();
        }
        for _ in 0..2 {
            runner.add_reader();
        }
        let workload = ClosedLoopWorkload {
            writes_per_writer: 3,
            reads_per_reader: 3,
            value_size: 32,
            think_time: 2.0,
            objects: 1,
            seed: 5,
        };
        let report = workload.run(&mut runner);
        assert_eq!(report.history.len(), workload.total_ops(2, 2));
        report.history.check_atomicity().unwrap();
    }
}
