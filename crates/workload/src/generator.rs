//! Value generators, key-skew generators and closed-loop workload drivers.

use crate::runner::{RunReport, SimRunner};
use lds_core::tag::ObjectId;
use lds_core::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Generates write values: unique contents (so the linearizability search can
/// attribute reads) of a configurable size.
///
/// Values are produced as [`Value`]s backed by a small ring of reusable
/// `Arc<Vec<u8>>` buffers: when the previous holder of a ring slot has
/// dropped its `Value` (the common closed-loop case), the buffer is refilled
/// in place instead of allocated fresh — at large value sizes this removes
/// one `value_size` allocation + zeroing per operation from the workload
/// driver's hot path. Slots still referenced by an in-flight `Value` are
/// replaced with a fresh allocation, so the returned contents are always
/// exclusively owned until handed over.
#[derive(Debug, Clone)]
pub struct ValueGenerator {
    size: usize,
    counter: u64,
    rng: SmallRng,
    buffers: Vec<Arc<Vec<u8>>>,
    next_buf: usize,
}

impl ValueGenerator {
    /// Creates a generator producing values of `size` bytes.
    pub fn new(size: usize, seed: u64) -> Self {
        // Bound the ring's resident memory: enough slots to cover a deep
        // client pipeline at small sizes, few slots at multi-MiB sizes.
        const MAX_BUFFERS: usize = 64;
        const MAX_RING_BYTES: usize = 64 << 20;
        let ring = (MAX_RING_BYTES / size.max(16)).clamp(4, MAX_BUFFERS);
        ValueGenerator {
            size,
            counter: 0,
            rng: SmallRng::seed_from_u64(seed),
            // Each slot needs its own Arc — `vec![arc; n]` would alias them.
            buffers: (0..ring).map(|_| Arc::new(Vec::new())).collect(),
            next_buf: 0,
        }
    }

    /// Produces the next value. The first 16 bytes encode a unique counter
    /// and a random nonce, so every generated value is distinct even at size
    /// 16; the rest is pseudo-random filler.
    pub fn next_value(&mut self) -> Value {
        self.counter += 1;
        let len = self.size.max(16);
        let index = self.next_buf;
        self.next_buf = (self.next_buf + 1) % self.buffers.len();
        let slot = &mut self.buffers[index];
        let buf = match Arc::get_mut(slot) {
            Some(buf) => {
                buf.resize(len, 0);
                buf
            }
            None => {
                // The previous Value from this slot is still alive somewhere
                // (deep pipeline): give it its buffer and start a new one.
                *slot = Arc::new(vec![0u8; len]);
                Arc::get_mut(slot).expect("freshly created Arc is unique")
            }
        };
        buf[..8].copy_from_slice(&self.counter.to_le_bytes());
        let nonce: u64 = self.rng.gen();
        buf[8..16].copy_from_slice(&nonce.to_le_bytes());
        for chunk in buf[16..].chunks_mut(8) {
            let filler: u64 = self.rng.gen();
            chunk.copy_from_slice(&filler.to_le_bytes()[..chunk.len()]);
        }
        Value::from(Arc::clone(slot))
    }

    /// Number of values generated so far.
    pub fn generated(&self) -> u64 {
        self.counter
    }
}

/// Bounded Zipfian key generator (Gray et al., "Quickly generating
/// billion-record synthetic databases", SIGMOD '94 — the YCSB construction):
/// keys `0..n` where key `r` is drawn with probability proportional to
/// `1 / (r + 1)^theta`. `theta = 0` degenerates to the uniform distribution;
/// the YCSB-conventional skews are `theta = 0.9` ("zipfian") and
/// `theta = 0.99` (hotspot-heavy). Key 0 is always the hottest key.
///
/// Deterministic for a given `(n, theta, seed)` triple, so skewed benchmark
/// runs are reproducible and cache-on/cache-off comparisons can replay the
/// identical key sequence.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    rng: SmallRng,
}

impl ZipfianGenerator {
    /// Creates a generator over keys `0..n` with skew `theta` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)` (the Gray et al.
    /// construction diverges at `theta = 1`).
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipfian key space must be non-empty");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        ZipfianGenerator {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The generalized harmonic number `Σ_{i=1..n} 1 / i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws the next key in `0..n`.
    pub fn next_key(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let key = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        key.min(self.n - 1)
    }

    /// The expected frequency of the hottest key (rank 0): `1 / zeta(n)`.
    pub fn top_key_probability(&self) -> f64 {
        1.0 / self.zetan
    }
}

/// A closed-loop workload: each client issues its next operation a fixed
/// "think time" after its previous operation completed, which guarantees
/// well-formedness without knowing operation latencies in advance.
#[derive(Debug, Clone)]
pub struct ClosedLoopWorkload {
    /// Operations each writer performs.
    pub writes_per_writer: usize,
    /// Operations each reader performs.
    pub reads_per_reader: usize,
    /// Size of written values in bytes.
    pub value_size: usize,
    /// Delay between an operation completing and the client's next
    /// invocation.
    pub think_time: f64,
    /// Number of objects; operations round-robin over them.
    pub objects: usize,
    /// Seed for value generation.
    pub seed: u64,
}

impl Default for ClosedLoopWorkload {
    fn default() -> Self {
        ClosedLoopWorkload {
            writes_per_writer: 3,
            reads_per_reader: 3,
            value_size: 64,
            think_time: 1.0,
            objects: 1,
            seed: 0,
        }
    }
}

impl ClosedLoopWorkload {
    /// Drives the workload on `runner` (which must already have its writers
    /// and readers added) until every client finished its quota, then runs
    /// the simulation to quiescence and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to make progress (an operation neither
    /// completes nor generates new events for a long stretch of simulated
    /// time), which would indicate a protocol liveness bug.
    pub fn run(&self, runner: &mut SimRunner) -> RunReport {
        let mut values = ValueGenerator::new(self.value_size, self.seed);
        let writers: Vec<_> = runner.writers().to_vec();
        let readers: Vec<_> = runner.readers().to_vec();

        // Remaining-op counters per client.
        let mut writes_left: Vec<usize> = vec![self.writes_per_writer; writers.len()];
        let mut reads_left: Vec<usize> = vec![self.reads_per_reader; readers.len()];
        let mut next_obj: u64 = 0;

        // Kick off the first operation of every client at t = 0.
        for (i, &w) in writers.iter().enumerate() {
            if writes_left[i] > 0 {
                writes_left[i] -= 1;
                let obj = ObjectId(next_obj % self.objects as u64);
                next_obj += 1;
                runner.invoke_write_obj(w, 0.0, obj, values.next_value());
            }
        }
        for (i, &r) in readers.iter().enumerate() {
            if reads_left[i] > 0 {
                reads_left[i] -= 1;
                let obj = ObjectId(next_obj % self.objects as u64);
                next_obj += 1;
                runner.invoke_read_obj(r, 0.0, obj);
            }
        }

        // Step the simulation, re-arming clients as their operations finish.
        let mut seen_events = 0usize;
        let step = (self.think_time.max(1.0)) * 2.0;
        let mut now = 0.0;
        let mut idle_rounds = 0;
        loop {
            now += step;
            runner.run_until(now);
            let new_events: Vec<(f64, lds_sim::ProcessId)> = runner.sim().events()[seen_events..]
                .iter()
                .map(|(t, pid, _)| (t.as_f64(), *pid))
                .collect();
            seen_events += new_events.len();
            let progressed = !new_events.is_empty();
            for (t, pid) in new_events {
                let at = (t + self.think_time).max(now);
                if let Some(i) = writers.iter().position(|&w| w == pid) {
                    if writes_left[i] > 0 {
                        writes_left[i] -= 1;
                        let obj = ObjectId(next_obj % self.objects as u64);
                        next_obj += 1;
                        runner.invoke_write_obj(pid, at, obj, values.next_value());
                    }
                } else if let Some(i) = readers.iter().position(|&r| r == pid) {
                    if reads_left[i] > 0 {
                        reads_left[i] -= 1;
                        let obj = ObjectId(next_obj % self.objects as u64);
                        next_obj += 1;
                        runner.invoke_read_obj(pid, at, obj);
                    }
                }
            }
            let all_done = writes_left.iter().all(|&w| w == 0)
                && reads_left.iter().all(|&r| r == 0)
                && seen_events
                    == self.writes_per_writer * writers.len()
                        + self.reads_per_reader * readers.len();
            if all_done {
                break;
            }
            if progressed {
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
                assert!(
                    idle_rounds < 10_000,
                    "closed-loop workload stalled: liveness violation in the protocol under test"
                );
            }
        }
        // Let background activity (write-to-L2 offloading) quiesce.
        let mut report = runner.run();
        report.history = lds_core::consistency::History::from_events(
            runner
                .sim()
                .events()
                .iter()
                .map(|(t, _, e)| (e.clone(), *t)),
        );
        report
    }

    /// Total number of operations this workload will perform for the given
    /// client counts.
    pub fn total_ops(&self, writers: usize, readers: usize) -> usize {
        self.writes_per_writer * writers + self.reads_per_reader * readers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunnerConfig;
    use lds_core::params::SystemParams;

    #[test]
    fn value_generator_produces_unique_values() {
        let mut g = ValueGenerator::new(16, 1);
        let a = g.next_value();
        let b = g.next_value();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert_eq!(g.generated(), 2);
        // Small sizes are padded up to 16 bytes to stay unique.
        let mut g = ValueGenerator::new(4, 1);
        assert_eq!(g.next_value().len(), 16);
        // Larger sizes honoured exactly.
        let mut g = ValueGenerator::new(100, 2);
        assert_eq!(g.next_value().len(), 100);
    }

    #[test]
    fn value_generator_reuses_dropped_buffers_in_place() {
        let mut g = ValueGenerator::new(64, 1);
        let ring = g.buffers.len();
        // Dropping each value before drawing the next lets every ring slot be
        // refilled in place: after a full lap no new Arc has been created.
        let first_lap: Vec<*const u8> = (0..ring)
            .map(|_| {
                let v = g.next_value();
                v.as_bytes().as_ptr()
            })
            .collect();
        let second_lap: Vec<*const u8> = (0..ring)
            .map(|_| {
                let v = g.next_value();
                v.as_bytes().as_ptr()
            })
            .collect();
        assert_eq!(first_lap, second_lap, "ring buffers were not reused");
        // A value still held elsewhere forces a fresh allocation for its slot
        // instead of clobbering the held bytes.
        let held = g.next_value();
        let held_snapshot = held.as_bytes().to_vec();
        for _ in 0..ring {
            let _ = g.next_value();
        }
        assert_eq!(held.as_bytes(), &held_snapshot[..], "held value mutated");
    }

    #[test]
    fn zipfian_is_deterministic_by_seed() {
        let mut a = ZipfianGenerator::new(1000, 0.99, 42);
        let mut b = ZipfianGenerator::new(1000, 0.99, 42);
        let keys_a: Vec<u64> = (0..200).map(|_| a.next_key()).collect();
        let keys_b: Vec<u64> = (0..200).map(|_| b.next_key()).collect();
        assert_eq!(keys_a, keys_b, "same seed must replay the same keys");
        let mut c = ZipfianGenerator::new(1000, 0.99, 43);
        let keys_c: Vec<u64> = (0..200).map(|_| c.next_key()).collect();
        assert_ne!(keys_a, keys_c, "different seed should diverge");
        assert!(keys_a.iter().all(|&k| k < 1000), "keys must stay in range");
    }

    #[test]
    fn zipfian_top_key_frequencies_match_theory() {
        // Empirical frequency of the hottest key must land near its
        // analytical probability 1 / zeta(n), and ranks must be ordered by
        // frequency. Deterministic seeds keep the tolerances safe.
        for &theta in &[0.9, 0.99] {
            let n = 100u64;
            let mut g = ZipfianGenerator::new(n, theta, 7);
            let expected_top = g.top_key_probability();
            let draws = 200_000usize;
            let mut counts = vec![0usize; n as usize];
            for _ in 0..draws {
                counts[g.next_key() as usize] += 1;
            }
            let top_freq = counts[0] as f64 / draws as f64;
            let rel_err = (top_freq - expected_top).abs() / expected_top;
            assert!(
                rel_err < 0.05,
                "theta={theta}: top-key frequency {top_freq:.4} vs expected \
                 {expected_top:.4} (rel err {rel_err:.3})"
            );
            assert!(
                counts[0] > counts[1] && counts[1] > counts[10],
                "theta={theta}: frequencies must fall with rank: {:?}",
                &counts[..12]
            );
        }
        // theta = 0 degenerates to uniform: the hottest key is no hotter
        // than 1/n by more than sampling noise.
        let mut g = ZipfianGenerator::new(100, 0.0, 7);
        let draws = 200_000usize;
        let mut counts = vec![0usize; 100];
        for _ in 0..draws {
            counts[g.next_key() as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64 / draws as f64;
        assert!(max < 0.013, "theta=0 must be uniform, hottest freq {max}");
    }

    #[test]
    fn closed_loop_workload_completes_and_is_atomic() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let mut runner = SimRunner::new(RunnerConfig::new(params).seed(17));
        for _ in 0..2 {
            runner.add_writer();
        }
        for _ in 0..2 {
            runner.add_reader();
        }
        let workload = ClosedLoopWorkload {
            writes_per_writer: 3,
            reads_per_reader: 3,
            value_size: 32,
            think_time: 2.0,
            objects: 1,
            seed: 5,
        };
        let report = workload.run(&mut runner);
        assert_eq!(report.history.len(), workload.total_ops(2, 2));
        report.history.check_atomicity().unwrap();
    }
}
