//! The `ldsd` binary: parse the config, start the daemon, serve until a
//! client asks for shutdown.
//!
//! Exit codes: `0` clean shutdown, `1` runtime failure, `2` bad usage or
//! bad configuration. Config problems print exactly one
//! `ldsd: config error: …` line — never a panic, never a half-started
//! daemon.

use ldsd::{Config, Daemon, DaemonError};
use std::time::Duration;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut args = std::env::args().skip(1);
    let mut config_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" | "-c" => match args.next() {
                Some(path) => config_path = Some(path),
                None => {
                    eprintln!("ldsd: --config needs a path");
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!("usage: ldsd --config <path.toml>");
                println!();
                println!("Runs one LDS storage daemon. The config file names this");
                println!("daemon's listen addresses, the deployment's protocol");
                println!("parameters and the full server membership; see the");
                println!("README's multi-host recipe for a complete example.");
                return 0;
            }
            other => {
                eprintln!("ldsd: unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }
    let Some(config_path) = config_path else {
        eprintln!("ldsd: missing --config <path.toml>");
        return 2;
    };

    let text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("ldsd: config error: cannot read {config_path}: {error}");
            return 2;
        }
    };
    let config = match Config::parse(&text) {
        Ok(config) => config,
        Err(error) => {
            eprintln!("ldsd: config error: {error}");
            return 2;
        }
    };

    let daemon = match Daemon::start(config) {
        Ok(daemon) => daemon,
        Err(error @ DaemonError::Config(_)) => {
            eprintln!("ldsd: {error}");
            return 2;
        }
        Err(error) => {
            eprintln!("ldsd: {error}");
            return 1;
        }
    };
    let config = daemon.config();
    println!(
        "ldsd: daemon {} of {} up — mesh {}, rpc {}, http {} (L1 {:?}, L2 {:?})",
        config.daemon_index,
        config.daemon_addrs.len(),
        config.daemon.listen,
        daemon.client_addr(),
        daemon.http_addr(),
        config.host_scope().l1,
        config.host_scope().l2,
    );

    // Serve until a client sends the Shutdown RPC.
    while !daemon.wait_shutdown(Duration::from_secs(3600)) {}
    println!("ldsd: shutdown requested, stopping");
    daemon.stop();
    0
}
