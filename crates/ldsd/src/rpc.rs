//! The daemon's client-facing RPC server.
//!
//! Clients speak the same wire codec as the mesh (`lds_core::wire`), but
//! over a separate listener and with [`Frame::Request`]/[`Frame::Response`]
//! instead of raw protocol messages. A connection starts with a `Hello`
//! exchange (the client sends `daemon = u64::MAX`, the daemon answers with
//! its index), then carries any number of concurrently outstanding requests;
//! responses are matched by request id, not by order.
//!
//! Per connection the daemon runs two threads:
//!
//! * a **reader** that decodes frames off the socket and queues
//!   `(id, Request)` pairs;
//! * a **worker** that owns a pipelined [`StoreClient`] plus an [`Admin`]
//!   handle, drains the queue (data ops become `submit_*` calls, admin ops
//!   run inline), polls completions and writes responses back.
//!
//! Admin requests targeting a server hosted by a *different* daemon answer
//! with a [`Response::Error`] naming the owner — repairs must run where the
//! replacement's threads live.

use crate::config::Config;
use lds_cluster::repair::RepairLayer;
use lds_cluster::{Admin, OpOutcome, OpTicket, ServerRef, Store, StoreClient, StoreHandle};
use lds_core::wire::{self, Frame, Request, Response};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked accept/worker loops re-check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(100);

/// Worker back-off while waiting for in-flight store completions.
const POLL_PAUSE: Duration = Duration::from_millis(1);

/// One decoded event from a connection's reader thread.
enum Event {
    /// A well-formed request frame.
    Request(u64, Request),
    /// The stream died or framing was lost; the worker should exit.
    Closed,
}

/// The running RPC server; stopped via [`RpcServer::stop`].
pub(crate) struct RpcServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    acceptor: Option<JoinHandle<()>>,
}

impl RpcServer {
    /// Binds `addr` and starts the accept loop. `shutdown_tx` fires when a
    /// client sends [`Request::Shutdown`].
    pub(crate) fn start(
        addr: SocketAddr,
        store: Arc<StoreHandle>,
        config: Arc<Config>,
        shutdown_tx: crossbeam::channel::Sender<()>,
    ) -> std::io::Result<RpcServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = std::thread::Builder::new()
            .name("ldsd-rpc-accept".into())
            .spawn({
                let stop = Arc::clone(&stop);
                let conns = Arc::clone(&conns);
                let threads = Arc::clone(&threads);
                move || run_acceptor(listener, store, config, shutdown_tx, stop, conns, threads)
            })?;
        Ok(RpcServer {
            addr,
            stop,
            conns,
            threads,
            acceptor: Some(acceptor),
        })
    }

    /// The address actually bound (resolves `:0`).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every live connection and joins all threads.
    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        for stream in self.conns.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for thread in self.threads.lock().drain(..) {
            let _ = thread.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_acceptor(
    listener: TcpListener,
    store: Arc<StoreHandle>,
    config: Arc<Config>,
    shutdown_tx: crossbeam::channel::Sender<()>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Ok(tracked) = stream.try_clone() {
            conns.lock().push(tracked);
        }
        let worker = std::thread::Builder::new()
            .name("ldsd-rpc-conn".into())
            .spawn({
                let store = Arc::clone(&store);
                let config = Arc::clone(&config);
                let shutdown_tx = shutdown_tx.clone();
                let stop = Arc::clone(&stop);
                move || run_connection(stream, store, config, shutdown_tx, stop)
            });
        if let Ok(worker) = worker {
            threads.lock().push(worker);
        }
    }
}

/// Reader-thread body: decode frames into `tx` until the stream dies.
fn run_reader(mut stream: TcpStream, tx: crossbeam::channel::Sender<Event>) {
    let mut body = Vec::with_capacity(4096);
    loop {
        match crate::read_frame(&mut stream, &mut body) {
            Some(Ok(Frame::Request { id, req })) => {
                if tx.send(Event::Request(id, req)).is_err() {
                    return;
                }
            }
            // A late Hello is harmless; anything else on the RPC port —
            // or a decode error, which loses framing — ends the session.
            Some(Ok(Frame::Hello { .. })) => {}
            _ => {
                let _ = tx.send(Event::Closed);
                return;
            }
        }
    }
}

/// Worker-thread body: handshake, then serve until the peer goes away.
fn run_connection(
    mut stream: TcpStream,
    store: Arc<StoreHandle>,
    config: Arc<Config>,
    shutdown_tx: crossbeam::channel::Sender<()>,
    stop: Arc<AtomicBool>,
) {
    let mut body = Vec::with_capacity(4096);
    // The handshake happens on the worker so a half-open connection cannot
    // occupy a reader pair: no Hello, no session.
    match crate::read_frame(&mut stream, &mut body) {
        Some(Ok(Frame::Hello { .. })) => {}
        _ => return,
    }
    let mut buf = Vec::with_capacity(4096);
    let hello = Frame::Hello {
        daemon: config.daemon_index as u64,
    };
    if wire::encode_frame(&hello, &mut buf).is_err() || stream.write_all(&buf).is_err() {
        return;
    }

    let (tx, rx) = crossbeam::channel::unbounded::<Event>();
    let reader = match stream.try_clone() {
        Ok(read_half) => std::thread::Builder::new()
            .name("ldsd-rpc-reader".into())
            .spawn(move || run_reader(read_half, tx)),
        Err(_) => return,
    };

    let mut client = store.client_with_depth(config.cluster.pipeline_depth);
    let admin = store.admin();
    let mut pending: HashMap<OpTicket, u64> = HashMap::new();
    let mut open = true;
    'serve: while open || !pending.is_empty() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // Ingest requests: block when idle, drain opportunistically while
        // store operations are in flight.
        let mut progressed = false;
        loop {
            let event = if pending.is_empty() && open {
                match rx.recv_timeout(STOP_POLL) {
                    Ok(event) => Some(event),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Some(Event::Closed),
                }
            } else {
                rx.try_recv()
            };
            match event {
                Some(Event::Request(id, req)) => {
                    progressed = true;
                    match handle_request(id, req, &mut client, &admin, &config, &mut pending) {
                        Action::NoResponseYet => {}
                        Action::Respond(resp) => {
                            if !write_response(&mut stream, &mut buf, id, resp) {
                                break 'serve;
                            }
                        }
                        Action::ShutdownDaemon(resp) => {
                            let _ = write_response(&mut stream, &mut buf, id, resp);
                            let _ = shutdown_tx.send(());
                            break 'serve;
                        }
                    }
                }
                Some(Event::Closed) => {
                    open = false;
                    break;
                }
                None => break,
            }
        }
        // Harvest store completions for in-flight data operations.
        if !pending.is_empty() {
            match client.poll() {
                Ok(completions) => {
                    for completion in completions {
                        let Some(id) = pending.remove(&completion.ticket) else {
                            continue;
                        };
                        progressed = true;
                        let resp = match completion.outcome {
                            OpOutcome::Write { tag } => Response::Written { tag },
                            OpOutcome::Read { value, .. } => Response::Value { bytes: value },
                        };
                        if !write_response(&mut stream, &mut buf, id, resp) {
                            break 'serve;
                        }
                    }
                }
                Err(error) => {
                    // The store is gone (shutdown under us): fail every
                    // outstanding request once, then drop the session.
                    let message = error.to_string();
                    for (_, id) in pending.drain() {
                        let resp = Response::Error {
                            message: message.clone(),
                        };
                        if !write_response(&mut stream, &mut buf, id, resp) {
                            break;
                        }
                    }
                    break 'serve;
                }
            }
            if !progressed {
                std::thread::sleep(POLL_PAUSE);
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    if let Ok(reader) = reader {
        let _ = reader.join();
    }
}

/// What the worker does right after handling one request.
enum Action {
    /// A data op was submitted; the response comes from a later completion.
    NoResponseYet,
    /// Answer immediately.
    Respond(Response),
    /// Answer, then bring the whole daemon down.
    ShutdownDaemon(Response),
}

fn handle_request(
    id: u64,
    req: Request,
    client: &mut StoreClient,
    admin: &Admin,
    config: &Config,
    pending: &mut HashMap<OpTicket, u64>,
) -> Action {
    match req {
        Request::Write { obj, value } => {
            let ticket = client.submit_write(obj, &value);
            pending.insert(ticket, id);
            Action::NoResponseYet
        }
        Request::Read { obj } => {
            let ticket = client.submit_read(obj);
            pending.insert(ticket, id);
            Action::NoResponseYet
        }
        Request::Kill { layer, index } => Action::Respond(admin_op(layer, index, config, |s| {
            admin.kill(s).map(|()| Response::Killed)
        })),
        Request::Repair { layer, index } => Action::Respond(admin_op(layer, index, config, |s| {
            admin.repair(s).map(|report| Response::Repaired {
                objects: report.objects,
            })
        })),
        Request::Liveness => {
            let liveness = admin.liveness();
            let count =
                |layers: &[Vec<bool>]| layers.iter().flatten().filter(|&&live| live).count() as u64;
            Action::Respond(Response::Liveness {
                live_l1: count(&liveness.l1),
                live_l2: count(&liveness.l2),
            })
        }
        Request::Shutdown => Action::ShutdownDaemon(Response::ShuttingDown),
        // The wire enum is non-exhaustive: a newer client may send a
        // request this daemon does not know.
        _ => Action::Respond(Response::Error {
            message: "unsupported request".into(),
        }),
    }
}

/// Runs one admin operation against a locally hosted server, or explains
/// which daemon owns it.
fn admin_op(
    layer: u8,
    index: u64,
    config: &Config,
    op: impl FnOnce(ServerRef) -> Result<Response, lds_cluster::StoreError>,
) -> Response {
    let index = index as usize;
    let (server, pid, bound) = match layer {
        0 => (ServerRef::l1(index), index, config.n1()),
        1 => (ServerRef::l2(index), config.n1() + index, config.n2()),
        _ => {
            return Response::Error {
                message: format!("unknown layer {layer} (0 = L1, 1 = L2)"),
            }
        }
    };
    if index >= bound {
        return Response::Error {
            message: format!("{server} out of range (layer has {bound} servers)"),
        };
    }
    let owner = config.owner_of_server(pid);
    if owner != config.daemon_index {
        return Response::Error {
            message: format!(
                "{server} is hosted by daemon {owner} at {}; send admin requests there",
                config.daemon_addrs[owner]
            ),
        };
    }
    match op(server) {
        Ok(resp) => resp,
        Err(error) => Response::Error {
            message: error.to_string(),
        },
    }
}

/// Encodes and writes one response frame; `false` when the stream is dead.
fn write_response(stream: &mut TcpStream, buf: &mut Vec<u8>, id: u64, resp: Response) -> bool {
    buf.clear();
    if wire::encode_frame(&Frame::Response { id, resp }, buf).is_err() {
        return false;
    }
    stream.write_all(buf).is_ok()
}

/// The layer byte of a [`RepairLayer`] as used by [`Request::Kill`] /
/// [`Request::Repair`].
pub fn layer_byte(layer: RepairLayer) -> u8 {
    matches!(layer, RepairLayer::L2) as u8
}
