//! # ldsd
//!
//! The standalone LDS server daemon: one OS process hosting its share of a
//! deployment's L1/L2 servers, meshed with its peers over real TCP.
//!
//! A deployment is described by one TOML config file per daemon
//! ([`config::Config`]); the `[membership]` section pins every server pid
//! to a daemon's mesh address, and each daemon derives its own slice
//! (which servers to spawn, which client-id residues to allocate) from
//! where its `listen` address appears in that table. Three listeners per
//! daemon:
//!
//! * **mesh** (`daemon.listen`) — server ↔ server protocol traffic,
//!   carried by the cluster runtime's
//!   [`TcpTransport`] under the router;
//! * **client RPC** (`daemon.client_listen`) — [`NetClient`] connections
//!   speaking request/response frames of the same [`wire`] codec;
//! * **HTTP** (`daemon.http_listen`) — `GET /metrics` (Prometheus text
//!   exposition) and `GET /health`.
//!
//! The binary (`ldsd --config path.toml`) wraps [`Daemon::start`]; the
//! library surface exists so tests, benches and examples can run whole
//! multi-daemon deployments in one process while still crossing real
//! sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod http;
pub mod net_client;
mod rpc;

pub use config::{Config, ConfigError};
pub use net_client::{NetClient, NetError};
pub use rpc::layer_byte;

use lds_cluster::transport::{TcpTransport, Transport};
use lds_cluster::{StoreBuilder, StoreError, StoreHandle};
use lds_core::wire::{self, Frame, WireError, HEADER_LEN};
use std::fmt;
use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A failure to start (or run) a daemon.
#[derive(Debug)]
#[non_exhaustive]
pub enum DaemonError {
    /// The configuration was rejected (see [`Config::parse`]).
    Config(ConfigError),
    /// A listener could not be bound or a socket failed; `context` names
    /// which one.
    Io {
        /// Which listener/socket operation failed.
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The store runtime refused the derived deployment.
    Store(StoreError),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Config(e) => write!(f, "config error: {e}"),
            DaemonError::Io { context, source } => write!(f, "{context}: {source}"),
            DaemonError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<ConfigError> for DaemonError {
    fn from(e: ConfigError) -> DaemonError {
        DaemonError::Config(e)
    }
}

impl From<StoreError> for DaemonError {
    fn from(e: StoreError) -> DaemonError {
        DaemonError::Store(e)
    }
}

/// One running daemon: its hosted slice of the cluster, the mesh
/// transport, the client RPC listener and the HTTP endpoint.
pub struct Daemon {
    config: Arc<Config>,
    store: Arc<StoreHandle>,
    rpc: Option<rpc::RpcServer>,
    http: Option<http::HttpServer>,
    shutdown_rx: crossbeam::channel::Receiver<()>,
}

impl Daemon {
    /// Builds and starts every component of the daemon, in dependency
    /// order; any failure tears down cleanly and reports one error.
    pub fn start(config: Config) -> Result<Daemon, DaemonError> {
        let config = Arc::new(config);
        let transport =
            Arc::new(
                TcpTransport::bind(config.topology()).map_err(|source| DaemonError::Io {
                    context: "bind mesh listener",
                    source,
                })?,
            );
        let mut builder = StoreBuilder::new()
            .failures(config.cluster.f1, config.cluster.f2)
            .code(config.cluster.k, config.cluster.d)
            .backend(config.cluster.backend)
            .pipeline_depth(config.cluster.pipeline_depth)
            .transport(transport as Arc<dyn Transport>)
            .host_scope(config.host_scope());
        if config.heal.enabled {
            builder = builder.self_heal_with(config.heal.to_heal_config());
        }
        let store = Arc::new(builder.build()?);

        let http = http::HttpServer::start(config.daemon.http_listen, Arc::clone(&store)).map_err(
            |source| {
                store.shutdown();
                DaemonError::Io {
                    context: "bind http listener",
                    source,
                }
            },
        )?;

        let (shutdown_tx, shutdown_rx) = crossbeam::channel::unbounded();
        let rpc = rpc::RpcServer::start(
            config.daemon.client_listen,
            Arc::clone(&store),
            Arc::clone(&config),
            shutdown_tx,
        );
        let rpc = match rpc {
            Ok(rpc) => rpc,
            Err(source) => {
                http.stop();
                store.shutdown();
                return Err(DaemonError::Io {
                    context: "bind client rpc listener",
                    source,
                });
            }
        };

        Ok(Daemon {
            config,
            store,
            rpc: Some(rpc),
            http: Some(http),
            shutdown_rx,
        })
    }

    /// The configuration this daemon runs under.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The client RPC address actually bound.
    pub fn client_addr(&self) -> SocketAddr {
        self.rpc.as_ref().expect("rpc runs until stop").local_addr()
    }

    /// The HTTP address actually bound.
    pub fn http_addr(&self) -> SocketAddr {
        self.http
            .as_ref()
            .expect("http runs until stop")
            .local_addr()
    }

    /// The hosted store (for in-process tests and benches that want the
    /// local facade next to the network one).
    pub fn store(&self) -> &Arc<StoreHandle> {
        &self.store
    }

    /// Blocks until a client asks this daemon to shut down
    /// ([`NetClient::shutdown`]), checking `deadline` so embedders can
    /// bound the wait. Returns `true` when a shutdown request arrived.
    pub fn wait_shutdown(&self, timeout: Duration) -> bool {
        match self.shutdown_rx.recv_timeout(timeout) {
            Ok(()) => true,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => false,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => true,
        }
    }

    /// Stops every component in reverse start order: RPC first (no new
    /// requests), then HTTP, then the store runtime (which also shuts the
    /// mesh transport down).
    pub fn stop(mut self) {
        if let Some(rpc) = self.rpc.take() {
            rpc.stop();
        }
        if let Some(http) = self.http.take() {
            http.stop();
        }
        self.store.shutdown();
    }
}

impl fmt::Debug for Daemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Daemon")
            .field("index", &self.config.daemon_index)
            .field("listen", &self.config.daemon.listen)
            .finish_non_exhaustive()
    }
}

/// Reads one `[len][kind][body]` frame off `stream`, or `None` on
/// EOF/error. Shared by the RPC server and [`NetClient`].
pub(crate) fn read_frame(
    stream: &mut TcpStream,
    body: &mut Vec<u8>,
) -> Option<Result<Frame, WireError>> {
    let mut header = [0u8; HEADER_LEN];
    if stream.read_exact(&mut header).is_err() {
        return None;
    }
    let len = match wire::frame_len(header) {
        Ok(len) => len,
        Err(e) => return Some(Err(e)),
    };
    body.resize(len, 0);
    if stream.read_exact(body).is_err() {
        return None;
    }
    Some(wire::decode_frame(body))
}
