//! A blocking + pipelined network client for an `ldsd` daemon.
//!
//! [`NetClient`] speaks the request/response side of the wire codec over
//! one TCP connection to a daemon's `client_listen` port. It mirrors the
//! in-process [`Store`](lds_cluster::Store) facade's shape:
//!
//! * **blocking**: [`NetClient::write`] / [`NetClient::read`] send one
//!   request and wait for its response;
//! * **pipelined**: [`NetClient::submit_write`] / [`NetClient::submit_read`]
//!   return a request id immediately; [`NetClient::wait_written`] /
//!   [`NetClient::wait_value`] harvest responses in any order (out-of-order
//!   arrivals are stashed until asked for).
//!
//! Admin verbs ([`NetClient::kill`], [`NetClient::repair`], …) must target
//! a server hosted by the connected daemon; the daemon's error response
//! names the right one otherwise.

use lds_core::tag::{ObjectId, Tag};
use lds_core::wire::{self, Frame, Request, Response, WireError};
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A failure of a network store operation.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The connection failed or died.
    Io(std::io::Error),
    /// A frame could not be decoded (protocol corruption).
    Wire(WireError),
    /// The daemon rejected or failed the request; the string is its
    /// one-line error rendering.
    Remote(String),
    /// The daemon answered with a response of the wrong kind.
    UnexpectedResponse(&'static str),
    /// The peer did not complete the `Hello` exchange.
    Handshake,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "connection error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Remote(message) => write!(f, "daemon error: {message}"),
            NetError::UnexpectedResponse(expected) => {
                write!(f, "unexpected response kind (expected {expected})")
            }
            NetError::Handshake => write!(f, "handshake failed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        NetError::Wire(e)
    }
}

/// One connection to an `ldsd` daemon (see the [module docs](self)).
pub struct NetClient {
    stream: TcpStream,
    /// Reusable encode buffer.
    buf: Vec<u8>,
    /// Reusable frame-body decode buffer.
    body: Vec<u8>,
    next_id: u64,
    /// Responses that arrived while waiting for a different id.
    stash: HashMap<u64, Response>,
    /// The daemon index the peer announced in its `Hello`.
    daemon: u64,
}

impl NetClient {
    /// Connects and performs the `Hello` exchange.
    pub fn connect(addr: SocketAddr) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        NetClient::handshake(stream)
    }

    /// [`NetClient::connect`], retrying until `deadline` while the daemon
    /// is still coming up (connection refused / reset).
    pub fn connect_retry(addr: SocketAddr, timeout: Duration) -> Result<NetClient, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match NetClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(error) => {
                    if Instant::now() >= deadline {
                        return Err(error);
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    fn handshake(mut stream: TcpStream) -> Result<NetClient, NetError> {
        stream.set_nodelay(true)?;
        let mut buf = Vec::with_capacity(4096);
        // Clients are not mesh members; u64::MAX marks the Hello as one
        // from outside the daemon index space.
        wire::encode_frame(&Frame::Hello { daemon: u64::MAX }, &mut buf)?;
        stream.write_all(&buf)?;
        let mut body = Vec::with_capacity(4096);
        let daemon = match crate::read_frame(&mut stream, &mut body) {
            Some(Ok(Frame::Hello { daemon })) => daemon,
            Some(Err(error)) => return Err(error.into()),
            _ => return Err(NetError::Handshake),
        };
        Ok(NetClient {
            stream,
            buf,
            body,
            next_id: 0,
            stash: HashMap::new(),
            daemon,
        })
    }

    /// The index the connected daemon announced during the handshake.
    pub fn daemon_index(&self) -> u64 {
        self.daemon
    }

    // ------------------------------------------------------------------
    // Pipelined data plane
    // ------------------------------------------------------------------

    /// Sends a write; the returned id is redeemed with
    /// [`NetClient::wait_written`].
    pub fn submit_write(&mut self, obj: ObjectId, value: &[u8]) -> Result<u64, NetError> {
        self.send(Request::Write {
            obj,
            value: value.to_vec(),
        })
    }

    /// Sends a read; the returned id is redeemed with
    /// [`NetClient::wait_value`].
    pub fn submit_read(&mut self, obj: ObjectId) -> Result<u64, NetError> {
        self.send(Request::Read { obj })
    }

    /// Waits for request `id` to complete as a write.
    pub fn wait_written(&mut self, id: u64) -> Result<Tag, NetError> {
        match self.wait(id)? {
            Response::Written { tag } => Ok(tag),
            Response::Error { message } => Err(NetError::Remote(message)),
            _ => Err(NetError::UnexpectedResponse("Written")),
        }
    }

    /// Waits for request `id` to complete as a read.
    pub fn wait_value(&mut self, id: u64) -> Result<Vec<u8>, NetError> {
        match self.wait(id)? {
            Response::Value { bytes } => Ok(bytes),
            Response::Error { message } => Err(NetError::Remote(message)),
            _ => Err(NetError::UnexpectedResponse("Value")),
        }
    }

    // ------------------------------------------------------------------
    // Blocking data plane
    // ------------------------------------------------------------------

    /// Writes `value` under `obj` and returns the committed tag.
    pub fn write(&mut self, obj: ObjectId, value: &[u8]) -> Result<Tag, NetError> {
        let id = self.submit_write(obj, value)?;
        self.wait_written(id)
    }

    /// Reads the latest committed value of `obj`.
    pub fn read(&mut self, obj: ObjectId) -> Result<Vec<u8>, NetError> {
        let id = self.submit_read(obj)?;
        self.wait_value(id)
    }

    // ------------------------------------------------------------------
    // Admin plane
    // ------------------------------------------------------------------

    /// Crashes the server at (`layer`, `index`); `layer` 0 = L1, 1 = L2.
    pub fn kill(&mut self, layer: u8, index: u64) -> Result<(), NetError> {
        let id = self.send(Request::Kill { layer, index })?;
        match self.wait(id)? {
            Response::Killed => Ok(()),
            Response::Error { message } => Err(NetError::Remote(message)),
            _ => Err(NetError::UnexpectedResponse("Killed")),
        }
    }

    /// Repairs the server at (`layer`, `index`), returning how many objects
    /// the replacement regenerated.
    pub fn repair(&mut self, layer: u8, index: u64) -> Result<u64, NetError> {
        let id = self.send(Request::Repair { layer, index })?;
        match self.wait(id)? {
            Response::Repaired { objects } => Ok(objects),
            Response::Error { message } => Err(NetError::Remote(message)),
            _ => Err(NetError::UnexpectedResponse("Repaired")),
        }
    }

    /// Per-layer live-server counts as the connected daemon observes them.
    pub fn liveness(&mut self) -> Result<(u64, u64), NetError> {
        let id = self.send(Request::Liveness)?;
        match self.wait(id)? {
            Response::Liveness { live_l1, live_l2 } => Ok((live_l1, live_l2)),
            Response::Error { message } => Err(NetError::Remote(message)),
            _ => Err(NetError::UnexpectedResponse("Liveness")),
        }
    }

    /// Asks the connected daemon to shut down; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        let id = self.send(Request::Shutdown)?;
        match self.wait(id)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(NetError::Remote(message)),
            _ => Err(NetError::UnexpectedResponse("ShuttingDown")),
        }
    }

    // ------------------------------------------------------------------

    /// Sends one request frame, returning its id.
    fn send(&mut self, req: Request) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.buf.clear();
        wire::encode_frame(&Frame::Request { id, req }, &mut self.buf)?;
        self.stream.write_all(&self.buf)?;
        Ok(id)
    }

    /// Blocks until the response for `id` arrives, stashing any other
    /// responses that land first.
    fn wait(&mut self, id: u64) -> Result<Response, NetError> {
        loop {
            if let Some(resp) = self.stash.remove(&id) {
                return Ok(resp);
            }
            match crate::read_frame(&mut self.stream, &mut self.body) {
                Some(Ok(Frame::Response { id: got, resp })) => {
                    if got == id {
                        return Ok(resp);
                    }
                    self.stash.insert(got, resp);
                }
                Some(Ok(Frame::Hello { .. })) => {}
                Some(Ok(_)) => return Err(NetError::UnexpectedResponse("Response")),
                Some(Err(error)) => return Err(error.into()),
                None => {
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection",
                    )))
                }
            }
        }
    }
}

impl fmt::Debug for NetClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetClient")
            .field("daemon", &self.daemon)
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}
