//! The daemon's TOML-subset configuration: parser, schema and validation.
//!
//! `ldsd` reads one config file per daemon. The full grammar is a strict
//! subset of TOML — enough to express the deployment without pulling a
//! dependency into the build:
//!
//! * `[section]` headers: `daemon`, `cluster`, `heal`, `membership`;
//! * `key = value` pairs with `"quoted strings"`, unsigned integers and
//!   `true`/`false`;
//! * `#` comments (whole-line or trailing) and blank lines.
//!
//! Every parse or validation failure is an [`ConfigError`] whose `Display`
//! is a single readable line (with the line number for syntax errors), so
//! the daemon can print `ldsd: config error: …` and exit without a panic
//! or a half-started process.
//!
//! ```toml
//! [daemon]
//! listen        = "127.0.0.1:7000"   # mesh port (server <-> server)
//! client_listen = "127.0.0.1:7100"   # client RPC port
//! http_listen   = "127.0.0.1:7200"   # GET /metrics + /health
//!
//! [cluster]
//! f1 = 1        # L1 crash tolerance  (n1 = 2*f1 + k)
//! f2 = 1        # L2 crash tolerance  (n2 = 2*f2 + d)
//! k  = 2        # reconstruction threshold
//! d  = 3        # repair degree
//! backend = "mbr"
//!
//! [heal]
//! enabled = true
//! beat_interval_ms = 50
//!
//! [membership]                        # every server pid -> mesh address
//! 0 = "127.0.0.1:7000"
//! # ... one line per pid 0..n1+n2
//! ```

use lds_cluster::transport::TcpTopology;
use lds_cluster::{HealConfig, HostScope};
use lds_core::backend::BackendKind;
use std::collections::BTreeMap;
use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

/// A configuration problem: bad syntax, a bad value, or an inconsistent
/// deployment. `Display` renders one readable line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending input, when the problem is tied to one.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl ConfigError {
    fn at(line: usize, message: impl Into<String>) -> ConfigError {
        ConfigError {
            line: Some(line),
            message: message.into(),
        }
    }

    fn invalid(message: impl Into<String>) -> ConfigError {
        ConfigError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ConfigError {}

/// One parsed scalar value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Scalar {
    Str(String),
    Int(u64),
    Bool(bool),
}

impl Scalar {
    fn type_name(&self) -> &'static str {
        match self {
            Scalar::Str(_) => "string",
            Scalar::Int(_) => "integer",
            Scalar::Bool(_) => "boolean",
        }
    }
}

/// The `[daemon]` section: this process's three listen addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonSection {
    /// Mesh (server ↔ server) listen address; must appear in `[membership]`.
    pub listen: SocketAddr,
    /// Client RPC listen address.
    pub client_listen: SocketAddr,
    /// HTTP listen address (`GET /metrics`, `GET /health`).
    pub http_listen: SocketAddr,
}

/// The `[cluster]` section: protocol and code parameters, shared verbatim
/// by every daemon of a deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSection {
    /// L1 crash-fault tolerance (`n1 = 2·f1 + k`).
    pub f1: usize,
    /// L2 crash-fault tolerance (`n2 = 2·f2 + d`).
    pub f2: usize,
    /// Reconstruction threshold of the regenerating code.
    pub k: usize,
    /// Repair degree of the regenerating code.
    pub d: usize,
    /// Erasure-code backend.
    pub backend: BackendKind,
    /// Pipeline depth of the daemon's server-side store clients.
    pub pipeline_depth: usize,
}

/// The `[heal]` section: the self-healing control plane's knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealSection {
    /// Whether this daemon runs the heartbeat monitor + repair supervisor
    /// for the servers it hosts.
    pub enabled: bool,
    /// [`HealConfig::beat_interval`] in milliseconds.
    pub beat_interval_ms: u64,
    /// [`HealConfig::suspicion_intervals`].
    pub suspicion_intervals: u32,
    /// [`HealConfig::backoff_base`] in milliseconds.
    pub backoff_base_ms: u64,
    /// [`HealConfig::backoff_max`] in milliseconds.
    pub backoff_max_ms: u64,
    /// [`HealConfig::max_concurrent_repairs`].
    pub max_concurrent_repairs: usize,
    /// [`HealConfig::jitter_seed`].
    pub jitter_seed: u64,
}

impl Default for HealSection {
    fn default() -> Self {
        let defaults = HealConfig::default();
        HealSection {
            enabled: false,
            beat_interval_ms: defaults.beat_interval.as_millis() as u64,
            suspicion_intervals: defaults.suspicion_intervals,
            backoff_base_ms: defaults.backoff_base.as_millis() as u64,
            backoff_max_ms: defaults.backoff_max.as_millis() as u64,
            max_concurrent_repairs: defaults.max_concurrent_repairs,
            jitter_seed: defaults.jitter_seed,
        }
    }
}

impl HealSection {
    /// The [`HealConfig`] these knobs describe (ignores `enabled`).
    pub fn to_heal_config(&self) -> HealConfig {
        HealConfig {
            beat_interval: Duration::from_millis(self.beat_interval_ms),
            suspicion_intervals: self.suspicion_intervals,
            backoff_base: Duration::from_millis(self.backoff_base_ms),
            backoff_max: Duration::from_millis(self.backoff_max_ms),
            max_concurrent_repairs: self.max_concurrent_repairs,
            jitter_seed: self.jitter_seed,
        }
    }
}

/// A fully parsed and validated daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// This daemon's listen addresses.
    pub daemon: DaemonSection,
    /// Deployment-wide protocol parameters.
    pub cluster: ClusterSection,
    /// Self-healing knobs (defaults with `enabled = false` when the section
    /// is absent).
    pub heal: HealSection,
    /// Mesh address of every server pid `0..n1+n2`.
    pub membership: Vec<SocketAddr>,
    /// This daemon's index in the deduplicated, first-appearance-ordered
    /// list of membership addresses.
    pub daemon_index: usize,
    /// Every daemon's mesh address, ordered by first appearance in
    /// `[membership]`.
    pub daemon_addrs: Vec<SocketAddr>,
}

impl Config {
    /// Number of L1 servers (`2·f1 + k`).
    pub fn n1(&self) -> usize {
        2 * self.cluster.f1 + self.cluster.k
    }

    /// Number of L2 servers (`2·f2 + d`).
    pub fn n2(&self) -> usize {
        2 * self.cluster.f2 + self.cluster.d
    }

    /// The daemon owning server `pid` (an index into
    /// [`Config::daemon_addrs`]).
    pub fn owner_of_server(&self, pid: usize) -> usize {
        let addr = self.membership[pid];
        self.daemon_addrs
            .iter()
            .position(|&a| a == addr)
            .expect("membership addresses are all in daemon_addrs")
    }

    /// The [`TcpTopology`] this config describes, from this daemon's seat.
    pub fn topology(&self) -> TcpTopology {
        let server_owner = (0..self.membership.len())
            .map(|pid| self.owner_of_server(pid))
            .collect();
        TcpTopology {
            n1: self.n1(),
            n2: self.n2(),
            index: self.daemon_index,
            peers: self.daemon_addrs.clone(),
            server_owner,
        }
    }

    /// The slice of the deployment this daemon hosts.
    pub fn host_scope(&self) -> HostScope {
        let topo = self.topology();
        let n1 = self.n1();
        let l1 = (0..n1)
            .filter(|&j| self.owner_of_server(j) == self.daemon_index)
            .collect();
        let l2 = (0..self.n2())
            .filter(|&i| self.owner_of_server(n1 + i) == self.daemon_index)
            .collect();
        HostScope {
            l1,
            l2,
            client_base: topo.client_base(),
            client_step: topo.client_step(),
        }
    }

    /// Parses and validates one config file's contents.
    pub fn parse(input: &str) -> Result<Config, ConfigError> {
        let raw = RawConfig::parse(input)?;
        raw.validate()
    }
}

/// Sections and key/value pairs as they appear in the file, before
/// cross-field validation.
#[derive(Debug, Default)]
struct RawConfig {
    /// `(section, key) -> (line, value)`, insertion checked for duplicates.
    entries: BTreeMap<(String, String), (usize, Scalar)>,
    /// Sections seen, for required/unknown-section checks.
    sections: Vec<String>,
}

impl RawConfig {
    fn parse(input: &str) -> Result<RawConfig, ConfigError> {
        let mut raw = RawConfig::default();
        let mut section: Option<String> = None;
        for (number, full_line) in input.lines().enumerate() {
            let number = number + 1;
            let line = strip_comment(full_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ConfigError::at(number, "unterminated section header"));
                };
                let name = name.trim();
                if !matches!(name, "daemon" | "cluster" | "heal" | "membership") {
                    return Err(ConfigError::at(number, format!("unknown section [{name}]")));
                }
                if raw.sections.iter().any(|s| s == name) {
                    return Err(ConfigError::at(
                        number,
                        format!("duplicate section [{name}]"),
                    ));
                }
                raw.sections.push(name.to_string());
                section = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError::at(
                    number,
                    format!("expected `key = value`, got `{line}`"),
                ));
            };
            let key = key.trim();
            if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(ConfigError::at(number, format!("invalid key `{key}`")));
            }
            let Some(section) = section.clone() else {
                return Err(ConfigError::at(
                    number,
                    format!("key `{key}` before any [section]"),
                ));
            };
            let value = parse_scalar(value.trim(), number)?;
            if raw
                .entries
                .insert((section.clone(), key.to_string()), (number, value))
                .is_some()
            {
                return Err(ConfigError::at(
                    number,
                    format!("duplicate key `{key}` in [{section}]"),
                ));
            }
        }
        Ok(raw)
    }

    /// One typed value, or an error naming the expectation.
    fn take(&mut self, section: &str, key: &str) -> Option<(usize, Scalar)> {
        self.entries.remove(&(section.to_string(), key.to_string()))
    }

    fn required_str(&mut self, section: &str, key: &str) -> Result<(usize, String), ConfigError> {
        match self.take(section, key) {
            Some((line, Scalar::Str(s))) => Ok((line, s)),
            Some((line, other)) => Err(ConfigError::at(
                line,
                format!(
                    "[{section}] {key} must be a string, got {}",
                    other.type_name()
                ),
            )),
            None => Err(ConfigError::invalid(format!("missing [{section}] {key}"))),
        }
    }

    fn required_int(&mut self, section: &str, key: &str) -> Result<u64, ConfigError> {
        match self.take(section, key) {
            Some((_, Scalar::Int(v))) => Ok(v),
            Some((line, other)) => Err(ConfigError::at(
                line,
                format!(
                    "[{section}] {key} must be an integer, got {}",
                    other.type_name()
                ),
            )),
            None => Err(ConfigError::invalid(format!("missing [{section}] {key}"))),
        }
    }

    fn optional_int(&mut self, section: &str, key: &str, default: u64) -> Result<u64, ConfigError> {
        match self.take(section, key) {
            Some((_, Scalar::Int(v))) => Ok(v),
            Some((line, other)) => Err(ConfigError::at(
                line,
                format!(
                    "[{section}] {key} must be an integer, got {}",
                    other.type_name()
                ),
            )),
            None => Ok(default),
        }
    }

    fn optional_bool(
        &mut self,
        section: &str,
        key: &str,
        default: bool,
    ) -> Result<bool, ConfigError> {
        match self.take(section, key) {
            Some((_, Scalar::Bool(v))) => Ok(v),
            Some((line, other)) => Err(ConfigError::at(
                line,
                format!(
                    "[{section}] {key} must be a boolean, got {}",
                    other.type_name()
                ),
            )),
            None => Ok(default),
        }
    }

    fn optional_str(
        &mut self,
        section: &str,
        key: &str,
        default: &str,
    ) -> Result<(usize, String), ConfigError> {
        match self.take(section, key) {
            Some((line, Scalar::Str(s))) => Ok((line, s)),
            Some((line, other)) => Err(ConfigError::at(
                line,
                format!(
                    "[{section}] {key} must be a string, got {}",
                    other.type_name()
                ),
            )),
            None => Ok((0, default.to_string())),
        }
    }

    fn validate(mut self) -> Result<Config, ConfigError> {
        for required in ["daemon", "cluster", "membership"] {
            if !self.sections.iter().any(|s| s == required) {
                return Err(ConfigError::invalid(format!(
                    "missing section [{required}]"
                )));
            }
        }

        let daemon = DaemonSection {
            listen: parse_addr(self.required_str("daemon", "listen")?)?,
            client_listen: parse_addr(self.required_str("daemon", "client_listen")?)?,
            http_listen: parse_addr(self.required_str("daemon", "http_listen")?)?,
        };

        let (backend_line, backend_name) = self.optional_str("cluster", "backend", "mbr")?;
        let backend = match backend_name.as_str() {
            "mbr" => BackendKind::Mbr,
            "msr" => BackendKind::ProductMatrixMsr,
            "msr-point" => BackendKind::MsrPoint,
            "replication" => BackendKind::Replication,
            other => {
                return Err(ConfigError::at(
                    backend_line.max(1),
                    format!(
                        "unknown backend `{other}` (expected mbr, msr, msr-point or replication)"
                    ),
                ))
            }
        };
        let cluster = ClusterSection {
            f1: self.required_int("cluster", "f1")? as usize,
            f2: self.required_int("cluster", "f2")? as usize,
            k: self.required_int("cluster", "k")? as usize,
            d: self.required_int("cluster", "d")? as usize,
            backend,
            pipeline_depth: self.optional_int("cluster", "pipeline_depth", 16)? as usize,
        };
        if cluster.k == 0 {
            return Err(ConfigError::invalid("[cluster] k must be at least 1"));
        }
        if cluster.d < cluster.k {
            return Err(ConfigError::invalid(format!(
                "[cluster] needs k <= d (got k={}, d={})",
                cluster.k, cluster.d
            )));
        }
        if cluster.pipeline_depth == 0 {
            return Err(ConfigError::invalid(
                "[cluster] pipeline_depth must be at least 1",
            ));
        }

        let defaults = HealSection::default();
        let heal = HealSection {
            enabled: self.optional_bool("heal", "enabled", defaults.enabled)?,
            beat_interval_ms: self.optional_int(
                "heal",
                "beat_interval_ms",
                defaults.beat_interval_ms,
            )?,
            suspicion_intervals: self.optional_int(
                "heal",
                "suspicion_intervals",
                u64::from(defaults.suspicion_intervals),
            )? as u32,
            backoff_base_ms: self.optional_int(
                "heal",
                "backoff_base_ms",
                defaults.backoff_base_ms,
            )?,
            backoff_max_ms: self.optional_int("heal", "backoff_max_ms", defaults.backoff_max_ms)?,
            max_concurrent_repairs: self.optional_int(
                "heal",
                "max_concurrent_repairs",
                defaults.max_concurrent_repairs as u64,
            )? as usize,
            jitter_seed: self.optional_int("heal", "jitter_seed", defaults.jitter_seed)?,
        };
        if heal.enabled {
            if heal.beat_interval_ms == 0 {
                return Err(ConfigError::invalid(
                    "[heal] beat_interval_ms must be non-zero",
                ));
            }
            if heal.suspicion_intervals == 0 {
                return Err(ConfigError::invalid(
                    "[heal] suspicion_intervals must be at least 1",
                ));
            }
            if heal.backoff_base_ms == 0 {
                return Err(ConfigError::invalid(
                    "[heal] backoff_base_ms must be non-zero",
                ));
            }
            if heal.backoff_max_ms < heal.backoff_base_ms {
                return Err(ConfigError::invalid(
                    "[heal] backoff_max_ms must be at least backoff_base_ms",
                ));
            }
            if heal.max_concurrent_repairs == 0 {
                return Err(ConfigError::invalid(
                    "[heal] max_concurrent_repairs must be at least 1",
                ));
            }
        }

        let n1 = 2 * cluster.f1 + cluster.k;
        let n2 = 2 * cluster.f2 + cluster.d;
        let servers = n1 + n2;
        let mut membership = vec![None; servers];
        let member_keys: Vec<(String, String)> = self
            .entries
            .keys()
            .filter(|(section, _)| section == "membership")
            .cloned()
            .collect();
        for (section, key) in member_keys {
            let (line, value) = self.entries.remove(&(section, key.clone())).unwrap();
            let Ok(pid) = key.parse::<usize>() else {
                return Err(ConfigError::at(
                    line,
                    format!("[membership] keys must be server pids, got `{key}`"),
                ));
            };
            if pid >= servers {
                return Err(ConfigError::at(
                    line,
                    format!("[membership] pid {pid} out of range (servers are 0..{servers})"),
                ));
            }
            let Scalar::Str(addr) = value else {
                return Err(ConfigError::at(
                    line,
                    format!("[membership] {pid} must be a string address"),
                ));
            };
            membership[pid] = Some(parse_addr((line, addr))?);
        }
        let membership: Vec<SocketAddr> = membership
            .into_iter()
            .enumerate()
            .map(|(pid, addr)| {
                addr.ok_or_else(|| {
                    ConfigError::invalid(format!(
                        "[membership] missing pid {pid} (every server pid 0..{servers} needs an address)"
                    ))
                })
            })
            .collect::<Result<_, _>>()?;

        // Reject anything left over: unknown keys are config bugs, not noise.
        if let Some(((section, key), (line, _))) = self.entries.iter().next() {
            return Err(ConfigError::at(
                *line,
                format!("unknown key `{key}` in [{section}]"),
            ));
        }

        // Daemon list: membership addresses in first-appearance order.
        let mut daemon_addrs: Vec<SocketAddr> = Vec::new();
        for &addr in &membership {
            if !daemon_addrs.contains(&addr) {
                daemon_addrs.push(addr);
            }
        }
        let Some(daemon_index) = daemon_addrs.iter().position(|&a| a == daemon.listen) else {
            return Err(ConfigError::invalid(format!(
                "[daemon] listen {} does not appear in [membership]; this daemon would host nothing",
                daemon.listen
            )));
        };

        let mut listens = [daemon.listen, daemon.client_listen, daemon.http_listen];
        listens.sort();
        if listens.windows(2).any(|w| w[0] == w[1]) {
            return Err(ConfigError::invalid(
                "[daemon] listen, client_listen and http_listen must be three distinct addresses",
            ));
        }

        Ok(Config {
            daemon,
            cluster,
            heal,
            membership,
            daemon_index,
            daemon_addrs,
        })
    }
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one scalar: quoted string, unsigned integer or boolean.
fn parse_scalar(text: &str, line: usize) -> Result<Scalar, ConfigError> {
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(ConfigError::at(line, "unterminated string"));
        };
        if inner.contains('"') {
            return Err(ConfigError::at(line, "embedded quotes are not supported"));
        }
        return Ok(Scalar::Str(inner.to_string()));
    }
    match text {
        "true" => return Ok(Scalar::Bool(true)),
        "false" => return Ok(Scalar::Bool(false)),
        "" => return Err(ConfigError::at(line, "missing value")),
        _ => {}
    }
    let digits: String = text.chars().filter(|&c| c != '_').collect();
    match digits.parse::<u64>() {
        Ok(v) => Ok(Scalar::Int(v)),
        Err(_) => Err(ConfigError::at(
            line,
            format!("expected a string, integer or boolean, got `{text}`"),
        )),
    }
}

/// Parses a socket address out of a `(line, text)` pair.
fn parse_addr((line, text): (usize, String)) -> Result<SocketAddr, ConfigError> {
    text.parse::<SocketAddr>().map_err(|_| {
        let error = format!("`{text}` is not a socket address (expected ip:port)");
        if line == 0 {
            ConfigError::invalid(error)
        } else {
            ConfigError::at(line, error)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A complete, valid 2-daemon config from daemon 0's seat.
    fn sample() -> String {
        let mut text = String::from(
            "# deployment: 2 daemons\n\
             [daemon]\n\
             listen = \"127.0.0.1:7000\"   # mesh\n\
             client_listen = \"127.0.0.1:7100\"\n\
             http_listen = \"127.0.0.1:7200\"\n\
             \n\
             [cluster]\n\
             f1 = 1\n\
             f2 = 1\n\
             k = 2\n\
             d = 3\n\
             backend = \"mbr\"\n\
             \n\
             [heal]\n\
             enabled = true\n\
             beat_interval_ms = 25\n\
             \n\
             [membership]\n",
        );
        // 4 L1 + 5 L2 servers, striped over two daemons.
        for pid in 0..9 {
            let port = 7000 + (pid % 2);
            text.push_str(&format!("{pid} = \"127.0.0.1:{port}\"\n"));
        }
        text
    }

    #[test]
    fn sample_parses_and_resolves() {
        let config = Config::parse(&sample()).unwrap();
        assert_eq!(config.n1(), 4);
        assert_eq!(config.n2(), 5);
        assert_eq!(config.daemon_index, 0);
        assert_eq!(config.daemon_addrs.len(), 2);
        assert!(config.heal.enabled);
        assert_eq!(config.heal.beat_interval_ms, 25);
        // Defaults survive a partial [heal] section.
        assert_eq!(
            config.heal.suspicion_intervals,
            HealConfig::default().suspicion_intervals
        );
        let topo = config.topology();
        assert_eq!(topo.server_owner, vec![0, 1, 0, 1, 0, 1, 0, 1, 0]);
        let scope = config.host_scope();
        assert_eq!(scope.l1, vec![0, 2]);
        assert_eq!(scope.l2, vec![0, 2, 4]);
        assert_eq!(scope.client_base, 1);
        assert_eq!(scope.client_step, 2);
    }

    #[test]
    fn errors_are_single_readable_lines() {
        let cases: Vec<(String, &str)> = vec![
            ("[daemon".into(), "unterminated section"),
            ("[mystery]\n".into(), "unknown section"),
            ("stray = 1\n".into(), "before any [section]"),
            ("[daemon]\nnot a pair\n".into(), "expected `key = value`"),
            (
                "[daemon]\nlisten = \"unclosed\n".into(),
                "unterminated string",
            ),
            ("[daemon]\nlisten = maybe\n".into(), "expected a string"),
            (sample().replace("d = 3", "d = 1"), "k <= d"),
            (
                sample().replace(
                    "listen = \"127.0.0.1:7000\"   # mesh",
                    "listen = \"127.0.0.1:9\"",
                ),
                "does not appear in [membership]",
            ),
            (
                sample().replace("8 = \"127.0.0.1:7000\"\n", ""),
                "missing pid 8",
            ),
            (
                sample().replace(
                    "[heal]\nenabled = true",
                    "[heal]\nenabled = true\nbeat_interval_ms = 0",
                ),
                "beat_interval_ms",
            ),
            (sample() + "9 = \"127.0.0.1:7001\"\n", "out of range"),
            (sample() + "\n[cluster]\n", "duplicate section"),
            (
                sample().replace("backend = \"mbr\"", "backend = \"mbr\"\nbogus_knob = 3"),
                "unknown key",
            ),
            (sample().replace("f1 = 1\n", ""), "missing [cluster] f1"),
        ];
        for (input, needle) in cases {
            let error = Config::parse(&input).expect_err(needle);
            let rendered = error.to_string();
            assert!(
                rendered.contains(needle),
                "expected `{needle}` in `{rendered}`"
            );
            assert!(!rendered.contains('\n'), "one line, got `{rendered}`");
        }
    }

    #[test]
    fn second_daemon_resolves_its_own_seat() {
        let text = sample()
            .replace(
                "listen = \"127.0.0.1:7000\"   # mesh",
                "listen = \"127.0.0.1:7001\"",
            )
            .replace(
                "client_listen = \"127.0.0.1:7100\"",
                "client_listen = \"127.0.0.1:7101\"",
            )
            .replace(
                "http_listen = \"127.0.0.1:7200\"",
                "http_listen = \"127.0.0.1:7201\"",
            );
        let config = Config::parse(&text).unwrap();
        assert_eq!(config.daemon_index, 1);
        let scope = config.host_scope();
        assert_eq!(scope.l1, vec![1, 3]);
        assert_eq!(scope.l2, vec![1, 3]);
        assert_eq!(scope.client_base, 2);
    }

    #[test]
    fn heal_section_maps_to_heal_config() {
        let text = sample().replace(
            "[heal]\nenabled = true\nbeat_interval_ms = 25",
            "[heal]\nenabled = true\nbeat_interval_ms = 10\nsuspicion_intervals = 7\n\
             backoff_base_ms = 40\nbackoff_max_ms = 900\nmax_concurrent_repairs = 3\n\
             jitter_seed = 99",
        );
        let config = Config::parse(&text).unwrap();
        let heal = config.heal.to_heal_config();
        assert_eq!(heal.beat_interval, Duration::from_millis(10));
        assert_eq!(heal.suspicion_intervals, 7);
        assert_eq!(heal.backoff_base, Duration::from_millis(40));
        assert_eq!(heal.backoff_max, Duration::from_millis(900));
        assert_eq!(heal.max_concurrent_repairs, 3);
        assert_eq!(heal.jitter_seed, 99);
    }
}
