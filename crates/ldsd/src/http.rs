//! The daemon's embedded HTTP/1.1 responder: `GET /metrics` and
//! `GET /health`.
//!
//! One acceptor thread, one short-lived connection per request
//! (`Connection: close`), no keep-alive, no dependency. `/metrics` renders
//! [`MetricsSnapshot::to_prometheus`](lds_cluster::MetricsSnapshot::to_prometheus)
//! on demand, so a scrape always sees current counters.

use lds_cluster::{Admin, StoreHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The running HTTP responder; dropped via [`HttpServer::stop`].
pub(crate) struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` and starts the acceptor thread.
    pub(crate) fn start(addr: SocketAddr, store: Arc<StoreHandle>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = std::thread::Builder::new()
            .name("ldsd-http".into())
            .spawn({
                let stop = Arc::clone(&stop);
                move || run_acceptor(listener, store, stop)
            })?;
        Ok(HttpServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address actually bound (resolves `:0`).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and joins it.
    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run_acceptor(listener: TcpListener, store: Arc<StoreHandle>, stop: Arc<AtomicBool>) {
    let admin = store.admin();
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // Requests are tiny and responses are one write: serving inline on
        // the acceptor keeps the daemon's thread count flat. A stuck client
        // cannot wedge it thanks to the read timeout.
        let _ = serve_one(stream, &admin);
    }
}

/// Reads one request head and writes one response.
fn serve_one(stream: TcpStream, admin: &Admin) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line; their content is irrelevant.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4",
            admin.metrics().to_prometheus(),
        ),
        ("GET", "/health") => ("200 OK", "text/plain", "ok\n".to_string()),
        ("GET", _) => ("404 Not Found", "text/plain", "not found\n".to_string()),
        _ => (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served\n".to_string(),
        ),
    };
    let mut stream = reader.into_inner();
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
