//! Multi-process smoke test: a 3-daemon localhost cluster built from TOML
//! configs, driven by network clients in this (separate) process.
//!
//! Covers the deployment path end to end: config parsing at daemon startup,
//! the TCP mesh between daemons, blocking and pipelined Store traffic over
//! the client RPC port, admin kill + online repair whose helper traffic
//! genuinely crosses the wire, a `/metrics` scrape from every daemon with a
//! Prometheus exposition-format check, and a clean shutdown-RPC teardown
//! with a bounded kill fallback.

use ldsd::NetClient;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// `lds_core::tag::ObjectId` re-exported through the cluster facade.
use lds_cluster::ObjectId;

const DAEMONS: usize = 3;
/// f1 = 1, f2 = 1, k = 2, d = 3 → n1 = 4, n2 = 5.
const N1: usize = 4;
const N2: usize = 5;

/// Kills the child daemons even when an assertion unwinds.
struct ChildGuard(Vec<Child>);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Reserves `count` distinct loopback ports by binding (then dropping)
/// ephemeral listeners.
fn free_ports(count: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..count)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// The config file of daemon `index`, covering the full membership.
fn config_text(index: usize, mesh: &[u16], rpc: &[u16], http: &[u16]) -> String {
    let mut text = format!(
        "[daemon]\n\
         listen = \"127.0.0.1:{}\"\n\
         client_listen = \"127.0.0.1:{}\"\n\
         http_listen = \"127.0.0.1:{}\"\n\
         \n\
         [cluster]\n\
         f1 = 1\n\
         f2 = 1\n\
         k = 2\n\
         d = 3\n\
         backend = \"mbr\"\n\
         pipeline_depth = 16\n\
         \n\
         # Auto-heal off: this test drives kill/repair explicitly.\n\
         [heal]\n\
         enabled = false\n\
         \n\
         [membership]\n",
        mesh[index], rpc[index], http[index]
    );
    for pid in 0..N1 + N2 {
        text.push_str(&format!("{pid} = \"127.0.0.1:{}\"\n", mesh[pid % DAEMONS]));
    }
    text
}

/// One bounded-deadline HTTP GET against a daemon's metrics port.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: lds\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read http response");
    response
}

/// Asserts `body` is valid Prometheus text exposition format.
fn assert_prometheus_exposition(body: &str) {
    let mut samples = 0;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "comment lines must be HELP or TYPE: {line:?}"
            );
            continue;
        }
        // `metric_name{labels} value` or `metric_name value`.
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .expect("sample lines are `name value`");
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "metric names start with a letter: {line:?}"
        );
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in {line:?}"
        );
        assert!(
            value_part.trim().parse::<f64>().is_ok(),
            "sample value must be a number: {line:?}"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition should contain at least one sample");
    assert!(
        body.contains("# TYPE"),
        "exposition should carry TYPE metadata"
    );
}

#[test]
fn three_daemon_cluster_over_tcp() {
    let ports = free_ports(3 * DAEMONS);
    let (mesh, rest) = ports.split_at(DAEMONS);
    let (rpc, http) = rest.split_at(DAEMONS);

    let dir: PathBuf = std::env::temp_dir().join(format!("ldsd-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut children = ChildGuard(Vec::new());
    for index in 0..DAEMONS {
        let path = dir.join(format!("daemon{index}.toml"));
        std::fs::write(&path, config_text(index, mesh, rpc, http)).unwrap();
        let child = Command::new(env!("CARGO_BIN_EXE_ldsd"))
            .arg("--config")
            .arg(&path)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .stdin(Stdio::null())
            .spawn()
            .expect("spawn ldsd");
        children.0.push(child);
    }

    let rpc_addr = |index: usize| SocketAddr::from(([127, 0, 0, 1], rpc[index]));
    let connect = |index: usize| {
        NetClient::connect_retry(rpc_addr(index), Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("connect to daemon {index}: {e}"))
    };
    let mut via_d0 = connect(0);
    let mut via_d1 = connect(1);
    assert_eq!(via_d0.daemon_index(), 0);
    assert_eq!(via_d1.daemon_index(), 1);

    // Blocking writes through daemon 0, read back through daemon 1: the
    // value must cross the mesh, and per-writer tags must stay monotone.
    let tag_a = via_d0.write(ObjectId(7), b"over the wire").unwrap();
    assert_eq!(via_d1.read(ObjectId(7)).unwrap(), b"over the wire");
    let tag_b = via_d0.write(ObjectId(7), b"second version").unwrap();
    assert!(
        tag_b > tag_a,
        "tags must grow per writer: {tag_a} then {tag_b}"
    );
    assert_eq!(via_d1.read(ObjectId(7)).unwrap(), b"second version");

    // Pipelined: a burst of writes through daemon 0, harvested out of
    // submission order, then read back through daemon 1.
    let writes: Vec<(u64, u64)> = (0..8u64)
        .map(|obj| {
            let id = via_d0
                .submit_write(ObjectId(100 + obj), format!("value-{obj}").as_bytes())
                .unwrap();
            (obj, id)
        })
        .collect();
    for &(_, id) in writes.iter().rev() {
        via_d0.wait_written(id).unwrap();
    }
    let reads: Vec<(u64, u64)> = (0..8u64)
        .map(|obj| (obj, via_d1.submit_read(ObjectId(100 + obj)).unwrap()))
        .collect();
    for &(obj, id) in &reads {
        assert_eq!(
            via_d1.wait_value(id).unwrap(),
            format!("value-{obj}").as_bytes()
        );
    }

    // Kill an L2 server hosted by daemon 2 (pid N1 + 1 = 5, 5 % 3 == 2),
    // then keep serving degraded: f2 = 1 tolerates the crash.
    let mut via_d2 = connect(2);
    let (_, live_l2) = via_d2.liveness().unwrap();
    assert_eq!(live_l2 as usize, N2);
    via_d2.kill(1, 1).unwrap();
    let (_, live_l2) = via_d2.liveness().unwrap();
    assert_eq!(live_l2 as usize, N2 - 1, "daemon 2 should see its L2 down");
    via_d0.write(ObjectId(7), b"degraded write").unwrap();
    assert_eq!(via_d1.read(ObjectId(7)).unwrap(), b"degraded write");

    // Admin requests must be routed to the hosting daemon.
    let misdirected = via_d0.repair(1, 1);
    let rendered = format!("{}", misdirected.expect_err("daemon 0 does not host L2[1]"));
    assert!(
        rendered.contains("daemon 2"),
        "error names the owner: {rendered}"
    );

    // Online repair on the hosting daemon; its helper reads cross the mesh.
    let objects = via_d2.repair(1, 1).unwrap();
    assert!(objects >= 1, "the replacement regenerates stored objects");
    let (_, live_l2) = via_d2.liveness().unwrap();
    assert_eq!(live_l2 as usize, N2);
    assert_eq!(via_d1.read(ObjectId(7)).unwrap(), b"degraded write");

    // Scrape /metrics from every daemon and validate the exposition.
    for index in 0..DAEMONS {
        let response = http_get(SocketAddr::from(([127, 0, 0, 1], http[index])), "/metrics");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("http head/body split");
        assert!(
            head.starts_with("HTTP/1.1 200"),
            "daemon {index} metrics: {head}"
        );
        assert_prometheus_exposition(body);
        assert!(
            body.contains("lds_"),
            "daemon {index} should expose lds_* metrics"
        );
        let health = http_get(SocketAddr::from(([127, 0, 0, 1], http[index])), "/health");
        assert!(
            health.starts_with("HTTP/1.1 200"),
            "daemon {index} health: {health}"
        );
    }

    // Clean teardown via the shutdown RPC, with a bounded kill fallback.
    via_d0.shutdown().unwrap();
    via_d1.shutdown().unwrap();
    via_d2.shutdown().unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    for (index, child) in children.0.iter_mut().enumerate() {
        loop {
            match child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "daemon {index} exit: {status}");
                    break;
                }
                None if Instant::now() >= deadline => {
                    child.kill().expect("kill stuck daemon");
                    panic!("daemon {index} ignored the shutdown RPC for 20s");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
