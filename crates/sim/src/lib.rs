//! # lds-sim
//!
//! A deterministic discrete-event simulation of the asynchronous
//! message-passing system model used by the LDS paper (§II):
//!
//! * processes communicate over **reliable point-to-point channels** — every
//!   message sent to a non-faulty destination is eventually delivered;
//! * processes fail by **crashing** and take no further steps afterwards;
//! * a sender may crash after placing a message in a channel; delivery
//!   depends only on the destination being alive;
//! * message delays are arbitrary (asynchrony) or bounded per link class
//!   (τ0 / τ1 / τ2 in the paper's latency analysis of §V-A).
//!
//! The simulation is seeded and fully deterministic: the same seed, processes
//! and schedule produce the same execution, which makes protocol bugs
//! reproducible.
//!
//! Processes implement the [`Process`] trait and exchange messages of a
//! user-defined type `M` implementing [`DataSize`] (used for the paper's
//! communication-cost accounting, which counts payload bytes and ignores
//! metadata). Processes may emit typed events `E` (e.g. operation
//! completions) that the experiment harness collects.
//!
//! # Example
//!
//! ```rust
//! use lds_sim::{Simulation, SimConfig, Process, Context, ProcessId, DataSize};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl DataSize for Ping {
//!     fn data_size(&self) -> usize { 4 }
//!     fn kind(&self) -> &'static str { "PING" }
//! }
//!
//! /// Bounces a counter back and forth with a peer until it reaches 4.
//! struct Echo { peer: Option<ProcessId> }
//! impl Process<Ping, ()> for Echo {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping, ()>) {
//!         if let Some(peer) = self.peer { ctx.send(peer, Ping(0)); }
//!     }
//!     fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Context<'_, Ping, ()>) {
//!         if msg.0 < 3 { ctx.send(from, Ping(msg.0 + 1)); }
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let a = sim.spawn(Echo { peer: None }, 0);
//! let b = sim.spawn(Echo { peer: Some(a) }, 0);
//! sim.run();
//! assert_eq!(sim.metrics().messages_delivered(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod metrics;
pub mod network;
pub mod process;
pub mod time;
pub mod trace;

pub use latency::{ClassLatency, FixedLatency, LatencyModel, LinkSpec};
pub use metrics::NetworkMetrics;
pub use network::{SimConfig, Simulation};
pub use process::{Context, DataSize, Process, ProcessId};
pub use time::SimTime;
