//! Communication-cost accounting.
//!
//! The paper (§II-d) measures the communication cost of an operation as the
//! worst-case total *data* transmitted in messages sent on its behalf,
//! ignoring metadata, normalised by the size of the value. The simulation
//! counts messages and data bytes, grouped by message kind and by
//! `(from_group, to_group)` link class; experiment harnesses normalise by the
//! value size to produce the paper's unitless costs.

use std::collections::BTreeMap;

/// Counters describing all traffic observed by a simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetworkMetrics {
    messages_sent: u64,
    messages_delivered: u64,
    messages_dropped: u64,
    data_bytes_sent: u64,
    by_kind: BTreeMap<&'static str, KindCounter>,
    by_link: BTreeMap<(u8, u8), KindCounter>,
}

/// Message count and data-byte count for one grouping key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounter {
    /// Number of messages.
    pub messages: u64,
    /// Total data bytes (metadata excluded).
    pub data_bytes: u64,
}

impl NetworkMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(
        &mut self,
        kind: &'static str,
        data_bytes: usize,
        from_group: u8,
        to_group: u8,
    ) {
        self.messages_sent += 1;
        self.data_bytes_sent += data_bytes as u64;
        let e = self.by_kind.entry(kind).or_default();
        e.messages += 1;
        e.data_bytes += data_bytes as u64;
        let l = self.by_link.entry((from_group, to_group)).or_default();
        l.messages += 1;
        l.data_bytes += data_bytes as u64;
    }

    pub(crate) fn record_delivery(&mut self) {
        self.messages_delivered += 1;
    }

    pub(crate) fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Total messages placed into channels.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total messages delivered to live processes.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Messages dropped because the destination had crashed.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Total data bytes placed into channels (metadata excluded).
    pub fn data_bytes_sent(&self) -> u64 {
        self.data_bytes_sent
    }

    /// Per-message-kind counters, ordered by kind name.
    pub fn by_kind(&self) -> &BTreeMap<&'static str, KindCounter> {
        &self.by_kind
    }

    /// Per-link-class counters keyed by `(from_group, to_group)`.
    pub fn by_link(&self) -> &BTreeMap<(u8, u8), KindCounter> {
        &self.by_link
    }

    /// Data bytes sent for one message kind.
    pub fn data_bytes_for_kind(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).map(|c| c.data_bytes).unwrap_or(0)
    }

    /// Data bytes sent on one link class (both directions summed).
    pub fn data_bytes_between_groups(&self, a: u8, b: u8) -> u64 {
        self.by_link.get(&(a, b)).map(|c| c.data_bytes).unwrap_or(0)
            + if a != b {
                self.by_link.get(&(b, a)).map(|c| c.data_bytes).unwrap_or(0)
            } else {
                0
            }
    }

    /// Returns the difference `self - earlier`, used to attribute traffic to
    /// a window of the execution (e.g. a single operation).
    pub fn delta_since(&self, earlier: &NetworkMetrics) -> NetworkMetrics {
        let mut out = self.clone();
        out.messages_sent -= earlier.messages_sent;
        out.messages_delivered -= earlier.messages_delivered;
        out.messages_dropped -= earlier.messages_dropped;
        out.data_bytes_sent -= earlier.data_bytes_sent;
        for (kind, c) in &earlier.by_kind {
            let e = out.by_kind.entry(kind).or_default();
            e.messages -= c.messages;
            e.data_bytes -= c.data_bytes;
        }
        for (link, c) in &earlier.by_link {
            let e = out.by_link.entry(*link).or_default();
            e.messages -= c.messages;
            e.data_bytes -= c.data_bytes;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = NetworkMetrics::new();
        m.record_send("PUT-DATA", 100, 0, 1);
        m.record_send("PUT-DATA", 100, 0, 1);
        m.record_send("QUERY-TAG", 0, 0, 1);
        m.record_send("WRITE-CODE-ELEM", 10, 1, 2);
        m.record_delivery();
        m.record_drop();

        assert_eq!(m.messages_sent(), 4);
        assert_eq!(m.messages_delivered(), 1);
        assert_eq!(m.messages_dropped(), 1);
        assert_eq!(m.data_bytes_sent(), 210);
        assert_eq!(m.data_bytes_for_kind("PUT-DATA"), 200);
        assert_eq!(m.data_bytes_for_kind("QUERY-TAG"), 0);
        assert_eq!(m.data_bytes_for_kind("missing"), 0);
        assert_eq!(m.by_kind().len(), 3);
        assert_eq!(m.data_bytes_between_groups(0, 1), 200);
        assert_eq!(m.data_bytes_between_groups(1, 2), 10);
        assert_eq!(m.data_bytes_between_groups(2, 1), 10);
    }

    #[test]
    fn delta_attribution() {
        let mut m = NetworkMetrics::new();
        m.record_send("A", 5, 0, 0);
        let snapshot = m.clone();
        m.record_send("A", 7, 0, 0);
        m.record_send("B", 3, 0, 1);
        let delta = m.delta_since(&snapshot);
        assert_eq!(delta.messages_sent(), 2);
        assert_eq!(delta.data_bytes_sent(), 10);
        assert_eq!(delta.data_bytes_for_kind("A"), 7);
        assert_eq!(delta.data_bytes_for_kind("B"), 3);
    }
}
