//! Bounded execution trace for debugging protocol runs.
//!
//! Tracing is off by default; when enabled the simulation records one
//! [`TraceRecord`] per delivery / crash, up to a configurable cap so that
//! long experiments do not exhaust memory.

use crate::process::ProcessId;
use crate::time::SimTime;

/// One traced simulation step.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A message was delivered.
    Deliver {
        /// Delivery time.
        time: SimTime,
        /// Sender (or [`ProcessId::EXTERNAL`]).
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Message kind label.
        kind: &'static str,
        /// Data bytes in the message.
        data_bytes: usize,
    },
    /// A message was dropped because the destination had crashed.
    Drop {
        /// Time at which delivery would have happened.
        time: SimTime,
        /// Intended receiver.
        to: ProcessId,
        /// Message kind label.
        kind: &'static str,
    },
    /// A process crashed.
    Crash {
        /// Crash time.
        time: SimTime,
        /// The crashed process.
        process: ProcessId,
    },
}

/// A bounded in-memory trace.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    records: Vec<TraceRecord>,
    truncated: bool,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            cap: 0,
            records: Vec::new(),
            truncated: false,
        }
    }

    /// Creates an enabled trace that keeps at most `cap` records.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            enabled: true,
            cap,
            records: Vec::new(),
            truncated: false,
        }
    }

    /// Whether tracing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether records were discarded because the cap was reached.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The recorded steps, oldest first.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    pub(crate) fn push(&mut self, record: TraceRecord) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.cap {
            self.truncated = true;
            return;
        }
        self.records.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceRecord::Crash {
            time: SimTime::ZERO,
            process: ProcessId(0),
        });
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
        assert!(!t.is_truncated());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.push(TraceRecord::Crash {
                time: SimTime::new(i as f64),
                process: ProcessId(i),
            });
        }
        assert_eq!(t.records().len(), 2);
        assert!(t.is_truncated());
        assert!(t.is_enabled());
    }
}
