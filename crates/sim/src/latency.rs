//! Link-latency models.
//!
//! The paper's system model is asynchronous (arbitrary finite delays); its
//! latency analysis (§V-A) additionally assumes per-link-class upper bounds:
//! τ1 for client↔L1 links, τ0 for L1↔L1 links and τ2 for L1↔L2 links, with
//! τ2 typically much larger. Processes are assigned small integer *groups*
//! when spawned (e.g. clients, L1 servers, L2 servers) and the latency model
//! maps a `(from_group, to_group)` pair to a delay distribution.

use rand::Rng;

/// A delay distribution for one link class: uniform in `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Minimum delay.
    pub min: f64,
    /// Maximum delay (inclusive upper bound used by the bounded-latency
    /// analysis).
    pub max: f64,
}

impl LinkSpec {
    /// A fixed (deterministic) delay.
    pub fn fixed(delay: f64) -> Self {
        LinkSpec {
            min: delay,
            max: delay,
        }
    }

    /// A uniformly distributed delay in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= min <= max` and both are finite.
    pub fn uniform(min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min >= 0.0 && min <= max,
            "invalid latency range [{min}, {max}]"
        );
        LinkSpec { min, max }
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        if self.max > self.min {
            rng.gen_range(self.min..=self.max)
        } else {
            self.min
        }
    }
}

/// Maps a pair of process groups to a message delay.
pub trait LatencyModel: Send {
    /// Returns the delay for a message sent from a process in `from_group`
    /// to a process in `to_group`.
    fn delay(&self, from_group: u8, to_group: u8, rng: &mut dyn rand::RngCore) -> f64;

    /// The worst-case delay between the two groups (used by bounded-latency
    /// analyses and by experiment harnesses to size timeouts).
    fn upper_bound(&self, from_group: u8, to_group: u8) -> f64;
}

/// The same delay on every link.
#[derive(Debug, Clone, Copy)]
pub struct FixedLatency(pub f64);

impl LatencyModel for FixedLatency {
    fn delay(&self, _from: u8, _to: u8, _rng: &mut dyn rand::RngCore) -> f64 {
        self.0
    }
    fn upper_bound(&self, _from: u8, _to: u8) -> f64 {
        self.0
    }
}

/// Per-group-pair latency table with a default.
///
/// Lookups are symmetric-agnostic: the entry for `(a, b)` is used for
/// messages from group `a` to group `b`; if absent, the entry for `(b, a)`
/// is tried; if that is absent too, the default applies.
#[derive(Debug, Clone)]
pub struct ClassLatency {
    default: LinkSpec,
    table: Vec<((u8, u8), LinkSpec)>,
}

impl ClassLatency {
    /// Creates a model where every unspecified link uses `default`.
    pub fn new(default: LinkSpec) -> Self {
        ClassLatency {
            default,
            table: Vec::new(),
        }
    }

    /// Sets the delay distribution for messages between `a` and `b` (both
    /// directions).
    pub fn with_link(mut self, a: u8, b: u8, spec: LinkSpec) -> Self {
        self.table
            .retain(|((x, y), _)| !((*x, *y) == (a, b) || (*x, *y) == (b, a)));
        self.table.push(((a, b), spec));
        self
    }

    fn lookup(&self, from: u8, to: u8) -> LinkSpec {
        self.table
            .iter()
            .find(|((a, b), _)| (*a, *b) == (from, to) || (*a, *b) == (to, from))
            .map(|(_, spec)| *spec)
            .unwrap_or(self.default)
    }
}

impl LatencyModel for ClassLatency {
    fn delay(&self, from_group: u8, to_group: u8, rng: &mut dyn rand::RngCore) -> f64 {
        self.lookup(from_group, to_group).sample(rng)
    }
    fn upper_bound(&self, from_group: u8, to_group: u8) -> f64 {
        self.lookup(from_group, to_group).max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_latency_is_constant() {
        let model = FixedLatency(2.5);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(model.delay(0, 1, &mut rng), 2.5);
        assert_eq!(model.upper_bound(0, 1), 2.5);
    }

    #[test]
    fn class_latency_lookup_and_symmetry() {
        let model = ClassLatency::new(LinkSpec::fixed(1.0))
            .with_link(0, 1, LinkSpec::fixed(5.0))
            .with_link(1, 1, LinkSpec::fixed(0.5));
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(model.delay(0, 1, &mut rng), 5.0);
        assert_eq!(
            model.delay(1, 0, &mut rng),
            5.0,
            "reverse direction uses the same spec"
        );
        assert_eq!(model.delay(1, 1, &mut rng), 0.5);
        assert_eq!(
            model.delay(0, 2, &mut rng),
            1.0,
            "unspecified pair falls back to default"
        );
        assert_eq!(model.upper_bound(1, 0), 5.0);
    }

    #[test]
    fn with_link_overrides_previous_entry() {
        let model = ClassLatency::new(LinkSpec::fixed(1.0))
            .with_link(0, 1, LinkSpec::fixed(5.0))
            .with_link(1, 0, LinkSpec::fixed(9.0));
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(model.delay(0, 1, &mut rng), 9.0);
    }

    #[test]
    fn uniform_sampling_stays_in_range() {
        let spec = LinkSpec::uniform(1.0, 3.0);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let s = spec.sample(&mut rng);
            assert!((1.0..=3.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "invalid latency range")]
    fn invalid_range_rejected() {
        let _ = LinkSpec::uniform(3.0, 1.0);
    }
}
