//! The discrete-event simulation engine.

use crate::latency::{FixedLatency, LatencyModel};
use crate::metrics::NetworkMetrics;
use crate::process::{AnyProcess, Context, DataSize, Process, ProcessId};
use crate::time::SimTime;
use crate::trace::{Trace, TraceRecord};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of a simulation run.
pub struct SimConfig {
    /// Seed for the deterministic pseudo-random number generator (used only
    /// by latency models with jitter).
    pub seed: u64,
    /// The link-latency model.
    pub latency: Box<dyn LatencyModel>,
    /// If `Some(cap)`, record an execution trace of at most `cap` steps.
    pub trace_capacity: Option<usize>,
    /// Safety cap on the number of processed events; exceeding it indicates a
    /// livelock in the protocol under test and causes a panic.
    pub max_steps: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: Box::new(FixedLatency(1.0)),
            trace_capacity: None,
            max_steps: 50_000_000,
        }
    }
}

impl SimConfig {
    /// Creates a default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }

    /// Replaces the latency model.
    pub fn latency(mut self, model: impl LatencyModel + 'static) -> Self {
        self.latency = Box::new(model);
        self
    }

    /// Enables execution tracing with the given capacity.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }
}

enum EventKind<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: M,
    },
    Crash {
        process: ProcessId,
    },
}

struct QueuedEvent<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so the BinaryHeap acts as a min-heap on (time, seq).
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

struct Slot<M, E> {
    process: Box<dyn AnyProcess<M, E>>,
    group: u8,
    alive: bool,
}

/// A deterministic discrete-event simulation of an asynchronous
/// message-passing network with crash faults.
///
/// See the crate-level documentation for the model and an example.
pub struct Simulation<M, E> {
    config_seed: u64,
    latency: Box<dyn LatencyModel>,
    max_steps: u64,
    processes: Vec<Slot<M, E>>,
    queue: BinaryHeap<QueuedEvent<M>>,
    seq: u64,
    now: SimTime,
    started: bool,
    steps: u64,
    rng: SmallRng,
    metrics: NetworkMetrics,
    trace: Trace,
    events: Vec<(SimTime, ProcessId, E)>,
}

impl<M, E> Simulation<M, E>
where
    M: DataSize + 'static,
    E: 'static,
{
    /// Creates an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        let trace = match config.trace_capacity {
            Some(cap) => Trace::with_capacity(cap),
            None => Trace::disabled(),
        };
        Simulation {
            config_seed: config.seed,
            latency: config.latency,
            max_steps: config.max_steps,
            processes: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            started: false,
            steps: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            metrics: NetworkMetrics::new(),
            trace,
            events: Vec::new(),
        }
    }

    /// The seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.config_seed
    }

    /// Adds a process to the simulation and returns its id.
    ///
    /// `group` is an arbitrary small integer used by the latency model and
    /// the metrics to classify links (e.g. 0 = clients, 1 = L1, 2 = L2).
    pub fn spawn(&mut self, process: impl Process<M, E>, group: u8) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(Slot {
            process: Box::new(process),
            group,
            alive: true,
        });
        id
    }

    /// Number of spawned processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Whether the process is still alive (not crashed).
    pub fn is_alive(&self, id: ProcessId) -> bool {
        self.processes
            .get(id.index())
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    /// The group a process was spawned in.
    pub fn group_of(&self, id: ProcessId) -> u8 {
        self.processes[id.index()].group
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }

    /// The execution trace (empty unless enabled in [`SimConfig`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Events emitted by processes so far (in emission order).
    pub fn events(&self) -> &[(SimTime, ProcessId, E)] {
        &self.events
    }

    /// Removes and returns all emitted events.
    pub fn take_events(&mut self) -> Vec<(SimTime, ProcessId, E)> {
        std::mem::take(&mut self.events)
    }

    /// Downcasts a process to its concrete type for state inspection.
    pub fn process_ref<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.processes
            .get(id.index())
            .and_then(|s| s.process.as_any().downcast_ref::<T>())
    }

    /// Mutable variant of [`Simulation::process_ref`].
    pub fn process_mut<T: 'static>(&mut self, id: ProcessId) -> Option<&mut T> {
        self.processes
            .get_mut(id.index())
            .and_then(|s| s.process.as_any_mut().downcast_mut::<T>())
    }

    /// Injects a message from the harness ([`ProcessId::EXTERNAL`]) to `to`,
    /// delivered at exactly `time` (no link delay, no cost accounting) — used
    /// to start client operations.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or `to` does not exist.
    pub fn inject(&mut self, time: f64, _from_hint: ProcessId, to: ProcessId, msg: M) {
        self.inject_at(time, to, msg);
    }

    /// Injects a harness command delivered to `to` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or `to` does not exist.
    pub fn inject_at(&mut self, time: f64, to: ProcessId, msg: M) {
        let time = SimTime::new(time);
        assert!(
            time >= self.now,
            "cannot inject into the past ({time} < {})",
            self.now
        );
        assert!(to.index() < self.processes.len(), "unknown process {to}");
        self.push_event(
            time,
            EventKind::Deliver {
                from: ProcessId::EXTERNAL,
                to,
                msg,
            },
        );
    }

    /// Schedules a crash of `process` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or the process does not exist.
    pub fn schedule_crash(&mut self, time: f64, process: ProcessId) {
        let time = SimTime::new(time);
        assert!(time >= self.now, "cannot schedule a crash in the past");
        assert!(
            process.index() < self.processes.len(),
            "unknown process {process}"
        );
        self.push_event(time, EventKind::Crash { process });
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent { time, seq, kind });
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.processes.len() {
            self.step_process(ProcessId(idx), None);
        }
    }

    /// Runs process `pid`'s `on_start` (if `delivery` is `None`) or
    /// `on_message`, then routes its outgoing messages.
    fn step_process(&mut self, pid: ProcessId, delivery: Option<(ProcessId, M)>) {
        let mut outgoing: Vec<(ProcessId, M)> = Vec::new();
        {
            let slot = &mut self.processes[pid.index()];
            if !slot.alive {
                return;
            }
            let mut ctx = Context {
                self_id: pid,
                now: self.now,
                outgoing: &mut outgoing,
                events: &mut self.events,
            };
            match delivery {
                None => slot.process.on_start(&mut ctx),
                Some((from, msg)) => slot.process.on_message(from, msg, &mut ctx),
            }
        }
        let from_group = self.processes[pid.index()].group;
        for (to, msg) in outgoing {
            if to.is_external() {
                // Replies addressed to the harness pseudo-process are not part
                // of the simulated network.
                continue;
            }
            assert!(
                to.index() < self.processes.len(),
                "send to unknown process {to}"
            );
            let to_group = self.processes[to.index()].group;
            self.metrics
                .record_send(msg.kind(), msg.data_size(), from_group, to_group);
            let delay = self.latency.delay(from_group, to_group, &mut self.rng);
            assert!(
                delay.is_finite() && delay >= 0.0,
                "latency model produced invalid delay"
            );
            let at = self.now + delay;
            self.push_event(at, EventKind::Deliver { from: pid, to, msg });
        }
    }

    fn process_one(&mut self, event: QueuedEvent<M>) {
        self.now = event.time;
        self.steps += 1;
        assert!(
            self.steps <= self.max_steps,
            "simulation exceeded {} steps; the protocol under test is likely livelocked",
            self.max_steps
        );
        match event.kind {
            EventKind::Crash { process } => {
                self.trace.push(TraceRecord::Crash {
                    time: self.now,
                    process,
                });
                if let Some(slot) = self.processes.get_mut(process.index()) {
                    slot.alive = false;
                }
            }
            EventKind::Deliver { from, to, msg } => {
                if !self.processes[to.index()].alive {
                    self.metrics.record_drop();
                    self.trace.push(TraceRecord::Drop {
                        time: self.now,
                        to,
                        kind: msg.kind(),
                    });
                    return;
                }
                self.metrics.record_delivery();
                self.trace.push(TraceRecord::Deliver {
                    time: self.now,
                    from,
                    to,
                    kind: msg.kind(),
                    data_bytes: msg.data_size(),
                });
                self.step_process(to, Some((from, msg)));
            }
        }
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        self.ensure_started();
        while let Some(event) = self.queue.pop() {
            self.process_one(event);
        }
    }

    /// Runs until the queue is empty or the next event is after `time`;
    /// afterwards the simulation clock is at least `time`.
    pub fn run_until(&mut self, time: f64) {
        let limit = SimTime::new(time);
        self.ensure_started();
        while let Some(head) = self.queue.peek() {
            if head.time > limit {
                break;
            }
            let event = self.queue.pop().expect("peeked event exists");
            self.process_one(event);
        }
        if self.now < limit {
            self.now = limit;
        }
    }

    /// Returns true if no undelivered events remain.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }

    impl DataSize for TestMsg {
        fn data_size(&self) -> usize {
            4
        }
        fn kind(&self) -> &'static str {
            match self {
                TestMsg::Ping(_) => "PING",
                TestMsg::Pong(_) => "PONG",
            }
        }
    }

    /// Replies to every Ping with a Pong and emits an event per Pong received.
    struct PingPong {
        peer: Option<ProcessId>,
        rounds: u32,
        pongs_seen: u32,
    }

    impl Process<TestMsg, u32> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg, u32>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, TestMsg::Ping(0));
            }
        }

        fn on_message(
            &mut self,
            from: ProcessId,
            msg: TestMsg,
            ctx: &mut Context<'_, TestMsg, u32>,
        ) {
            match msg {
                TestMsg::Ping(i) => ctx.send(from, TestMsg::Pong(i)),
                TestMsg::Pong(i) => {
                    self.pongs_seen += 1;
                    ctx.emit(i);
                    if i + 1 < self.rounds {
                        ctx.send(from, TestMsg::Ping(i + 1));
                    }
                }
            }
        }
    }

    fn two_node_sim(seed: u64) -> (Simulation<TestMsg, u32>, ProcessId, ProcessId) {
        let mut sim = Simulation::new(SimConfig::with_seed(seed).trace(1000));
        let b = sim.spawn(
            PingPong {
                peer: None,
                rounds: 0,
                pongs_seen: 0,
            },
            1,
        );
        let a = sim.spawn(
            PingPong {
                peer: Some(b),
                rounds: 3,
                pongs_seen: 0,
            },
            0,
        );
        (sim, a, b)
    }

    #[test]
    fn ping_pong_runs_to_quiescence() {
        let (mut sim, a, _b) = two_node_sim(7);
        sim.run();
        assert!(sim.is_quiescent());
        let p: &PingPong = sim.process_ref(a).unwrap();
        assert_eq!(p.pongs_seen, 3);
        assert_eq!(sim.events().len(), 3);
        // 3 pings + 3 pongs.
        assert_eq!(sim.metrics().messages_sent(), 6);
        assert_eq!(sim.metrics().messages_delivered(), 6);
        assert_eq!(sim.metrics().data_bytes_for_kind("PING"), 12);
        assert!(sim.trace().is_enabled());
        assert_eq!(sim.trace().records().len(), 6);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (mut sim, _, _) = two_node_sim(seed);
            sim.run();
            (sim.now(), sim.metrics().messages_sent())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn crash_drops_messages_and_stops_process() {
        let (mut sim, a, b) = two_node_sim(1);
        // Crash the responder before the first ping arrives (latency is 1.0).
        sim.schedule_crash(0.5, b);
        sim.run();
        assert!(!sim.is_alive(b));
        assert!(sim.is_alive(a));
        assert_eq!(sim.metrics().messages_dropped(), 1);
        let p: &PingPong = sim.process_ref(a).unwrap();
        assert_eq!(p.pongs_seen, 0, "no pong can arrive from a crashed process");
    }

    #[test]
    fn run_until_advances_clock_partially() {
        let (mut sim, _a, _b) = two_node_sim(3);
        // With unit latency, the first pong is delivered at t = 2.
        sim.run_until(1.5);
        assert_eq!(sim.events().len(), 0);
        assert!(!sim.is_quiescent());
        assert_eq!(sim.now(), SimTime::new(1.5));
        sim.run_until(2.5);
        assert_eq!(sim.events().len(), 1);
        sim.run();
        assert_eq!(sim.events().len(), 3);
    }

    #[test]
    fn injection_delivers_external_commands() {
        let mut sim: Simulation<TestMsg, u32> = Simulation::new(SimConfig::default());
        let b = sim.spawn(
            PingPong {
                peer: None,
                rounds: 0,
                pongs_seen: 0,
            },
            1,
        );
        sim.inject_at(5.0, b, TestMsg::Ping(9));
        sim.run();
        // The injected command is delivered; the responder's reply is
        // addressed to EXTERNAL and therefore leaves the simulated network.
        assert_eq!(sim.metrics().messages_delivered(), 1);
        assert_eq!(sim.now(), SimTime::new(5.0));
    }

    #[test]
    fn group_classification_in_metrics() {
        let (mut sim, _a, _b) = two_node_sim(5);
        sim.run();
        // Pings go 0 -> 1, pongs 1 -> 0.
        assert_eq!(sim.metrics().by_link().get(&(0, 1)).unwrap().messages, 3);
        assert_eq!(sim.metrics().by_link().get(&(1, 0)).unwrap().messages, 3);
        assert_eq!(sim.metrics().data_bytes_between_groups(0, 1), 24);
    }

    #[test]
    fn take_events_drains() {
        let (mut sim, _a, _b) = two_node_sim(9);
        sim.run();
        let events = sim.take_events();
        assert_eq!(events.len(), 3);
        assert!(sim.events().is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn injecting_into_past_panics() {
        let (mut sim, _a, b) = two_node_sim(2);
        sim.run_until(10.0);
        sim.inject_at(1.0, b, TestMsg::Ping(0));
    }
}
