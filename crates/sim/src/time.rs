//! Simulated time.
//!
//! Time is a non-negative, finite `f64` in abstract "latency units"; the
//! paper's bounded-latency analysis expresses everything in multiples of the
//! link delays τ0, τ1, τ2, so a unitless float is the natural representation.
//! [`SimTime`] wraps the float to provide the total order the event queue
//! needs while rejecting NaN at construction.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero: the start of every execution.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN or negative.
    pub fn new(t: f64) -> Self {
        assert!(
            t.is_finite() && t >= 0.0,
            "SimTime must be finite and non-negative, got {t}"
        );
        SimTime(t)
    }

    /// The underlying float value.
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<f64> for SimTime {
    fn from(t: f64) -> Self {
        SimTime::new(t)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction guarantees the values are never NaN.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.5);
        assert!(a < b);
        assert_eq!(b - a, 1.5);
        assert_eq!(a + 1.5, b);
        let mut c = a;
        c += 1.5;
        assert_eq!(c, b);
        assert_eq!(SimTime::ZERO.as_f64(), 0.0);
    }

    #[test]
    fn conversion_and_display() {
        let t: SimTime = 3.25.into();
        assert_eq!(t.as_f64(), 3.25);
        assert_eq!(format!("{t}"), "3.250");
        assert!(format!("{t:?}").contains("3.250"));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_rejected() {
        let _ = SimTime::new(f64::NAN);
    }
}
