//! Process identities, the [`Process`] trait and the [`Context`] handed to
//! processes when they take a step.

use crate::time::SimTime;
use std::any::Any;
use std::fmt;

/// Identifier of a process in the simulation.
///
/// Ids are assigned densely in spawn order. The special
/// [`ProcessId::EXTERNAL`] id denotes the experiment harness itself, used as
/// the source of injected messages (client operation invocations).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The pseudo-process representing the outside world / harness.
    pub const EXTERNAL: ProcessId = ProcessId(usize::MAX);

    /// Returns the numeric id.
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the external pseudo-process.
    pub fn is_external(self) -> bool {
        self == ProcessId::EXTERNAL
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_external() {
            write!(f, "ext")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Size accounting for messages, mirroring the paper's cost model (§II-d):
/// only object data counts, metadata (tags, counters, ids) is free.
pub trait DataSize {
    /// Number of *data* bytes carried by the message (0 for pure metadata).
    fn data_size(&self) -> usize;
    /// A short, static label used to group metrics by message type
    /// (e.g. `"PUT-DATA"`, `"SEND-HELPER-ELEM"`).
    fn kind(&self) -> &'static str;
}

impl DataSize for () {
    fn data_size(&self) -> usize {
        0
    }
    fn kind(&self) -> &'static str {
        "unit"
    }
}

/// The interface every simulated process implements.
///
/// `M` is the message type, `E` the event type emitted to the harness
/// (operation completions, diagnostics, …).
pub trait Process<M, E>: Any {
    /// Called once when the simulation starts (before any delivery).
    fn on_start(&mut self, ctx: &mut Context<'_, M, E>) {
        let _ = ctx;
    }

    /// Called for every delivered message. `from` is the sending process or
    /// [`ProcessId::EXTERNAL`] for harness-injected commands.
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<'_, M, E>);
}

/// Blanket helper that lets the simulation downcast stored processes back to
/// their concrete type (used by experiment probes to read server state, e.g.
/// storage occupancy).
pub(crate) trait AnyProcess<M, E>: Process<M, E> {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M: 'static, E: 'static, T: Process<M, E> + Any> AnyProcess<M, E> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Execution context passed to a process while it takes a step.
///
/// Sends are buffered and released into the network when the step finishes
/// (an I/O-automaton style atomic action, as assumed by the paper's proofs).
pub struct Context<'a, M, E> {
    pub(crate) self_id: ProcessId,
    pub(crate) now: SimTime,
    pub(crate) outgoing: &'a mut Vec<(ProcessId, M)>,
    pub(crate) events: &'a mut Vec<(SimTime, ProcessId, E)>,
}

impl<'a, M, E> Context<'a, M, E> {
    /// Creates a context that is not attached to a running simulation.
    ///
    /// Outgoing messages and emitted events are appended to the provided
    /// buffers. This is how alternative drivers (unit tests, the thread-based
    /// cluster runtime) step the same process implementations outside the
    /// simulator.
    pub fn standalone(
        self_id: ProcessId,
        now: SimTime,
        outgoing: &'a mut Vec<(ProcessId, M)>,
        events: &'a mut Vec<(SimTime, ProcessId, E)>,
    ) -> Self {
        Context {
            self_id,
            now,
            outgoing,
            events,
        }
    }

    /// The id of the process taking the step.
    pub fn id(&self) -> ProcessId {
        self.self_id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` over the (reliable, asynchronous) channel.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outgoing.push((to, msg));
    }

    /// Sends the same message to every process in `targets`.
    pub fn send_all(&mut self, targets: impl IntoIterator<Item = ProcessId>, msg: M)
    where
        M: Clone,
    {
        for t in targets {
            self.send(t, msg.clone());
        }
    }

    /// Emits an event to the experiment harness.
    pub fn emit(&mut self, event: E) {
        self.events.push((self.now, self.self_id, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display() {
        assert_eq!(format!("{}", ProcessId(3)), "p3");
        assert_eq!(format!("{}", ProcessId::EXTERNAL), "ext");
        assert!(ProcessId::EXTERNAL.is_external());
        assert!(!ProcessId(0).is_external());
        assert_eq!(ProcessId(7).index(), 7);
    }

    #[test]
    fn context_buffers_sends_and_events() {
        let mut outgoing = Vec::new();
        let mut events = Vec::new();
        let mut ctx: Context<'_, u32, &'static str> = Context {
            self_id: ProcessId(1),
            now: SimTime::new(2.0),
            outgoing: &mut outgoing,
            events: &mut events,
        };
        ctx.send(ProcessId(2), 42);
        ctx.send_all([ProcessId(3), ProcessId(4)], 7);
        ctx.emit("done");
        assert_eq!(ctx.id(), ProcessId(1));
        assert_eq!(ctx.now(), SimTime::new(2.0));
        assert_eq!(
            outgoing,
            vec![(ProcessId(2), 42), (ProcessId(3), 7), (ProcessId(4), 7)]
        );
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].2, "done");
    }

    #[test]
    fn unit_message_data_size() {
        assert_eq!(().data_size(), 0);
        assert_eq!(().kind(), "unit");
    }
}
