//! # lds-cluster
//!
//! A thread-based, in-process cluster runtime for the LDS protocol.
//!
//! The protocol automata in `lds-core` are sans-IO state machines; this crate
//! drives the *same* implementations used by the simulator over real OS
//! threads and crossbeam channels, giving a deployment with genuine
//! concurrency and non-deterministic message interleavings:
//!
//! * every L1 and L2 server runs on its own thread with an unbounded inbox;
//! * clients are synchronous handles ([`ClusterClient`]) usable from any
//!   thread: `write()` / `read()` block until the operation completes;
//! * servers can be killed at runtime to exercise crash-fault tolerance.
//!
//! # Example
//!
//! ```rust
//! use lds_cluster::Cluster;
//! use lds_core::{params::SystemParams, BackendKind};
//!
//! let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
//! let cluster = Cluster::start(params, BackendKind::Mbr);
//! let mut alice = cluster.client();
//! let mut bob = cluster.client();
//!
//! alice.write(0, b"hello from a real thread".to_vec()).unwrap();
//! let value = bob.read(0).unwrap();
//! assert_eq!(value, b"hello from a real thread");
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod node;
pub mod router;

pub use client::{ClientError, ClusterClient};
pub use node::Cluster;
