//! # lds-cluster
//!
//! A thread-based, in-process cluster runtime for the LDS protocol, built
//! for throughput.
//!
//! The protocol automata in `lds-core` are sans-IO state machines; this crate
//! drives the *same* implementations used by the simulator over real OS
//! threads and crossbeam channels, giving a deployment with genuine
//! concurrency and non-deterministic message interleavings:
//!
//! * every L1 and L2 server runs as one or more **worker shards** — threads
//!   that own disjoint partitions of the object space (hash-routed), so
//!   independent objects are processed in parallel inside one node
//!   ([`ClusterOptions::l1_shards`] / [`ClusterOptions::l2_shards`]);
//! * message routing uses an **epoch-swapped immutable snapshot** table:
//!   steady-state sends take no lock at all, and each node flushes its
//!   outgoing messages as one batch per protocol step;
//! * clients are handles ([`ClusterClient`]) usable from any thread, with
//!   both blocking and **pipelined** operation;
//! * servers can be killed at runtime to exercise crash-fault tolerance, and
//!   **repaired online** ([`Cluster::repair_l1`] / [`Cluster::repair_l2`]):
//!   a replacement rejoins under the same process id, regenerates its state
//!   from live helpers — at MBR repair bandwidth for L2 coded elements —
//!   catches up in-flight writes, and restores the failure budget, all under
//!   concurrent client traffic (see the [`repair`] module);
//! * with the **self-healing control plane**
//!   ([`api::StoreBuilder::self_heal`]) the deployment detects crashes
//!   itself — a heartbeat monitor turns stale beats into per-server
//!   suspicion feeding [`api::Admin::liveness`] — and repairs itself: a
//!   supervisor drives online repairs under a concurrency budget with
//!   jittered exponential backoff (see the [`heal`] module);
//! * node wake-ups flush all outgoing traffic in one pass, coalescing
//!   same-destination metadata — notably the per-write **COMMIT-TAG
//!   broadcasts** — into one multi-message envelope per peer per flush
//!   ([`router::Envelope::Batch`]);
//! * with [`ClusterOptions::inbox_cap`] the cluster runs with **bounded
//!   inboxes**: a saturated or slow shard pushes back on
//!   [`ClusterClient::try_submit_write`] / [`ClusterClient::try_submit_read`]
//!   (they return [`WouldBlock`]) instead of queueing without limit;
//! * [`ShardedCluster`] scales out *beyond one membership*: the object space
//!   is partitioned by consistent hash ([`cluster_of`]) over N independent
//!   clusters — each with its own L1/L2 group, router and failure budget —
//!   behind a [`ShardedClient`] facade with the same pipelined API.
//!
//! # The public surface: the [`api`] module
//!
//! Applications program against the [`api`] facade — [`StoreBuilder`] to
//! construct (one `clusters(n)` axis picks the topology, named profiles
//! replace options literals, everything validated at `build()`), the
//! [`Store`] trait for the data plane (typed [`ObjectId`] keys, borrowed
//! `&[u8]` values, blocking and pipelined operation), and [`Admin`] for the
//! control plane (crash injection, online repair, liveness, metrics). The
//! engine types below remain public for tuning and inspection, but their
//! old entry points (`Cluster::start*`, `ShardedCluster::start*`,
//! `repair_l1/l2`, `kill_l1/l2`, `l1_is_live/l2_is_live`) are deprecated
//! thin wrappers over the same internals.
//!
//! # Blocking usage
//!
//! ```rust
//! use lds_cluster::api::{ObjectId, Store, StoreBuilder};
//!
//! let store = StoreBuilder::new().failures(1, 1).code(2, 3).build().unwrap();
//! let mut alice = store.client();
//! let mut bob = store.client();
//!
//! alice.write(ObjectId(0), b"hello from a real thread").unwrap();
//! let value = bob.read(ObjectId(0)).unwrap();
//! assert_eq!(value, b"hello from a real thread");
//! store.shutdown();
//! ```
//!
//! # Pipelined usage
//!
//! One client handle can keep up to `depth` operations in flight.
//! Operations are submitted with [`Store::submit_write`] /
//! [`Store::submit_read`], which return an [`OpTicket`] immediately;
//! completions are harvested with [`Store::poll`] (non-blocking),
//! [`Store::wait_next`] (block for the next batch), [`Store::wait`] (one
//! ticket) or [`Store::wait_all`]. Operations on the same object keep
//! submission (FIFO) order — preserving per-writer tag monotonicity and
//! read-your-writes — while operations on distinct objects overlap freely:
//!
//! ```rust
//! use lds_cluster::api::{ObjectId, Store, StoreBuilder};
//! use lds_cluster::OpOutcome;
//!
//! let store = StoreBuilder::new()
//!     .l1_shards(2) // two worker shards per L1 server
//!     .build()
//!     .unwrap();
//! let mut client = store.client_with_depth(8);
//!
//! let tickets: Vec<_> = (0..8u64)
//!     .map(|obj| client.submit_write(ObjectId(obj), &[obj as u8; 16]))
//!     .collect();
//! let completions = client.wait_all().unwrap();
//! assert_eq!(completions.len(), tickets.len());
//! for c in &completions {
//!     assert!(matches!(c.outcome, OpOutcome::Write { .. }));
//! }
//! store.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod heal;
pub mod node;
pub mod obs;
pub mod repair;
pub mod router;
pub mod sharded;
pub mod transport;

pub use api::{
    Admin, Liveness, MetricsSnapshot, ObjectId, ServerRef, Store, StoreBuilder, StoreClient,
    StoreError, StoreHandle, Topology,
};
pub use client::{ClientError, ClusterClient, Completion, OpOutcome, OpTicket, WouldBlock};
pub use heal::HealConfig;
pub use node::{msgs_per_op_bound, Cluster, ClusterOptions, HostScope};
pub use obs::{EventKind, FlightRecorder, HistSnapshot, TraceDump, TraceEvent, TraceHandle};
pub use repair::{RepairError, RepairLayer, RepairReport};
pub use router::shard_of;
pub use sharded::{cluster_of, ShardedClient, ShardedCluster};
pub use transport::{
    Decision, Endpoint, FaultCounters, FaultPlan, FaultRule, InProcTransport, PartitionDirection,
    PartitionSpec, SimTransport, Transport,
};
