//! # lds-cluster
//!
//! A thread-based, in-process cluster runtime for the LDS protocol, built
//! for throughput.
//!
//! The protocol automata in `lds-core` are sans-IO state machines; this crate
//! drives the *same* implementations used by the simulator over real OS
//! threads and crossbeam channels, giving a deployment with genuine
//! concurrency and non-deterministic message interleavings:
//!
//! * every L1 and L2 server runs as one or more **worker shards** — threads
//!   that own disjoint partitions of the object space (hash-routed), so
//!   independent objects are processed in parallel inside one node
//!   ([`ClusterOptions::l1_shards`] / [`ClusterOptions::l2_shards`]);
//! * message routing uses an **epoch-swapped immutable snapshot** table:
//!   steady-state sends take no lock at all, and each node flushes its
//!   outgoing messages as one batch per protocol step;
//! * clients are handles ([`ClusterClient`]) usable from any thread, with
//!   both blocking and **pipelined** operation;
//! * servers can be killed at runtime to exercise crash-fault tolerance, and
//!   **repaired online** ([`Cluster::repair_l1`] / [`Cluster::repair_l2`]):
//!   a replacement rejoins under the same process id, regenerates its state
//!   from live helpers — at MBR repair bandwidth for L2 coded elements —
//!   catches up in-flight writes, and restores the failure budget, all under
//!   concurrent client traffic (see the [`repair`] module);
//! * node wake-ups flush all outgoing traffic in one pass, coalescing
//!   same-destination metadata — notably the per-write **COMMIT-TAG
//!   broadcasts** — into one multi-message envelope per peer per flush
//!   ([`router::Envelope::Batch`]);
//! * with [`ClusterOptions::inbox_cap`] the cluster runs with **bounded
//!   inboxes**: a saturated or slow shard pushes back on
//!   [`ClusterClient::try_submit_write`] / [`ClusterClient::try_submit_read`]
//!   (they return [`WouldBlock`]) instead of queueing without limit;
//! * [`ShardedCluster`] scales out *beyond one membership*: the object space
//!   is partitioned by consistent hash ([`cluster_of`]) over N independent
//!   clusters — each with its own L1/L2 group, router and failure budget —
//!   behind a [`ShardedClient`] facade with the same pipelined API.
//!
//! # Blocking usage
//!
//! ```rust
//! use lds_cluster::Cluster;
//! use lds_core::{params::SystemParams, BackendKind};
//!
//! let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
//! let cluster = Cluster::start(params, BackendKind::Mbr);
//! let mut alice = cluster.client();
//! let mut bob = cluster.client();
//!
//! alice.write(0, b"hello from a real thread".to_vec()).unwrap();
//! let value = bob.read(0).unwrap();
//! assert_eq!(value, b"hello from a real thread");
//! cluster.shutdown();
//! ```
//!
//! # Pipelined usage
//!
//! One client handle can keep up to `depth` operations in flight. Operations
//! are submitted with [`ClusterClient::submit_write`] /
//! [`ClusterClient::submit_read`], which return an [`OpTicket`] immediately;
//! completions are harvested with [`ClusterClient::poll`] (non-blocking),
//! [`ClusterClient::wait_next`] (block for the next batch),
//! [`ClusterClient::wait`] (one ticket) or [`ClusterClient::wait_all`].
//! Operations on the same object keep submission (FIFO) order — preserving
//! per-writer tag monotonicity and read-your-writes — while operations on
//! distinct objects overlap freely:
//!
//! ```rust
//! use lds_cluster::{Cluster, ClusterOptions, OpOutcome};
//! use lds_core::{params::SystemParams, BackendKind};
//!
//! let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
//! let cluster = Cluster::start_with(
//!     params,
//!     BackendKind::Mbr,
//!     ClusterOptions {
//!         l1_shards: 2, // two worker shards per L1 server
//!         ..ClusterOptions::default()
//!     },
//! );
//! let mut client = cluster.client_with_depth(8);
//!
//! let tickets: Vec<_> = (0..8u64)
//!     .map(|obj| client.submit_write(obj, vec![obj as u8; 16]))
//!     .collect();
//! let completions = client.wait_all().unwrap();
//! assert_eq!(completions.len(), tickets.len());
//! for c in &completions {
//!     assert!(matches!(c.outcome, OpOutcome::Write { .. }));
//! }
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod node;
pub mod repair;
pub mod router;
pub mod sharded;

pub use client::{ClientError, ClusterClient, Completion, OpOutcome, OpTicket, WouldBlock};
pub use node::{msgs_per_op_bound, Cluster, ClusterOptions};
pub use repair::{RepairError, RepairLayer, RepairReport};
pub use router::shard_of;
pub use sharded::{cluster_of, ShardedClient, ShardedCluster};
