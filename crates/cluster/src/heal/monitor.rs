//! The heartbeat/suspicion monitor thread (see the [module docs](super)).

use super::HealConfig;
use crate::node::Cluster;
use crate::obs::{EventKind, TraceHandle};
use crate::repair::RepairLayer;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Pings every server of every cluster shard once per beat interval and
/// re-evaluates each server's suspicion flag from its beat age. Runs until
/// `stop` is raised.
///
/// The ping forces even an idle (recv-blocked) server through its node loop,
/// which is what refreshes the beat; a crashed server's pings are dropped at
/// the router, so its beat ages past the threshold and it becomes suspected.
/// A repaired replacement publishes into the same beat slot, so suspicion
/// clears on its first wake-up — no repair-completion callback is needed.
pub(super) fn run_monitor(clusters: &[Arc<Cluster>], config: &HealConfig, stop: &AtomicBool) {
    let threshold_micros =
        config.beat_interval.as_micros() as u64 * u64::from(config.suspicion_intervals);
    // One flight-recorder handle per cluster shard, so suspicion
    // *transitions* land in the right shard's trace.
    let mut traces: Vec<TraceHandle> = clusters.iter().map(|c| c.recorder().handle()).collect();
    let mut suspected: Vec<HashSet<(RepairLayer, usize)>> = vec![HashSet::new(); clusters.len()];
    while !stop.load(Ordering::Relaxed) {
        for (ci, cluster) in clusters.iter().enumerate() {
            let Some(state) = cluster.heal_state() else {
                continue;
            };
            let params = cluster.params();
            let now = cluster.now_micros();
            let servers = (0..params.n1())
                .map(|j| (RepairLayer::L1, j))
                .chain((0..params.n2()).map(|i| (RepairLayer::L2, i)));
            for (layer, index) in servers {
                let pid = cluster.server_pid(layer, index);
                // On a scoped (multi-daemon) deployment each daemon monitors
                // only the servers it hosts; peers monitor theirs.
                if !cluster.hosts_server(pid) {
                    continue;
                }
                cluster.ping_server(pid);
                let age = now.saturating_sub(cluster.beat_micros(pid));
                let suspect = age > threshold_micros;
                state.set_suspected(pid, suspect);
                let l = matches!(layer, RepairLayer::L2) as u64;
                if suspect && suspected[ci].insert((layer, index)) {
                    traces[ci].record(EventKind::HealSuspect, l, index as u64, 0);
                } else if !suspect && suspected[ci].remove(&(layer, index)) {
                    traces[ci].record(EventKind::HealClear, l, index as u64, 0);
                }
            }
        }
        std::thread::sleep(config.beat_interval);
    }
}
