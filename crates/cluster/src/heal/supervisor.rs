//! The auto-repair supervisor thread (see the [module docs](super)).

use super::HealConfig;
use crate::node::Cluster;
use crate::obs::{EventKind, TraceHandle};
use crate::repair::{RepairError, RepairLayer, RepairReport};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One repair target: cluster-shard index plus the server's layer address.
type TargetKey = (usize, RepairLayer, usize);

/// The layer code of the repair-lifecycle trace events (see
/// [`EventKind`]'s payload table).
fn layer_code(layer: RepairLayer) -> u64 {
    matches!(layer, RepairLayer::L2) as u64
}

/// Per-target retry state while a target keeps failing to repair.
struct Backoff {
    /// Consecutive failed attempts (drives the exponential delay).
    failures: u32,
    /// No new attempt before this instant.
    next_attempt: Instant,
}

/// Deterministic splitmix64 step — the jitter source, so a fixed
/// [`HealConfig::jitter_seed`] replays the same backoff schedule.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential backoff with jitter: `base · 2^failures` saturated at `max`,
/// then jittered uniformly into its upper half (`[d/2, d]`) so concurrent
/// supervisors do not retry in lockstep.
fn backoff_delay(config: &HealConfig, failures: u32, rng: &mut u64) -> Duration {
    let exp = failures.min(20);
    let computed = config
        .backoff_base
        .saturating_mul(1u32 << exp.min(31))
        .min(config.backoff_max);
    let half = computed / 2;
    let span = half.as_nanos() as u64 + 1;
    half + Duration::from_nanos(splitmix64(rng) % span)
}

/// Drains suspected servers into bounded, backed-off repair attempts until
/// `stop` is raised; joins every in-flight repair worker before returning.
///
/// Per scan (once per beat interval), for every suspected server that is
/// crashed by ground truth and not already being handled:
///
/// * **parked** — if the target's layer has fewer live helpers than its
///   repair quorum (more than `f` down), no attempt is made; the transition
///   is counted and the target re-checked next scan, so the supervisor
///   degrades to waiting instead of burning attempts that must fail;
/// * **backed off** — after a failed attempt the target waits out a
///   jittered exponential delay ([`backoff_delay`]); `RepairInProgress`
///   (another coordinator owns the claim) is a short fixed retry, not an
///   escalation, and `NotCrashed` (false suspicion, or the other
///   coordinator already finished) clears the target entirely;
/// * **attempted** — otherwise a worker thread drives
///   `Cluster::repair_server`, with at most
///   [`HealConfig::max_concurrent_repairs`] workers in flight across the
///   whole deployment.
pub(super) fn run_supervisor(clusters: &[Arc<Cluster>], config: &HealConfig, stop: &AtomicBool) {
    let (done_tx, done_rx) =
        crossbeam::channel::unbounded::<(TargetKey, Result<RepairReport, RepairError>)>();
    let mut in_flight: HashMap<TargetKey, JoinHandle<()>> = HashMap::new();
    let mut backoffs: HashMap<TargetKey, Backoff> = HashMap::new();
    let mut parked: HashSet<TargetKey> = HashSet::new();
    let mut rng = config.jitter_seed;
    // One flight-recorder handle per cluster shard for the repair
    // lifecycle events.
    let mut traces: Vec<TraceHandle> = clusters.iter().map(|c| c.recorder().handle()).collect();

    loop {
        // Reap finished workers first, so their slots free up this scan.
        while let Some((key, outcome)) = done_rx.try_recv() {
            if let Some(handle) = in_flight.remove(&key) {
                let _ = handle.join();
            }
            let (cluster_index, layer, index) = key;
            let cluster = &clusters[cluster_index];
            let Some(state) = cluster.heal_state() else {
                continue;
            };
            match outcome {
                Ok(_) => {
                    state.count_success();
                    traces[cluster_index].record(
                        EventKind::RepairOk,
                        layer_code(layer),
                        index as u64,
                        0,
                    );
                    state.clear_backoff(layer, index);
                    backoffs.remove(&key);
                }
                // False suspicion, or a racing coordinator already repaired
                // it: nothing to heal, forget any backoff.
                Err(RepairError::NotCrashed) => {
                    state.clear_backoff(layer, index);
                    backoffs.remove(&key);
                }
                // Another coordinator holds the claim: re-check shortly
                // without escalating — its success will turn our retry into
                // `NotCrashed`.
                Err(RepairError::RepairInProgress) => {
                    let entry = backoffs.entry(key).or_insert(Backoff {
                        failures: 0,
                        next_attempt: Instant::now(),
                    });
                    entry.next_attempt = Instant::now() + config.backoff_base;
                    state.set_backoff(layer, index, config.backoff_base);
                }
                // A genuine failure (stalled repair, helpers lost
                // mid-stream): escalate the exponential backoff.
                Err(RepairError::Timeout) | Err(RepairError::TooFewHelpers { .. }) => {
                    state.count_backoff();
                    let entry = backoffs.entry(key).or_insert(Backoff {
                        failures: 0,
                        next_attempt: Instant::now(),
                    });
                    let delay = backoff_delay(config, entry.failures, &mut rng);
                    traces[cluster_index].record(
                        EventKind::RepairBackoff,
                        layer_code(layer),
                        index as u64,
                        delay.as_micros() as u64,
                    );
                    entry.failures += 1;
                    entry.next_attempt = Instant::now() + delay;
                    state.set_backoff(layer, index, delay);
                }
            }
        }

        if stop.load(Ordering::Relaxed) {
            break;
        }

        // Scan every cluster shard for suspected servers to heal.
        'scan: for (cluster_index, cluster) in clusters.iter().enumerate() {
            let Some(state) = cluster.heal_state() else {
                continue;
            };
            let params = cluster.params();
            let servers = (0..params.n1())
                .map(|j| (RepairLayer::L1, j))
                .chain((0..params.n2()).map(|i| (RepairLayer::L2, i)));
            for (layer, index) in servers {
                let pid = cluster.server_pid(layer, index);
                // Repairs are driven by the daemon hosting the server (the
                // replacement's threads must spawn in its process).
                if !cluster.hosts_server(pid) {
                    continue;
                }
                if !state.is_suspected(pid) {
                    continue;
                }
                let key = (cluster_index, layer, index);
                if in_flight.contains_key(&key) {
                    continue;
                }
                // Ground truth gate: a suspected-but-live server needs no
                // repair — the monitor clears the suspicion once beats
                // resume (e.g. after a scheduling stall).
                if cluster.server_is_live(layer, index) {
                    continue;
                }
                // Degraded layer: fewer live helpers than the repair quorum
                // means every attempt must fail — park (and count the
                // transition) instead of spinning, and re-check next scan.
                if cluster.layer_live_count(layer) < cluster.repair_quorum(layer) {
                    if parked.insert(key) {
                        state.count_park();
                        traces[cluster_index].record(
                            EventKind::RepairPark,
                            layer_code(layer),
                            index as u64,
                            0,
                        );
                    }
                    continue;
                }
                parked.remove(&key);
                if let Some(backoff) = backoffs.get(&key) {
                    if Instant::now() < backoff.next_attempt {
                        continue;
                    }
                }
                if in_flight.len() >= config.max_concurrent_repairs {
                    break 'scan;
                }
                state.count_attempt();
                traces[cluster_index].record(
                    EventKind::RepairStart,
                    layer_code(layer),
                    index as u64,
                    0,
                );
                let cluster = Arc::clone(cluster);
                let done_tx = done_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("lds-heal-repair-{layer}-{index}"))
                    .spawn(move || {
                        let outcome = cluster.repair_server(layer, index);
                        let _ = done_tx.send((key, outcome));
                    })
                    .expect("spawn heal repair worker");
                in_flight.insert(key, handle);
            }
        }

        std::thread::sleep(config.beat_interval);
    }

    // Drain: every in-flight repair either completes or times out (the
    // repair timeout bounds this), then its worker is joined.
    for (_, handle) in in_flight.drain() {
        let _ = handle.join();
    }
}
