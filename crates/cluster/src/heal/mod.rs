//! The self-healing control plane: heartbeat failure detection plus an
//! auto-repair supervisor, so a deployment restores its own failure budget
//! without an operator calling [`crate::api::Admin::repair`].
//!
//! Three coupled pieces (enabled together by
//! [`StoreBuilder::self_heal`](crate::api::StoreBuilder::self_heal)):
//!
//! * **Beats** — every server worker shard stamps a per-process beat slot
//!   each time it reaches its inbox (see `run_node`). Idle shards block on
//!   `recv()`, so the monitor *pings* every server once per
//!   [`HealConfig::beat_interval`] ([`crate::router::Envelope::Ping`] —
//!   no protocol work, no depth accounting) to force even an idle server
//!   through its loop. A crashed server is deregistered from the router, its
//!   pings are dropped, and its beat goes stale — the detector needs no
//!   extra state beyond what crash injection and repair already maintain.
//! * **Suspicion monitor** — a thread that compares each server's beat age
//!   against `beat_interval × suspicion_intervals` and flips a per-server
//!   suspicion flag. [`Admin::liveness`](crate::api::Admin::liveness) reports
//!   these observations when the control plane is attached (the unsuspected
//!   view of a fallible detector), while
//!   [`Admin::is_live`](crate::api::Admin::is_live) keeps reading the
//!   engine's crash-injection ground truth.
//! * **Repair supervisor** — a thread draining the suspected-server list
//!   into repair attempts: at most
//!   [`HealConfig::max_concurrent_repairs`] in flight, jittered exponential
//!   backoff after [`crate::RepairError::Timeout`] /
//!   [`crate::RepairError::TooFewHelpers`], and a graceful *parked* state —
//!   recorded, not spun on — while more than `f` servers of a layer are down
//!   and no repair quorum exists. Several supervisors (or a supervisor
//!   racing a manual [`Admin::repair`](crate::api::Admin::repair)) coexist
//!   safely: the per-server repair claim admits exactly one coordinator, and
//!   the loser's `RepairInProgress` is treated as a short retry, not a
//!   failure.
//!
//! Everything the loop does is observable through
//! [`MetricsSnapshot`](crate::api::MetricsSnapshot): suspicions raised,
//! repairs attempted / succeeded / backed off, park events and the current
//! per-target backoff — exported textually by
//! [`MetricsSnapshot::to_prometheus`](crate::api::MetricsSnapshot::to_prometheus).

mod monitor;
mod supervisor;

use crate::node::Cluster;
use crate::repair::RepairLayer;
use lds_sim::ProcessId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of the self-healing control plane (see
/// [`StoreBuilder::self_heal_with`](crate::api::StoreBuilder::self_heal_with);
/// [`StoreBuilder::self_heal`](crate::api::StoreBuilder::self_heal) applies
/// the defaults).
///
/// Defaults: 50 ms beat interval, suspicion after 4 missed intervals,
/// 100 ms base / 5 s max backoff, 2 concurrent repairs.
#[derive(Debug, Clone, Copy)]
pub struct HealConfig {
    /// How often the monitor pings every server and re-evaluates suspicion.
    /// Also the supervisor's scan cadence. Must be non-zero.
    pub beat_interval: Duration,
    /// Beat intervals without a beat before a server is suspected. Must be
    /// at least 1; higher values trade detection latency for fewer false
    /// suspicions on a loaded machine.
    pub suspicion_intervals: u32,
    /// First retry delay after a failed repair attempt; doubles per
    /// consecutive failure (with jitter). Must be non-zero.
    pub backoff_base: Duration,
    /// Upper bound the exponential backoff saturates at. Must be at least
    /// [`HealConfig::backoff_base`].
    pub backoff_max: Duration,
    /// Repairs the supervisor keeps in flight at once, so healing a burst
    /// of failures never starves live traffic. Must be at least 1.
    pub max_concurrent_repairs: usize,
    /// Seed of the deterministic backoff jitter (splitmix64), so chaos
    /// harnesses replay identically.
    pub jitter_seed: u64,
}

impl Default for HealConfig {
    fn default() -> Self {
        HealConfig {
            beat_interval: Duration::from_millis(50),
            suspicion_intervals: 4,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            max_concurrent_repairs: 2,
            jitter_seed: 0x1d5_0dc5,
        }
    }
}

impl HealConfig {
    /// Validates the knobs, returning the first problem as a message (the
    /// builder wraps it into `StoreError::InvalidConfig`).
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.beat_interval.is_zero() {
            return Err("self-heal beat_interval must be non-zero".into());
        }
        if self.suspicion_intervals == 0 {
            return Err("self-heal suspicion_intervals must be at least 1".into());
        }
        if self.backoff_base.is_zero() {
            return Err("self-heal backoff_base must be non-zero".into());
        }
        if self.backoff_max < self.backoff_base {
            return Err("self-heal backoff_max must be at least backoff_base".into());
        }
        if self.max_concurrent_repairs == 0 {
            return Err("self-heal max_concurrent_repairs must be at least 1".into());
        }
        Ok(())
    }
}

/// Per-cluster bookkeeping the healing loop shares with the `Admin` facade:
/// suspicion flags (fed into `Admin::liveness`), heal counters and the
/// current per-target backoffs (fed into `MetricsSnapshot`). Attached to the
/// [`Cluster`] once by the builder.
pub(crate) struct HealState {
    /// Suspicion flag per server process, indexed by pid (`0..n1 + n2`).
    suspected: Vec<AtomicBool>,
    /// Transitions into the suspected state since launch.
    suspicions_raised: AtomicU64,
    /// Repair attempts the supervisor started.
    repairs_attempted: AtomicU64,
    /// Attempts that completed successfully.
    repairs_succeeded: AtomicU64,
    /// Attempts that failed and entered (or escalated) backoff.
    repairs_backed_off: AtomicU64,
    /// Transitions into the parked state (a layer degraded beyond its
    /// repair quorum, so the supervisor waits instead of attempting).
    parked_events: AtomicU64,
    /// Current backoff delay per target, while one is pending.
    backoffs: Mutex<HashMap<(RepairLayer, usize), Duration>>,
}

impl HealState {
    pub(crate) fn new(servers: usize) -> HealState {
        HealState {
            suspected: (0..servers).map(|_| AtomicBool::new(false)).collect(),
            suspicions_raised: AtomicU64::new(0),
            repairs_attempted: AtomicU64::new(0),
            repairs_succeeded: AtomicU64::new(0),
            repairs_backed_off: AtomicU64::new(0),
            parked_events: AtomicU64::new(0),
            backoffs: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn is_suspected(&self, pid: ProcessId) -> bool {
        self.suspected[pid.0].load(Ordering::Relaxed)
    }

    /// Raises or clears suspicion of `pid`, counting raise transitions.
    pub(crate) fn set_suspected(&self, pid: ProcessId, suspected: bool) {
        let was = self.suspected[pid.0].swap(suspected, Ordering::Relaxed);
        if suspected && !was {
            self.suspicions_raised.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn count_attempt(&self) {
        self.repairs_attempted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_success(&self) {
        self.repairs_succeeded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_backoff(&self) {
        self.repairs_backed_off.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_park(&self) {
        self.parked_events.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn suspicions_raised(&self) -> u64 {
        self.suspicions_raised.load(Ordering::Relaxed)
    }

    pub(crate) fn repairs_attempted(&self) -> u64 {
        self.repairs_attempted.load(Ordering::Relaxed)
    }

    pub(crate) fn repairs_succeeded(&self) -> u64 {
        self.repairs_succeeded.load(Ordering::Relaxed)
    }

    pub(crate) fn repairs_backed_off(&self) -> u64 {
        self.repairs_backed_off.load(Ordering::Relaxed)
    }

    pub(crate) fn parked_events(&self) -> u64 {
        self.parked_events.load(Ordering::Relaxed)
    }

    pub(crate) fn set_backoff(&self, layer: RepairLayer, index: usize, delay: Duration) {
        self.backoffs.lock().insert((layer, index), delay);
    }

    pub(crate) fn clear_backoff(&self, layer: RepairLayer, index: usize) {
        self.backoffs.lock().remove(&(layer, index));
    }

    /// The current backoff delays, one entry per target with a pending one.
    pub(crate) fn backoff_snapshot(&self) -> Vec<((RepairLayer, usize), Duration)> {
        let mut entries: Vec<_> = self.backoffs.lock().iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by_key(|((layer, index), _)| (*layer == RepairLayer::L2, *index));
        entries
    }
}

/// The running self-healing control plane of one deployment: the monitor
/// and supervisor threads plus their stop flag. Held (shared) by every
/// clone of the owning `StoreHandle`; stopped before the servers on
/// shutdown.
pub(crate) struct HealRuntime {
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl HealRuntime {
    /// Attaches fresh [`HealState`] to every cluster shard and spawns the
    /// monitor and supervisor threads.
    pub(crate) fn launch(clusters: Vec<Arc<Cluster>>, config: HealConfig) -> Arc<HealRuntime> {
        for cluster in &clusters {
            let params = cluster.params();
            cluster.attach_heal(Arc::new(HealState::new(params.n1() + params.n2())));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let clusters = clusters.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("lds-heal-monitor".into())
                .spawn(move || monitor::run_monitor(&clusters, &config, &stop))
                .expect("spawn heal monitor thread")
        };
        let supervisor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("lds-heal-supervisor".into())
                .spawn(move || supervisor::run_supervisor(&clusters, &config, &stop))
                .expect("spawn heal supervisor thread")
        };
        Arc::new(HealRuntime {
            stop,
            threads: Mutex::new(vec![monitor, supervisor]),
        })
    }

    /// Stops the monitor and supervisor and joins them (idempotent). The
    /// supervisor joins its in-flight repair workers first, so this blocks
    /// for at most roughly one repair timeout.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}
