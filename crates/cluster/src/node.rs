//! Server node threads and the [`Cluster`] handle.

use crate::client::ClusterClient;
use crate::router::{Envelope, Router};
use lds_core::backend::{make_backend, BackendCodec, BackendKind};
use lds_core::membership::Membership;
use lds_core::messages::{LdsMessage, ProtocolEvent};
use lds_core::params::SystemParams;
use lds_core::server1::{L1Options, L1Server};
use lds_core::server2::L2Server;
use lds_core::tag::ClientId;
use lds_sim::{Context, Process, ProcessId, SimTime};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Drives one server automaton from its inbox until a stop request arrives.
fn run_node<P>(
    mut process: P,
    pid: ProcessId,
    router: Router,
    inbox: crossbeam::channel::Receiver<Envelope>,
    started: Instant,
) where
    P: Process<LdsMessage, ProtocolEvent>,
{
    while let Ok(envelope) = inbox.recv() {
        match envelope {
            Envelope::Stop => break,
            Envelope::Protocol { from, msg } => {
                let mut outgoing = Vec::new();
                let mut events = Vec::new();
                let now = SimTime::new(started.elapsed().as_secs_f64());
                let mut ctx = Context::standalone(pid, now, &mut outgoing, &mut events);
                process.on_message(from, msg, &mut ctx);
                for (to, msg) in outgoing {
                    router.send(pid, to, msg);
                }
                // Server automata do not emit client events.
            }
        }
    }
    router.deregister(pid);
}

/// A running in-process LDS cluster: `n1 + n2` server threads plus any number
/// of synchronous clients created through [`Cluster::client`].
pub struct Cluster {
    params: SystemParams,
    membership: Membership,
    backend: Arc<dyn BackendCodec>,
    router: Router,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_client: AtomicU64,
    started: Instant,
}

impl Cluster {
    /// Starts the cluster: spawns one thread per L1 and L2 server.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot be constructed for `params`.
    pub fn start(params: SystemParams, backend_kind: BackendKind) -> Arc<Cluster> {
        let backend = make_backend(backend_kind, &params)
            .expect("backend construction for validated parameters");
        // Pre-warm the codec's memoized plans (decode / repair inversions for
        // the canonical quorums) so the first client operation runs at
        // steady-state speed.
        backend.warm_plans();
        let l1: Vec<ProcessId> = (0..params.n1()).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (params.n1()..params.n1() + params.n2())
            .map(ProcessId)
            .collect();
        let membership = Membership::new(l1.clone(), l2.clone());
        let router = Router::new();
        let started = Instant::now();
        let mut handles = Vec::with_capacity(params.n1() + params.n2());

        for (j, &pid) in l1.iter().enumerate() {
            let inbox = router.register(pid);
            let server = L1Server::new(
                j,
                params,
                membership.clone(),
                Arc::clone(&backend),
                L1Options::default(),
            );
            let router = router.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lds-l1-{j}"))
                    .spawn(move || run_node(server, pid, router, inbox, started))
                    .expect("spawn L1 thread"),
            );
        }
        for (i, &pid) in l2.iter().enumerate() {
            let inbox = router.register(pid);
            let server = L2Server::new(i, membership.clone(), Arc::clone(&backend));
            let router = router.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lds-l2-{i}"))
                    .spawn(move || run_node(server, pid, router, inbox, started))
                    .expect("spawn L2 thread"),
            );
        }

        Arc::new(Cluster {
            params,
            membership,
            backend,
            router,
            handles: Mutex::new(handles),
            next_client: AtomicU64::new(1),
            started,
        })
    }

    /// The cluster's system parameters.
    pub fn params(&self) -> SystemParams {
        self.params
    }

    /// The cluster's membership.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    pub(crate) fn router(&self) -> &Router {
        &self.router
    }

    pub(crate) fn backend(&self) -> Arc<dyn BackendCodec> {
        Arc::clone(&self.backend)
    }

    pub(crate) fn elapsed(&self) -> SimTime {
        SimTime::new(self.started.elapsed().as_secs_f64())
    }

    /// Creates a synchronous client handle (usable for both reads and
    /// writes). Each client gets a fresh client id and its own inbox.
    pub fn client(self: &Arc<Self>) -> ClusterClient {
        let client_number = self.next_client.fetch_add(1, Ordering::Relaxed);
        let client_id = ClientId(client_number);
        // Client process ids live above all server ids.
        let pid = ProcessId(self.params.n1() + self.params.n2() + client_number as usize);
        let inbox = self.router.register(pid);
        ClusterClient::new(Arc::clone(self), client_id, pid, inbox)
    }

    /// Kills the L1 server with code index `index` (crash failure).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn kill_l1(&self, index: usize) {
        self.router.send_stop(self.membership.l1[index]);
    }

    /// Kills the L2 server with index `index` (crash failure).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn kill_l2(&self, index: usize) {
        self.router.send_stop(self.membership.l2[index]);
    }

    /// Stops every server thread and waits for them to exit.
    pub fn shutdown(&self) {
        for &pid in self.membership.l1.iter().chain(self.membership.l2.iter()) {
            self.router.send_stop(pid);
        }
        let mut handles = self.handles.lock();
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_starts_and_shuts_down() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::start(params, BackendKind::Mbr);
        assert_eq!(cluster.params().n1(), 4);
        assert_eq!(cluster.membership().n2(), 5);
        assert_eq!(cluster.router().len(), 9);
        cluster.shutdown();
        // All server inboxes are deregistered after shutdown.
        assert_eq!(cluster.router().len(), 0);
    }
}
