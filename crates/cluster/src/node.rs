//! Server node threads and the [`Cluster`] handle.
//!
//! Each L1/L2 server process may run as several *worker shards*: identical
//! automaton instances that own disjoint partitions of the object space
//! (hash-routed by the [`Router`]). The LDS protocol keeps all per-object
//! state inside the server's per-object map, so cross-shard invariants are
//! trivial — a shard simply never sees messages for objects it does not own
//! — and independent objects are processed in parallel inside one node.
//!
//! When [`ClusterOptions::inbox_cap`] is set, the cluster runs with *bounded
//! inboxes*: every L1 object partition has an admission budget of at most
//! `cap` client operations in flight, and dispatching a new operation also
//! requires every destination worker inbox to be below its depth limit. A
//! slow or saturated shard therefore pushes back on
//! [`crate::ClusterClient::try_submit_write`] /
//! [`crate::ClusterClient::try_submit_read`] (they return
//! [`crate::WouldBlock`]) instead of queueing without limit. Server-to-server
//! traffic is never blocked — the channels stay unbounded so the protocol
//! cannot deadlock on a full peer inbox — but because every internal message
//! is caused by an admitted client operation, each worker inbox stays within
//! a small protocol-constant multiple of the cap (asserted by the
//! cross-shard stress tests).

use crate::client::ClusterClient;
use crate::obs::{EventKind, FlightRecorder, ObsMetrics, TraceHandle, DEFAULT_TRACE_EVENTS};
use crate::repair::{RepairError, RepairLayer, RepairReport};
use crate::router::{DepthGauge, Envelope, Inbox, Router};
use lds_core::backend::{make_backend, BackendCodec, BackendKind};
use lds_core::membership::Membership;
use lds_core::messages::{LdsMessage, ProtocolEvent};
use lds_core::params::SystemParams;
use lds_core::server1::{L1ObsCounters, L1Options, L1Server};
use lds_core::server2::{L2ObsCounters, L2Options, L2Server};
use lds_core::tag::{ClientId, ObjectId};
use lds_sim::{Context, Process, ProcessId, SimTime};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Cluster`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterOptions {
    /// Worker shards per L1 server. Each shard owns a disjoint object
    /// partition; `1` reproduces the original single-threaded server.
    pub l1_shards: usize,
    /// Worker shards per L2 server.
    pub l2_shards: usize,
    /// L1 server protocol options.
    pub l1: L1Options,
    /// L2 server protocol options.
    pub l2: L2Options,
    /// Default maximum number of operations a client created by
    /// [`Cluster::client`] keeps in flight.
    pub pipeline_depth: usize,
    /// Bounded-inbox mode: the maximum number of client operations admitted
    /// concurrently per L1 object partition (`None` = unbounded, the
    /// default). With a cap, a saturated or slow partition makes
    /// [`crate::ClusterClient::try_submit_write`] /
    /// [`crate::ClusterClient::try_submit_read`] return
    /// [`crate::WouldBlock`], and queued `submit_*` operations simply wait
    /// for a slot; each worker-shard inbox is thereby bounded to a small
    /// multiple of `cap × `[`msgs_per_op_bound`] messages instead of growing
    /// without limit under overload.
    ///
    /// Note: a chunk-striped write (see [`L1Options::stripe_threshold`])
    /// counts as **one** admitted operation but deposits one message per
    /// stripe, so its inbox footprint exceeds the nominal
    /// `msgs_per_op_bound` budget. The channels stay unbounded — this
    /// cannot deadlock — it only loosens the per-inbox depth bound for
    /// large-value workloads.
    pub inbox_cap: Option<usize>,
    /// Capacity (in objects) of each client's tag-validated read cache;
    /// `0` (the default) disables it. When the read's committed-tag quorum
    /// reports a tag the client has cached, the data-transfer phase is
    /// skipped entirely — atomicity is unaffected because tag discovery and
    /// the put-tag write-back still run in full.
    pub read_cache_entries: usize,
    /// How long a repair coordinator waits for the replacement to report
    /// completion before returning the target to the crashed state with
    /// [`crate::RepairError::Timeout`] (default 60 s). Must be non-zero;
    /// [`crate::api::StoreBuilder::repair_timeout`] validates this at
    /// `build()` time.
    pub repair_timeout: Duration,
    /// Maximum [`crate::RepairReport`]s retained in the cluster's repair
    /// log (default 1024). Under continuous self-healing the log would
    /// otherwise grow without bound; the oldest reports are dropped first
    /// and the drop count is surfaced through
    /// [`crate::api::MetricsSnapshot::repair_reports_dropped`].
    pub repair_log_cap: usize,
    /// Flight-recorder switch (default off). When on, every server shard,
    /// client and heal thread records structured protocol events into its
    /// own bounded ring ([`crate::obs::FlightRecorder`]), merged on demand
    /// by [`crate::api::Admin::trace_dump`]. When off — the default — every
    /// recording site pays exactly one cached-flag branch and no ring is
    /// allocated.
    pub trace: bool,
    /// Events retained per recording thread while tracing is on (default
    /// [`DEFAULT_TRACE_EVENTS`]).
    pub trace_events: usize,
}

/// Which slice of a deployment one process hosts, for multi-daemon
/// deployments over a real-network transport (see
/// [`TcpTransport`](crate::transport::TcpTransport)).
///
/// A scoped cluster spawns worker threads only for the listed server
/// indices; every other pid of the shared membership lives on a peer daemon
/// and is reached through the transport. Client (and auxiliary) process ids
/// are allocated as `base + k·step` so they stay globally unique without
/// coordination — daemon `d` of `D` uses `base = d + 1`, `step = D`
/// ([`TcpTopology::client_base`](crate::transport::TcpTopology::client_base)).
///
/// The default in-process deployment is the trivial scope: every server
/// local, `base = 1`, `step = 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostScope {
    /// L1 server indices (`0..n1`) hosted by this process.
    pub l1: Vec<usize>,
    /// L2 server indices (`0..n2`) hosted by this process.
    pub l2: Vec<usize>,
    /// First client number this process allocates.
    pub client_base: u64,
    /// Stride between client numbers this process allocates.
    pub client_step: u64,
}

/// Default for [`ClusterOptions::repair_timeout`].
pub(crate) const DEFAULT_REPAIR_TIMEOUT: Duration = Duration::from_secs(60);

/// Default for [`ClusterOptions::repair_log_cap`].
pub(crate) const DEFAULT_REPAIR_LOG_CAP: usize = 1024;

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            l1_shards: 1,
            l2_shards: 1,
            l1: L1Options::default(),
            l2: L2Options::default(),
            pipeline_depth: 16,
            inbox_cap: None,
            read_cache_entries: 0,
            repair_timeout: DEFAULT_REPAIR_TIMEOUT,
            repair_log_cap: DEFAULT_REPAIR_LOG_CAP,
            trace: false,
            trace_events: DEFAULT_TRACE_EVENTS,
        }
    }
}

impl ClusterOptions {
    /// The high-throughput profile: every protocol-cost knob flipped towards
    /// fewer messages per operation (direct COMMIT-TAG broadcast, inline
    /// self-delivery, committed-value caching, `f1 + 1` offloaders, no L2
    /// write acks) plus `shards` worker shards per server. Paper-exact cost
    /// accounting is traded away; atomicity is not (see the stress tests).
    pub fn high_throughput(shards: usize) -> Self {
        ClusterOptions {
            l1_shards: shards,
            l2_shards: shards,
            l1: L1Options {
                direct_broadcast: true,
                cache_committed_value: true,
                frugal_offload: true,
                inline_self_broadcast: true,
                ..L1Options::default()
            },
            l2: L2Options {
                ack_code_elem: false,
            },
            pipeline_depth: 32,
            inbox_cap: None,
            read_cache_entries: 0,
            repair_timeout: DEFAULT_REPAIR_TIMEOUT,
            repair_log_cap: DEFAULT_REPAIR_LOG_CAP,
            trace: false,
            trace_events: DEFAULT_TRACE_EVENTS,
        }
    }
}

/// Worst-case protocol messages one client operation can deposit into a
/// single L1 worker-shard inbox, used to derive the per-inbox depth limit
/// (`inbox_cap × msgs_per_op_bound`) in bounded-inbox mode.
///
/// A write delivers to one L1 shard at most: `QUERY-TAG` + `PUT-DATA` (2),
/// the COMMIT-TAG broadcast fan-in — as a relay up to `n1` `BCAST-SEND`s
/// (one per originating server) and up to `n1 · (f1 + 1)` `BCAST-DELIVER`s
/// (every relay forwards every origin's broadcast), i.e. `n1 · (f1 + 2)`
/// total; direct-broadcast mode is strictly smaller — and up to `n2` L2
/// offload acks. A read (`QUERY-COMM-TAG` + `QUERY-DATA` + `PUT-TAG` + `n2`
/// helper responses) is strictly smaller again.
pub fn msgs_per_op_bound(params: &SystemParams) -> usize {
    2 + params.n1() * (params.f1() + 2) + params.n2()
}

/// A partition's FIFO of clients waiting for budget, plus the moment the
/// current front entry became front. Freed budget is reserved for the front
/// waiter — but only for [`FRONT_GRACE`]: a waiter whose owning thread has
/// stopped pumping (clients re-attempt admission every ~500µs while they
/// wait) forfeits its turn instead of wedging the partition with budget
/// idle. A live waiter re-enqueues on its next retry, so fairness degrades
/// to FCFS only for absent clients.
#[derive(Debug)]
struct WaiterQueue {
    queue: VecDeque<u64>,
    front_since: Instant,
}

/// How long freed budget stays reserved for the front waiter before its
/// turn expires (see [`WaiterQueue`]). Far above the waiters' ~500µs
/// admission-retry cadence, far below operation timeouts.
const FRONT_GRACE: Duration = Duration::from_millis(10);

/// The shared admission state of a bounded-inbox cluster: one in-flight
/// operation budget per L1 object partition plus read access to every L1
/// worker inbox gauge. Cloned into each [`ClusterClient`].
///
/// Budget grants are **turn-fair**: a client refused for lack of budget
/// joins the partition's waiter queue, and freed budget is granted in queue
/// order before anyone else may take it. A greedy pipelined client that
/// hammers `try_submit_*` therefore cannot starve a blocking client — after
/// the blocking client's first refusal, the greedy one is refused until the
/// blocking client has had its turn.
#[derive(Clone)]
pub(crate) struct Admission {
    /// Client operations admitted per cap.
    cap: usize,
    /// Per-inbox message-depth gate derived from the cap.
    depth_limit: usize,
    /// In-flight admitted operations, one counter per L1 partition.
    admitted: Arc<[AtomicUsize]>,
    /// Per-partition FIFO of clients waiting for budget (by client number).
    waiters: Arc<[Mutex<WaiterQueue>]>,
    /// Length of each waiter queue, maintained under its lock. Read without
    /// the lock as the hot-path fast gate: while it is zero — the
    /// overwhelmingly common case — admission is a single lock-free CAS on
    /// the budget counter, exactly the pre-fairness cost.
    waiter_counts: Arc<[AtomicUsize]>,
    /// Depth gauges of every L1 server, indexed `[server][shard]`.
    l1_depths: Arc<Vec<Vec<Arc<DepthGauge>>>>,
    /// Worker shards per L1 server (the partition count).
    shards: usize,
}

impl Admission {
    fn new(
        cap: usize,
        shards: usize,
        params: &SystemParams,
        l1_depths: Arc<Vec<Vec<Arc<DepthGauge>>>>,
    ) -> Self {
        assert!(cap > 0, "inbox_cap must be at least 1");
        let admitted: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
        let waiters: Vec<Mutex<WaiterQueue>> = (0..shards)
            .map(|_| {
                Mutex::new(WaiterQueue {
                    queue: VecDeque::new(),
                    front_since: Instant::now(),
                })
            })
            .collect();
        let waiter_counts: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
        Admission {
            cap,
            depth_limit: cap * msgs_per_op_bound(params),
            admitted: admitted.into(),
            waiters: waiters.into(),
            waiter_counts: waiter_counts.into(),
            l1_depths,
            shards,
        }
    }

    /// The partition (worker-shard index) owning `obj`.
    pub(crate) fn partition_of(&self, obj: ObjectId) -> usize {
        crate::router::shard_of(obj, self.shards)
    }

    /// Tries to admit one operation of `client` on `obj`'s partition. Three
    /// gates, in order:
    ///
    /// 1. every L1 server's worker inbox for the partition must be below the
    ///    depth limit (a slow shard pushes back even while budget remains);
    /// 2. it must be `client`'s **turn**: if other clients were refused
    ///    earlier and still wait, the queue front goes first;
    /// 3. the partition must have budget left.
    ///
    /// On a budget/turn refusal the client joins the waiter queue if
    /// `queue` is true (the retrying `submit_*` path). The non-queueing
    /// `try_submit_*` path passes false — it promises to never queue, and a
    /// caller that may never retry must not block the turn order.
    pub(crate) fn try_admit(&self, client: u64, obj: ObjectId, queue: bool) -> bool {
        let partition = self.partition_of(obj);
        for server in self.l1_depths.iter() {
            if server[partition].current() >= self.depth_limit {
                return false;
            }
        }
        // Fast path: nobody waits, so there is no turn order to respect —
        // admission is one lock-free CAS (the pre-fairness hot path). The
        // 0→1 transition of the count races at most one grant past a
        // just-arriving waiter; once the waiter is enqueued every caller
        // takes the fair slow path.
        if self.waiter_counts[partition].load(Ordering::Relaxed) == 0 {
            if self.try_take_budget(partition) {
                return true;
            }
            if !queue {
                return false;
            }
            // Out of budget and willing to wait: fall through to enqueue.
        }
        let mut waiters = self.waiters[partition].lock();
        // A front waiter that stopped retrying forfeits its turn after the
        // grace period, so an absent client cannot hold budget idle.
        if let Some(&front) = waiters.queue.front() {
            if front != client && waiters.front_since.elapsed() > FRONT_GRACE {
                waiters.queue.pop_front();
                waiters.front_since = Instant::now();
                self.waiter_counts[partition].fetch_sub(1, Ordering::Relaxed);
            }
        }
        if let Some(&front) = waiters.queue.front() {
            if front != client {
                // Not this client's turn.
                if queue && !waiters.queue.contains(&client) {
                    if waiters.queue.is_empty() {
                        waiters.front_since = Instant::now();
                    }
                    waiters.queue.push_back(client);
                    self.waiter_counts[partition].fetch_add(1, Ordering::Relaxed);
                }
                return false;
            }
        }
        let granted = self.try_take_budget(partition);
        if granted {
            if waiters.queue.front() == Some(&client) {
                waiters.queue.pop_front();
                waiters.front_since = Instant::now();
                self.waiter_counts[partition].fetch_sub(1, Ordering::Relaxed);
            }
        } else if waiters.queue.front() == Some(&client) {
            // The front waiter retried and found no budget yet: refresh its
            // grace window — proof of life. Only a front that stops
            // retrying altogether ever expires, no matter how long the
            // in-flight operations keep the budget exhausted.
            waiters.front_since = Instant::now();
        } else if queue && !waiters.queue.contains(&client) {
            if waiters.queue.is_empty() {
                waiters.front_since = Instant::now();
            }
            waiters.queue.push_back(client);
            self.waiter_counts[partition].fetch_add(1, Ordering::Relaxed);
        }
        granted
    }

    /// One CAS on the partition's budget counter.
    fn try_take_budget(&self, partition: usize) -> bool {
        self.admitted[partition]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.cap).then_some(n + 1)
            })
            .is_ok()
    }

    /// Returns the budget slot taken by [`Admission::try_admit`] for an
    /// operation on `obj` (called exactly once per admitted operation, at
    /// completion or abort).
    pub(crate) fn release(&self, obj: ObjectId) {
        self.admitted[self.partition_of(obj)].fetch_sub(1, Ordering::Relaxed);
    }

    /// Drops `client` from every waiter queue — called when a client
    /// abandons its queued operations (cancel, timeout abort, drop), so an
    /// absent client can never wedge the turn order.
    pub(crate) fn forget(&self, client: u64) {
        for (waiters, count) in self.waiters.iter().zip(self.waiter_counts.iter()) {
            let mut waiters = waiters.lock();
            let was_front = waiters.queue.front() == Some(&client);
            let before = waiters.queue.len();
            waiters.queue.retain(|&c| c != client);
            if was_front {
                waiters.front_since = Instant::now();
            }
            count.fetch_sub(before - waiters.queue.len(), Ordering::Relaxed);
        }
    }

    fn admitted_on(&self, partition: usize) -> usize {
        self.admitted[partition].load(Ordering::Relaxed)
    }
}

/// Occupancy numbers one server shard publishes whenever its inbox drains
/// (so reading them never contends with the protocol hot path).
///
/// The internals counters (assemblies, GC, message classes) follow the same
/// idle-publish discipline: they are *absolute* values of the shard's server
/// automaton, stored wholesale at each publish. A repaired (replacement)
/// server starts its counters from zero — readers should treat dips as
/// Prometheus-style counter resets.
#[derive(Default)]
struct ShardStats {
    temp_bytes: AtomicUsize,
    metadata_entries: AtomicUsize,
    /// Peak single-round scratch bytes of the shard's encode buffer pool
    /// (L1 only; zero on L2 shards).
    peak_round_bytes: AtomicUsize,
    assemblies_opened: AtomicU64,
    assemblies_completed: AtomicU64,
    /// L1: malformed/mismatched stripe *parts* dropped; L2: whole
    /// assemblies dropped (GC'd or malformed).
    assemblies_dropped: AtomicU64,
    gc_evicted_entries: AtomicU64,
    gc_evicted_bytes: AtomicU64,
    /// Messages this shard received, by protocol class (dense
    /// [`LdsMessage::class_index`] order; heartbeat pings in the final
    /// slot).
    msgs_by_class: [AtomicU64; LdsMessage::NUM_CLASSES],
}

/// Server-internals counters aggregated over every shard of every server,
/// as last published at idle (see the per-shard `ShardStats` for reset
/// semantics: counters restart at zero after a repair).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServerInternals {
    /// Stripe assemblies opened at L1 (cross-sender PUT-STRIPE reassembly).
    pub l1_assemblies_opened: u64,
    /// Stripe assemblies fully reassembled at L1.
    pub l1_assemblies_completed: u64,
    /// Malformed or mismatched stripe parts dropped at L1.
    pub l1_stripe_parts_dropped: u64,
    /// Code-stripe assemblies opened at L2 (WRITE-CODE-STRIPE reassembly).
    pub l2_assemblies_opened: u64,
    /// Code-stripe assemblies fully reassembled at L2.
    pub l2_assemblies_completed: u64,
    /// Whole assemblies dropped at L2 (superseded or malformed).
    pub l2_assemblies_dropped: u64,
    /// Temporary-store entries garbage-collected below the committed tag.
    pub gc_evicted_entries: u64,
    /// Value bytes released by committed-tag garbage collection.
    pub gc_evicted_bytes: u64,
    /// Largest single-round scratch footprint any L1 shard's encode buffer
    /// pool ever reached, in bytes.
    pub peak_round_bytes: usize,
    /// Messages received across all server shards, by protocol class
    /// (dense [`LdsMessage::class_index`] order, heartbeat pings last —
    /// pair with [`crate::transport::MESSAGE_CLASSES`] for names).
    pub msgs_by_class: [u64; LdsMessage::NUM_CLASSES],
}

/// Per-thread observability context threaded through [`run_node`]: this
/// shard's flight-recorder handle plus locally accumulated message-class
/// counts, published to the shard's stats slots only when the inbox drains
/// (the same idle-publish discipline as the occupancy gauges — counting on
/// the hot path is a plain array increment).
pub(crate) struct NodeObs {
    trace: TraceHandle,
    class_counts: [u64; LdsMessage::NUM_CLASSES],
    stats: Arc<ShardStats>,
}

impl NodeObs {
    fn new(trace: TraceHandle, stats: Arc<ShardStats>) -> Self {
        NodeObs {
            trace,
            class_counts: [0; LdsMessage::NUM_CLASSES],
            stats,
        }
    }

    #[inline]
    fn count(&mut self, msg: &LdsMessage) {
        self.class_counts[msg.class_index()] += 1;
    }

    #[inline]
    fn count_ping(&mut self) {
        self.class_counts[LdsMessage::NUM_CLASSES - 1] += 1;
    }

    fn publish_classes(&self) {
        for (slot, &count) in self.stats.msgs_by_class.iter().zip(&self.class_counts) {
            slot.store(count, Ordering::Relaxed);
        }
    }
}

/// Bounded history of successful repairs: a ring buffer capped at
/// [`ClusterOptions::repair_log_cap`] that counts what it evicts, so a
/// perpetually self-healing deployment cannot leak memory through its
/// report log while `repairs_completed` stays exact.
#[derive(Debug)]
struct RepairLog {
    reports: VecDeque<RepairReport>,
    cap: usize,
    dropped: u64,
}

impl RepairLog {
    fn new(cap: usize) -> Self {
        RepairLog {
            reports: VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    fn push(&mut self, report: RepairReport) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        while self.reports.len() >= self.cap {
            self.reports.pop_front();
            self.dropped += 1;
        }
        self.reports.push_back(report);
    }
}

/// Drives one server automaton from its inbox until a stop request arrives.
///
/// The outgoing/events buffers are allocated once and reused for every step.
/// Outgoing messages are flushed **once per wake-up** (the blocking message
/// plus the entire claimed backlog): one routing-epoch check for everything,
/// and all same-destination metadata produced by the batch — most notably
/// the COMMIT-TAG broadcasts of every write in it — coalesces into one
/// multi-message envelope per peer (see
/// [`crate::router::RouterHandle::send_batch`]).
#[allow(clippy::too_many_arguments)]
fn run_node<P>(
    mut process: P,
    pid: ProcessId,
    router: Router,
    inbox: Inbox,
    started: Instant,
    beat: Arc<AtomicU64>,
    mut obs: NodeObs,
    mut publish: impl FnMut(&P, &mut NodeObs),
) where
    P: Process<LdsMessage, ProtocolEvent>,
{
    let mut handle = router.handle();
    let mut outgoing: Vec<(ProcessId, LdsMessage)> = Vec::with_capacity(64);
    let mut events: Vec<(SimTime, ProcessId, ProtocolEvent)> = Vec::new();

    /// Processes one envelope, appending produced messages to `outgoing`
    /// (the caller flushes). Returns `true` when a stop was requested.
    fn consume<P: Process<LdsMessage, ProtocolEvent>>(
        process: &mut P,
        pid: ProcessId,
        now: SimTime,
        depth: &DepthGauge,
        outgoing: &mut Vec<(ProcessId, LdsMessage)>,
        events: &mut Vec<(SimTime, ProcessId, ProtocolEvent)>,
        obs: &mut NodeObs,
        envelope: Envelope,
    ) -> bool {
        let mut step = |from: ProcessId, msg: LdsMessage| {
            let mut ctx = Context::standalone(pid, now, outgoing, events);
            process.on_message(from, msg, &mut ctx);
            // Server automata do not emit client events.
            events.clear();
        };
        match envelope {
            Envelope::Stop => return true,
            // A heartbeat probe: the wake-up itself is the beat (the caller
            // refreshes the beat timestamp each iteration); no protocol work
            // and no depth accounting.
            Envelope::Ping => obs.count_ping(),
            Envelope::Protocol { from, msg } => {
                depth.sub(1);
                obs.count(&msg);
                step(from, msg);
            }
            Envelope::Batch { from, msgs } => {
                depth.sub(msgs.len());
                for msg in msgs {
                    obs.count(&msg);
                    step(from, msg);
                }
            }
        }
        false
    }

    'run: loop {
        // Only blocked (idle) shards publish stats, so probing them never
        // contends with the protocol hot path. The beat timestamp proves
        // this shard reached its inbox again: the heartbeat monitor's pings
        // force even idle (blocked) shards through here once per interval.
        publish(&process, &mut obs);
        obs.publish_classes();
        beat.store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        let first = match inbox.rx.recv() {
            Ok(e) => e,
            Err(_) => break 'run,
        };
        // One timestamp per batch: the clock feeds event timestamps only,
        // and a batch is processed within microseconds.
        let now = SimTime::new(started.elapsed().as_secs_f64());
        let mut stop = consume(
            &mut process,
            pid,
            now,
            &inbox.depth,
            &mut outgoing,
            &mut events,
            &mut obs,
            first,
        );
        if !stop {
            // Drain the backlog as one batch: a single channel-lock
            // acquisition claims every queued envelope.
            for envelope in inbox.rx.try_iter() {
                if consume(
                    &mut process,
                    pid,
                    now,
                    &inbox.depth,
                    &mut outgoing,
                    &mut events,
                    &mut obs,
                    envelope,
                ) {
                    stop = true;
                    break;
                }
            }
        }
        if obs.trace.enabled() {
            for (dest, msg) in &outgoing {
                obs.trace.record(
                    EventKind::RouterSend,
                    msg.class_index() as u64,
                    pid.0 as u64,
                    dest.0 as u64,
                );
            }
        }
        handle.send_batch(pid, outgoing.drain(..));
        if stop {
            break 'run;
        }
    }
    publish(&process, &mut obs);
    obs.publish_classes();
    router.deregister(pid);
}

/// A running in-process LDS cluster: `n1 + n2` server processes (each split
/// into one or more worker shard threads) plus any number of clients created
/// through [`Cluster::client`]. Servers can be crash-killed at runtime
/// ([`Cluster::kill_l1`] / [`Cluster::kill_l2`]) and later regenerated
/// *online* ([`Cluster::repair_l1`] / [`Cluster::repair_l2`]), restoring the
/// failure budget.
pub struct Cluster {
    params: SystemParams,
    membership: Membership,
    backend: Arc<dyn BackendCodec>,
    router: Router,
    /// Worker-shard join handles per server process, so a single crashed
    /// server can be joined (and replaced) without touching the others.
    handles: Mutex<HashMap<ProcessId, Vec<JoinHandle<()>>>>,
    /// Servers killed via the crash-injection API and not yet repaired,
    /// with a per-pid kill generation (bumped on every kill, so a repair
    /// that races a *new* kill can tell the difference).
    killed: Mutex<HashMap<ProcessId, u64>>,
    /// Servers with a repair currently in progress (claimed by exactly one
    /// coordinator at a time — see [`crate::api::Admin::repair`]).
    repairing: Mutex<HashSet<ProcessId>>,
    /// Reports of the most recent successful repairs, in completion order
    /// (exposed through [`crate::api::Admin::repair_reports`]). Bounded by
    /// [`ClusterOptions::repair_log_cap`]: the oldest reports are dropped
    /// first and counted.
    repair_log: Mutex<RepairLog>,
    /// Per-server liveness beats, indexed by pid (`0..n1 + n2`):
    /// microseconds since [`Cluster::started`] at the last time any worker
    /// shard of that server reached its inbox. The `Arc`s survive repair —
    /// a replacement publishes into the same slot.
    beats: Vec<Arc<AtomicU64>>,
    /// Suspicion/repair bookkeeping of the self-healing control plane,
    /// attached once by [`crate::api::StoreBuilder`] when the `self_heal`
    /// profile is on (see [`crate::heal`]).
    heal: std::sync::OnceLock<Arc<crate::heal::HealState>>,
    next_client: AtomicU64,
    /// Stride between allocated client numbers (1 in-process; the daemon
    /// count on a multi-daemon deployment — see [`HostScope`]).
    client_step: u64,
    /// Server pids hosted by this process (`None` = all of them, the
    /// in-process default).
    hosted: Option<HashSet<ProcessId>>,
    started: Instant,
    options: ClusterOptions,
    /// Per L1 server, per shard occupancy stats. The `Arc`s survive repair:
    /// a replacement server publishes into the same slots.
    l1_stats: Vec<Vec<Arc<ShardStats>>>,
    /// Per L2 server, per shard internals stats (same slot-reuse discipline
    /// as `l1_stats`).
    l2_stats: Vec<Vec<Arc<ShardStats>>>,
    /// Per L1 server, per shard inbox depth gauges. Reused (reset) across
    /// repair so the admission state keeps reading live gauges.
    l1_inboxes: Arc<Vec<Vec<Arc<DepthGauge>>>>,
    /// Backpressure admission state (bounded-inbox mode only).
    admission: Option<Admission>,
    /// Structured-event flight recorder shared by every thread of the
    /// cluster (server shards, clients, transport, heal). Disabled — and
    /// ring-free — unless [`ClusterOptions::trace`] is set.
    recorder: Arc<FlightRecorder>,
    /// Always-on latency histograms and cache counters, recorded by
    /// clients and snapshotted through [`crate::api::Admin::metrics`].
    obs: Arc<ObsMetrics>,
}

/// Spawns the worker-shard threads of one L1 server (fresh or replacement).
#[allow(clippy::too_many_arguments)]
fn spawn_l1_shards(
    j: usize,
    pid: ProcessId,
    params: SystemParams,
    membership: &Membership,
    backend: &Arc<dyn BackendCodec>,
    options: &ClusterOptions,
    router: &Router,
    started: Instant,
    beat: &Arc<AtomicU64>,
    stats: &[Arc<ShardStats>],
    recorder: &Arc<FlightRecorder>,
    inboxes: Vec<Inbox>,
    rebuild: Option<(usize, ProcessId)>,
) -> Vec<JoinHandle<()>> {
    // A fresh (or replacement) server counts as beating from the moment it
    // spawns, so the heartbeat monitor never suspects a server for the gap
    // between spawn and its first wake-up.
    beat.store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
    let mut handles = Vec::with_capacity(inboxes.len());
    for (s, inbox) in inboxes.into_iter().enumerate() {
        let server = match rebuild {
            None => L1Server::new(
                j,
                params,
                membership.clone(),
                Arc::clone(backend),
                options.l1,
            ),
            Some((expected_dones, report_to)) => L1Server::rebuilding(
                j,
                params,
                membership.clone(),
                Arc::clone(backend),
                options.l1,
                expected_dones,
                report_to,
            ),
        };
        let stats = Arc::clone(&stats[s]);
        let trace = recorder.handle();
        let router = router.clone();
        let beat = Arc::clone(beat);
        handles.push(
            std::thread::Builder::new()
                .name(format!("lds-l1-{j}.{s}"))
                .spawn(move || {
                    let obs = NodeObs::new(trace, Arc::clone(&stats));
                    // Previously published internals counters, so tracing
                    // can emit per-wake-up *deltas* as coarse events (the
                    // hot path itself is never touched).
                    let mut prev = L1ObsCounters::default();
                    run_node(
                        server,
                        pid,
                        router,
                        inbox,
                        started,
                        beat,
                        obs,
                        move |p: &L1Server, obs: &mut NodeObs| {
                            stats
                                .temp_bytes
                                .store(p.temporary_storage_bytes(), Ordering::Relaxed);
                            stats
                                .metadata_entries
                                .store(p.metadata_entries(), Ordering::Relaxed);
                            stats
                                .peak_round_bytes
                                .store(p.pool_stats().peak_round_bytes, Ordering::Relaxed);
                            let c = p.obs_counters();
                            stats
                                .assemblies_opened
                                .store(c.assemblies_opened, Ordering::Relaxed);
                            stats
                                .assemblies_completed
                                .store(c.assemblies_completed, Ordering::Relaxed);
                            stats
                                .assemblies_dropped
                                .store(c.assembly_parts_dropped, Ordering::Relaxed);
                            stats
                                .gc_evicted_entries
                                .store(c.gc_evicted_entries, Ordering::Relaxed);
                            stats
                                .gc_evicted_bytes
                                .store(c.gc_evicted_bytes, Ordering::Relaxed);
                            if obs.trace.enabled() {
                                let p = pid.0 as u64;
                                let opened = c.assemblies_opened - prev.assemblies_opened;
                                if opened > 0 {
                                    obs.trace.record(EventKind::StripeOpen, p, opened, 0);
                                }
                                let done = c.assemblies_completed - prev.assemblies_completed;
                                if done > 0 {
                                    obs.trace.record(EventKind::StripeComplete, p, done, 0);
                                }
                                let dropped =
                                    c.assembly_parts_dropped - prev.assembly_parts_dropped;
                                if dropped > 0 {
                                    obs.trace.record(EventKind::StripeDrop, p, dropped, 0);
                                }
                                let gc = c.gc_evicted_entries - prev.gc_evicted_entries;
                                if gc > 0 {
                                    obs.trace.record(
                                        EventKind::GcEvict,
                                        p,
                                        gc,
                                        c.gc_evicted_bytes - prev.gc_evicted_bytes,
                                    );
                                }
                                prev = c;
                            }
                        },
                    )
                })
                .expect("spawn L1 thread"),
        );
    }
    handles
}

/// Spawns the worker-shard threads of one L2 server (fresh or replacement).
#[allow(clippy::too_many_arguments)]
fn spawn_l2_shards(
    i: usize,
    pid: ProcessId,
    membership: &Membership,
    backend: &Arc<dyn BackendCodec>,
    options: &ClusterOptions,
    router: &Router,
    started: Instant,
    beat: &Arc<AtomicU64>,
    stats: &[Arc<ShardStats>],
    recorder: &Arc<FlightRecorder>,
    inboxes: Vec<Inbox>,
    rebuild: Option<(usize, ProcessId)>,
) -> Vec<JoinHandle<()>> {
    beat.store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
    let mut handles = Vec::with_capacity(inboxes.len());
    for (s, inbox) in inboxes.into_iter().enumerate() {
        let server = match rebuild {
            None => L2Server::with_options(i, membership.clone(), Arc::clone(backend), options.l2),
            Some((expected_dones, report_to)) => L2Server::rebuilding(
                i,
                membership.clone(),
                Arc::clone(backend),
                options.l2,
                expected_dones,
                report_to,
            ),
        };
        let stats = Arc::clone(&stats[s]);
        let trace = recorder.handle();
        let router = router.clone();
        let beat = Arc::clone(beat);
        handles.push(
            std::thread::Builder::new()
                .name(format!("lds-l2-{i}.{s}"))
                .spawn(move || {
                    let obs = NodeObs::new(trace, Arc::clone(&stats));
                    let mut prev = L2ObsCounters::default();
                    run_node(
                        server,
                        pid,
                        router,
                        inbox,
                        started,
                        beat,
                        obs,
                        move |p: &L2Server, obs: &mut NodeObs| {
                            let c = p.obs_counters();
                            stats
                                .assemblies_opened
                                .store(c.assemblies_opened, Ordering::Relaxed);
                            stats
                                .assemblies_completed
                                .store(c.assemblies_completed, Ordering::Relaxed);
                            stats
                                .assemblies_dropped
                                .store(c.assemblies_dropped, Ordering::Relaxed);
                            if obs.trace.enabled() {
                                let p = pid.0 as u64;
                                let opened = c.assemblies_opened - prev.assemblies_opened;
                                if opened > 0 {
                                    obs.trace.record(EventKind::StripeOpen, p, opened, 0);
                                }
                                let done = c.assemblies_completed - prev.assemblies_completed;
                                if done > 0 {
                                    obs.trace.record(EventKind::StripeComplete, p, done, 0);
                                }
                                let dropped = c.assemblies_dropped - prev.assemblies_dropped;
                                if dropped > 0 {
                                    obs.trace.record(EventKind::StripeDrop, p, dropped, 0);
                                }
                                prev = c;
                            }
                        },
                    )
                })
                .expect("spawn L2 thread"),
        );
    }
    handles
}

impl Cluster {
    /// Starts the cluster with default options (one shard per server).
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot be constructed for `params`.
    #[deprecated(
        since = "0.1.0",
        note = "use lds_cluster::api::StoreBuilder, which validates the whole \
                configuration at build() time and returns a unified StoreHandle"
    )]
    pub fn start(params: SystemParams, backend_kind: BackendKind) -> Arc<Cluster> {
        Cluster::launch(params, backend_kind, ClusterOptions::default())
            .expect("backend construction for validated parameters")
    }

    /// Starts the cluster: spawns `l1_shards` threads per L1 server and
    /// `l2_shards` threads per L2 server.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot be constructed for `params` or a shard
    /// count is zero.
    #[deprecated(
        since = "0.1.0",
        note = "use lds_cluster::api::StoreBuilder, which validates the whole \
                configuration at build() time and returns a unified StoreHandle"
    )]
    pub fn start_with(
        params: SystemParams,
        backend_kind: BackendKind,
        options: ClusterOptions,
    ) -> Arc<Cluster> {
        Cluster::launch(params, backend_kind, options)
            .expect("backend construction for validated parameters")
    }

    /// Engine entry point behind [`crate::api::StoreBuilder`] (and the
    /// deprecated `start`/`start_with` wrappers): boots every server thread
    /// and returns the shared handle, surfacing backend-construction
    /// failures instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if a shard count is zero (the builder validates this before
    /// calling).
    pub(crate) fn launch(
        params: SystemParams,
        backend_kind: BackendKind,
        options: ClusterOptions,
    ) -> Result<Arc<Cluster>, lds_codes::CodeError> {
        Cluster::launch_with_plan(params, backend_kind, options, None)
    }

    /// [`Cluster::launch`] with an optional fault plan: when present the
    /// router is built over a seeded [`SimTransport`](crate::transport::
    /// SimTransport) instead of the default fault-free in-process transport.
    pub(crate) fn launch_with_plan(
        params: SystemParams,
        backend_kind: BackendKind,
        options: ClusterOptions,
        fault_plan: Option<&crate::transport::FaultPlan>,
    ) -> Result<Arc<Cluster>, lds_codes::CodeError> {
        Cluster::launch_inner(params, backend_kind, options, fault_plan, None, None)
    }

    /// Launches a *partial* cluster over an explicit transport: only the
    /// servers named by `scope` get worker threads here; the rest of the
    /// shared membership lives on peer processes reached through
    /// `transport`. Behind
    /// [`StoreBuilder::transport`](crate::api::StoreBuilder::transport).
    pub(crate) fn launch_scoped(
        params: SystemParams,
        backend_kind: BackendKind,
        options: ClusterOptions,
        transport: Arc<dyn crate::transport::Transport>,
        scope: HostScope,
    ) -> Result<Arc<Cluster>, lds_codes::CodeError> {
        Cluster::launch_inner(
            params,
            backend_kind,
            options,
            None,
            Some(transport),
            Some(scope),
        )
    }

    /// The single launch implementation behind [`Cluster::launch_with_plan`]
    /// (every server local) and [`Cluster::launch_scoped`] (a [`HostScope`]
    /// slice over an explicit transport).
    fn launch_inner(
        params: SystemParams,
        backend_kind: BackendKind,
        options: ClusterOptions,
        fault_plan: Option<&crate::transport::FaultPlan>,
        transport: Option<Arc<dyn crate::transport::Transport>>,
        scope: Option<HostScope>,
    ) -> Result<Arc<Cluster>, lds_codes::CodeError> {
        assert!(options.l1_shards > 0, "l1_shards must be at least 1");
        assert!(options.l2_shards > 0, "l2_shards must be at least 1");
        let backend = make_backend(backend_kind, &params)?;
        // Pre-warm the codec's memoized plans (decode / repair inversions for
        // the canonical quorums) so the first client operation runs at
        // steady-state speed.
        backend.warm_plans();
        let recorder = FlightRecorder::new(options.trace, options.trace_events);
        let obs = ObsMetrics::new();
        let l1: Vec<ProcessId> = (0..params.n1()).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (params.n1()..params.n1() + params.n2())
            .map(ProcessId)
            .collect();
        let membership = Membership::new(l1.clone(), l2.clone());
        let router = match (&transport, fault_plan) {
            (Some(transport), _) => Router::with_transport(Arc::clone(transport)),
            (None, None) => Router::new(),
            (None, Some(plan)) => {
                let transport = Arc::new(crate::transport::SimTransport::new(plan, &params));
                if recorder.enabled() {
                    transport.attach_trace(recorder.handle());
                }
                Router::with_transport(transport)
            }
        };
        // Which server pids this process hosts (None = all — the
        // in-process default), and how client numbers are strided.
        let (hosted, client_base, client_step) = match &scope {
            None => (None, 1, 1),
            Some(scope) => {
                let mut set = HashSet::new();
                for &j in &scope.l1 {
                    assert!(j < params.n1(), "scoped L1 index {j} out of range");
                    set.insert(l1[j]);
                }
                for &i in &scope.l2 {
                    assert!(i < params.n2(), "scoped L2 index {i} out of range");
                    set.insert(l2[i]);
                }
                assert!(scope.client_step > 0, "client_step must be non-zero");
                (Some(set), scope.client_base, scope.client_step)
            }
        };
        let is_hosted = |pid: ProcessId| hosted.as_ref().is_none_or(|set| set.contains(&pid));
        let started = Instant::now();
        let mut handles: HashMap<ProcessId, Vec<JoinHandle<()>>> = HashMap::new();
        let mut l1_stats = Vec::with_capacity(params.n1());
        let mut l2_stats = Vec::with_capacity(params.n2());
        let mut l1_inboxes = Vec::with_capacity(params.n1());
        let beats: Vec<Arc<AtomicU64>> = (0..params.n1() + params.n2())
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();

        for (j, &pid) in l1.iter().enumerate() {
            let gauges: Vec<Arc<DepthGauge>> = (0..options.l1_shards)
                .map(|_| Arc::new(DepthGauge::default()))
                .collect();
            let stats: Vec<Arc<ShardStats>> = (0..options.l1_shards)
                .map(|_| Arc::new(ShardStats::default()))
                .collect();
            // Remote servers (scoped deployments) keep their stats/gauge
            // slots — indexed by layer position everywhere — but get no
            // inbox and no threads here.
            if is_hosted(pid) {
                let inboxes = router.register_sharded_with(pid, &gauges);
                handles.insert(
                    pid,
                    spawn_l1_shards(
                        j,
                        pid,
                        params,
                        &membership,
                        &backend,
                        &options,
                        &router,
                        started,
                        &beats[pid.0],
                        &stats,
                        &recorder,
                        inboxes,
                        None,
                    ),
                );
            }
            l1_stats.push(stats);
            l1_inboxes.push(gauges);
        }
        for (i, &pid) in l2.iter().enumerate() {
            let stats: Vec<Arc<ShardStats>> = (0..options.l2_shards)
                .map(|_| Arc::new(ShardStats::default()))
                .collect();
            if is_hosted(pid) {
                let inboxes = router.register_sharded(pid, options.l2_shards);
                handles.insert(
                    pid,
                    spawn_l2_shards(
                        i,
                        pid,
                        &membership,
                        &backend,
                        &options,
                        &router,
                        started,
                        &beats[pid.0],
                        &stats,
                        &recorder,
                        inboxes,
                        None,
                    ),
                );
            }
            l2_stats.push(stats);
        }

        let l1_inboxes = Arc::new(l1_inboxes);
        let admission = options
            .inbox_cap
            .map(|cap| Admission::new(cap, options.l1_shards, &params, Arc::clone(&l1_inboxes)));

        Ok(Arc::new(Cluster {
            params,
            membership,
            backend,
            router,
            handles: Mutex::new(handles),
            killed: Mutex::new(HashMap::new()),
            repairing: Mutex::new(HashSet::new()),
            repair_log: Mutex::new(RepairLog::new(options.repair_log_cap)),
            beats,
            heal: std::sync::OnceLock::new(),
            next_client: AtomicU64::new(client_base),
            client_step,
            hosted,
            started,
            options,
            l1_stats,
            l2_stats,
            l1_inboxes,
            admission,
            recorder,
            obs,
        }))
    }

    /// The cluster's system parameters.
    pub fn params(&self) -> SystemParams {
        self.params
    }

    /// The cluster's membership.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// The options the cluster was started with.
    pub fn options(&self) -> ClusterOptions {
        self.options
    }

    pub(crate) fn router(&self) -> &Router {
        &self.router
    }

    pub(crate) fn backend(&self) -> Arc<dyn BackendCodec> {
        Arc::clone(&self.backend)
    }

    pub(crate) fn elapsed(&self) -> SimTime {
        SimTime::new(self.started.elapsed().as_secs_f64())
    }

    pub(crate) fn admission(&self) -> Option<Admission> {
        self.admission.clone()
    }

    /// The cluster's flight recorder (disabled unless started with
    /// [`ClusterOptions::trace`]).
    pub(crate) fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The cluster's always-on latency/cache metrics registry.
    pub(crate) fn obs_metrics(&self) -> &Arc<ObsMetrics> {
        &self.obs
    }

    /// Server-internals counters aggregated across every shard of both
    /// layers, as last published at idle. Counters of a repaired server
    /// restart from zero (Prometheus-style reset).
    pub(crate) fn server_internals(&self) -> ServerInternals {
        let mut out = ServerInternals::default();
        for stats in self.l1_stats.iter().flatten() {
            out.l1_assemblies_opened += stats.assemblies_opened.load(Ordering::Relaxed);
            out.l1_assemblies_completed += stats.assemblies_completed.load(Ordering::Relaxed);
            out.l1_stripe_parts_dropped += stats.assemblies_dropped.load(Ordering::Relaxed);
            out.gc_evicted_entries += stats.gc_evicted_entries.load(Ordering::Relaxed);
            out.gc_evicted_bytes += stats.gc_evicted_bytes.load(Ordering::Relaxed);
            out.peak_round_bytes = out
                .peak_round_bytes
                .max(stats.peak_round_bytes.load(Ordering::Relaxed));
            for (total, slot) in out.msgs_by_class.iter_mut().zip(&stats.msgs_by_class) {
                *total += slot.load(Ordering::Relaxed);
            }
        }
        for stats in self.l2_stats.iter().flatten() {
            out.l2_assemblies_opened += stats.assemblies_opened.load(Ordering::Relaxed);
            out.l2_assemblies_completed += stats.assemblies_completed.load(Ordering::Relaxed);
            out.l2_assemblies_dropped += stats.assemblies_dropped.load(Ordering::Relaxed);
            for (total, slot) in out.msgs_by_class.iter_mut().zip(&stats.msgs_by_class) {
                *total += slot.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Bytes of values held in the temporary storage of L1 server `index`
    /// (summed over its shards), as last published when the shards idled.
    pub fn l1_temporary_bytes(&self, index: usize) -> usize {
        self.l1_stats[index]
            .iter()
            .map(|s| s.temp_bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-tag metadata entries held by L1 server `index` (summed over its
    /// shards), as last published when the shards idled. Bounded over long
    /// runs thanks to committed-tag garbage collection.
    pub fn l1_metadata_entries(&self, index: usize) -> usize {
        self.l1_stats[index]
            .iter()
            .map(|s| s.metadata_entries.load(Ordering::Relaxed))
            .sum()
    }

    /// Total temporary-storage bytes across every L1 server.
    pub fn total_l1_temporary_bytes(&self) -> usize {
        (0..self.l1_stats.len())
            .map(|j| self.l1_temporary_bytes(j))
            .sum()
    }

    /// Total per-tag metadata entries across every L1 server.
    pub fn total_l1_metadata_entries(&self) -> usize {
        (0..self.l1_stats.len())
            .map(|j| self.l1_metadata_entries(j))
            .sum()
    }

    /// Messages currently queued in the inboxes of L1 server `index`
    /// (summed over its worker shards).
    pub fn l1_inbox_depth(&self, index: usize) -> usize {
        self.l1_inboxes[index].iter().map(|d| d.current()).sum()
    }

    /// The largest queue length any single worker-shard inbox of L1 server
    /// `index` has ever reached. In bounded-inbox mode the cross-shard
    /// stress tests assert this against
    /// `inbox_cap × `[`msgs_per_op_bound`]` × 2` (admission stops below
    /// `cap × bound` queued messages, and the at-most-`cap` admitted
    /// operations in flight can each add one more complement).
    pub fn l1_max_inbox_depth(&self, index: usize) -> usize {
        self.l1_inboxes[index]
            .iter()
            .map(|d| d.max_seen())
            .max()
            .unwrap_or(0)
    }

    /// The configured bounded-inbox admission cap, if any.
    pub fn inbox_cap(&self) -> Option<usize> {
        self.options.inbox_cap
    }

    /// Client operations currently admitted on L1 partition `shard`
    /// (bounded-inbox mode only; zero otherwise). Never exceeds
    /// [`Cluster::inbox_cap`].
    pub fn l1_admitted_ops(&self, shard: usize) -> usize {
        self.admission
            .as_ref()
            .map(|a| a.admitted_on(shard))
            .unwrap_or(0)
    }

    /// Creates a client handle with the cluster's default pipeline depth.
    ///
    /// The handle supports both the blocking [`ClusterClient::write`] /
    /// [`ClusterClient::read`] calls and the pipelined
    /// [`ClusterClient::submit_write`] / [`ClusterClient::submit_read`] /
    /// [`ClusterClient::wait_all`] API. Each client gets a fresh client id
    /// and its own inbox.
    pub fn client(self: &Arc<Self>) -> ClusterClient {
        self.client_with_depth(self.options.pipeline_depth)
    }

    /// Creates a client handle that keeps at most `depth` operations in
    /// flight.
    pub fn client_with_depth(self: &Arc<Self>, depth: usize) -> ClusterClient {
        let client_number = self
            .next_client
            .fetch_add(self.client_step, Ordering::Relaxed);
        let client_id = ClientId(client_number);
        // Client process ids live above all server ids.
        let pid = ProcessId(self.params.n1() + self.params.n2() + client_number as usize);
        let inbox = self.router.register(pid);
        ClusterClient::new(Arc::clone(self), client_id, pid, inbox, depth)
    }

    /// Engine crash injection: stops every worker shard of the server with
    /// layer index `index`. The server can later be regenerated online
    /// through [`Cluster::repair_server`].
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub(crate) fn kill_server(&self, layer: RepairLayer, index: usize) {
        let pid = match layer {
            RepairLayer::L1 => self.membership.l1[index],
            RepairLayer::L2 => self.membership.l2[index],
        };
        *self.killed.lock().entry(pid).or_insert(0) += 1;
        self.router.send_stop(pid);
    }

    /// Whether the server with layer index `index` is live (never killed, or
    /// killed and successfully repaired).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub(crate) fn server_is_live(&self, layer: RepairLayer, index: usize) -> bool {
        let pid = match layer {
            RepairLayer::L1 => self.membership.l1[index],
            RepairLayer::L2 => self.membership.l2[index],
        };
        !self.killed.lock().contains_key(&pid)
    }

    /// Engine entry point for online repair of either layer: regenerates the
    /// killed server `index` while client traffic keeps flowing and records
    /// the report in the cluster's repair log. This is the single
    /// implementation behind [`crate::api::Admin::repair`] and the
    /// deprecated `repair_l1` / `repair_l2` wrappers of both [`Cluster`] and
    /// [`crate::ShardedCluster`].
    pub(crate) fn repair_server(
        &self,
        layer: RepairLayer,
        index: usize,
    ) -> Result<RepairReport, RepairError> {
        self.repair_server_with(layer, index, None)
    }

    /// [`Cluster::repair_server`] with an optional per-call timeout override
    /// of [`ClusterOptions::repair_timeout`] (`None` uses the configured
    /// value). Behind [`crate::api::Admin::repair_with_timeout`].
    pub(crate) fn repair_server_with(
        &self,
        layer: RepairLayer,
        index: usize,
        timeout: Option<Duration>,
    ) -> Result<RepairReport, RepairError> {
        let timeout = timeout.unwrap_or(self.options.repair_timeout);
        let report = crate::repair::repair_server(self, layer, index, timeout)?;
        self.repair_log.lock().push(report.clone());
        Ok(report)
    }

    /// The most recent successful repairs of this cluster (up to
    /// [`ClusterOptions::repair_log_cap`]), in completion order.
    pub(crate) fn repair_log(&self) -> Vec<RepairReport> {
        self.repair_log.lock().reports.iter().cloned().collect()
    }

    /// Reports evicted from the bounded repair log so far.
    pub(crate) fn repair_reports_dropped(&self) -> u64 {
        self.repair_log.lock().dropped
    }

    /// Successful repairs since launch — retained reports plus evicted ones,
    /// so the count stays exact however small the log cap is.
    pub(crate) fn repairs_completed(&self) -> u64 {
        let log = self.repair_log.lock();
        log.dropped + log.reports.len() as u64
    }

    /// Kills the L1 server with code index `index` (crash failure): every
    /// shard stops.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[deprecated(
        since = "0.1.0",
        note = "use lds_cluster::api::Admin::kill with ServerRef::l1(index)"
    )]
    pub fn kill_l1(&self, index: usize) {
        self.kill_server(RepairLayer::L1, index);
    }

    /// Kills the L2 server with index `index` (crash failure): every shard
    /// stops.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[deprecated(
        since = "0.1.0",
        note = "use lds_cluster::api::Admin::kill with ServerRef::l2(index)"
    )]
    pub fn kill_l2(&self, index: usize) {
        self.kill_server(RepairLayer::L2, index);
    }

    /// Whether the L1 server with code index `index` is live (never killed,
    /// or killed and successfully repaired).
    #[deprecated(
        since = "0.1.0",
        note = "use lds_cluster::api::Admin::is_live / Admin::liveness"
    )]
    pub fn l1_is_live(&self, index: usize) -> bool {
        self.server_is_live(RepairLayer::L1, index)
    }

    /// Whether the L2 server with index `index` is live.
    #[deprecated(
        since = "0.1.0",
        note = "use lds_cluster::api::Admin::is_live / Admin::liveness"
    )]
    pub fn l2_is_live(&self, index: usize) -> bool {
        self.server_is_live(RepairLayer::L2, index)
    }

    /// Regenerates the killed L1 server `index` **online** (metadata
    /// reconstruction from live peers), restoring the `f1` failure budget.
    ///
    /// # Errors
    ///
    /// [`RepairError::NotCrashed`] if the server was not killed,
    /// [`RepairError::TooFewHelpers`] if the live peers cannot cover the
    /// reconstruction, [`RepairError::Timeout`] if the repair stalls (the
    /// target is returned to the crashed state).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[deprecated(
        since = "0.1.0",
        note = "use lds_cluster::api::Admin::repair with ServerRef::l1(index)"
    )]
    pub fn repair_l1(&self, index: usize) -> Result<RepairReport, RepairError> {
        self.repair_server(RepairLayer::L1, index)
    }

    /// Regenerates the killed L2 server `index` **online** at the backend's
    /// repair bandwidth (MBR ships `β`-sized helper symbols), restoring the
    /// `f2` failure budget.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::repair_l1`].
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[deprecated(
        since = "0.1.0",
        note = "use lds_cluster::api::Admin::repair with ServerRef::l2(index)"
    )]
    pub fn repair_l2(&self, index: usize) -> Result<RepairReport, RepairError> {
        self.repair_server(RepairLayer::L2, index)
    }

    /// The control-plane handle for this cluster: crash injection, online
    /// repair, liveness, inbox-depth probes and a metrics snapshot through
    /// one [`crate::api::Admin`] facade.
    pub fn admin(self: &Arc<Self>) -> crate::api::Admin {
        crate::api::Admin::for_cluster(Arc::clone(self))
    }

    /// The backend kind this cluster encodes with.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Stops every server thread and waits for them to exit, then stops the
    /// transport's background machinery (a fault-injecting transport runs a
    /// delay pump; pending held messages are discarded).
    pub fn shutdown(&self) {
        for &pid in self.membership.l1.iter().chain(self.membership.l2.iter()) {
            // Scoped deployments stop only their own servers; peers own
            // (and stop) theirs.
            if self.hosts_server(pid) {
                self.router.send_stop(pid);
            }
        }
        let mut handles = self.handles.lock();
        for (_, server_handles) in handles.drain() {
            for handle in server_handles {
                let _ = handle.join();
            }
        }
        drop(handles);
        self.router.transport().shutdown();
    }

    /// Counters of every fault the cluster's transport has injected so far
    /// (all zero on the default in-process transport).
    pub fn fault_counters(&self) -> crate::transport::FaultCounters {
        self.router.transport().fault_counters()
    }

    // ------------------------------------------------------------------
    // Crate-internal hooks for the repair coordinator (see `repair.rs`).
    // ------------------------------------------------------------------

    /// Takes (and thereby claims) the join handles of one server process.
    pub(crate) fn take_handles(&self, pid: ProcessId) -> Option<Vec<JoinHandle<()>>> {
        self.handles.lock().remove(&pid)
    }

    pub(crate) fn store_handles(&self, pid: ProcessId, handles: Vec<JoinHandle<()>>) {
        self.handles.lock().insert(pid, handles);
    }

    pub(crate) fn killed_set(&self) -> &Mutex<HashMap<ProcessId, u64>> {
        &self.killed
    }

    pub(crate) fn repairing_set(&self) -> &Mutex<HashSet<ProcessId>> {
        &self.repairing
    }

    /// Allocates a fresh process id above all server and client ids (repair
    /// coordinators draw from the same number space as clients).
    pub(crate) fn alloc_aux_pid(&self) -> ProcessId {
        let n = self
            .next_client
            .fetch_add(self.client_step, Ordering::Relaxed);
        ProcessId(self.params.n1() + self.params.n2() + n as usize)
    }

    /// Whether this process hosts the worker threads of server `pid`
    /// (always true on an in-process deployment; a scoped multi-daemon
    /// deployment hosts only its [`HostScope`] slice).
    pub(crate) fn hosts_server(&self, pid: ProcessId) -> bool {
        self.hosted.as_ref().is_none_or(|set| set.contains(&pid))
    }

    // ------------------------------------------------------------------
    // Crate-internal hooks for the self-healing control plane (`heal`).
    // ------------------------------------------------------------------

    /// Attaches the self-healing bookkeeping (suspicion flags, heal
    /// counters, per-target backoffs). Set at most once, by the builder,
    /// before any monitor thread starts; later calls are ignored.
    pub(crate) fn attach_heal(&self, state: Arc<crate::heal::HealState>) {
        let _ = self.heal.set(state);
    }

    /// The attached self-healing state, if the deployment was built with
    /// the `self_heal` profile.
    pub(crate) fn heal_state(&self) -> Option<&Arc<crate::heal::HealState>> {
        self.heal.get()
    }

    /// The process id of the server with layer index `index`.
    pub(crate) fn server_pid(&self, layer: RepairLayer, index: usize) -> ProcessId {
        match layer {
            RepairLayer::L1 => self.membership.l1[index],
            RepairLayer::L2 => self.membership.l2[index],
        }
    }

    /// Microseconds since cluster start — the clock the beat slots use.
    pub(crate) fn now_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// The last beat published by any worker shard of `pid` (microseconds
    /// since cluster start).
    pub(crate) fn beat_micros(&self, pid: ProcessId) -> u64 {
        self.beats[pid.0].load(Ordering::Relaxed)
    }

    /// Sends a liveness probe to every worker shard of `pid` (dropped if the
    /// server crashed — exactly how its beat goes stale).
    pub(crate) fn ping_server(&self, pid: ProcessId) {
        self.router.send_ping(pid);
    }

    /// Whether `server` is live *as observed*: the heartbeat monitor's
    /// (non-)suspicion when the self-healing control plane is attached, the
    /// engine's crash-injection ground truth otherwise. This is what
    /// [`crate::api::Admin::liveness`] reports; [`crate::api::Admin::is_live`]
    /// always reads the ground truth.
    pub(crate) fn server_is_live_observed(&self, layer: RepairLayer, index: usize) -> bool {
        match self.heal.get() {
            Some(state) => !state.is_suspected(self.server_pid(layer, index)),
            None => self.server_is_live(layer, index),
        }
    }

    /// Live (never-killed or repaired) servers in `layer`, by ground truth.
    pub(crate) fn layer_live_count(&self, layer: RepairLayer) -> usize {
        let peers = match layer {
            RepairLayer::L1 => &self.membership.l1,
            RepairLayer::L2 => &self.membership.l2,
        };
        let killed = self.killed.lock();
        peers.iter().filter(|p| !killed.contains_key(p)).count()
    }

    /// Live helpers a repair in `layer` needs (1 metadata peer for L1, the
    /// backend's repair threshold for L2).
    pub(crate) fn repair_quorum(&self, layer: RepairLayer) -> usize {
        match layer {
            RepairLayer::L1 => 1,
            RepairLayer::L2 => self.backend.repair_threshold(),
        }
    }

    /// Re-registers and respawns the killed server `pid` as a rebuilding
    /// replacement, reusing its depth gauges and stats slots.
    pub(crate) fn respawn_rebuilding(
        &self,
        layer: RepairLayer,
        index: usize,
        expected_dones: usize,
        report_to: ProcessId,
    ) {
        match layer {
            RepairLayer::L1 => {
                let pid = self.membership.l1[index];
                let gauges = &self.l1_inboxes[index];
                let inboxes = self.router.register_sharded_with(pid, gauges);
                let handles = spawn_l1_shards(
                    index,
                    pid,
                    self.params,
                    &self.membership,
                    &self.backend,
                    &self.options,
                    &self.router,
                    self.started,
                    &self.beats[pid.0],
                    &self.l1_stats[index],
                    &self.recorder,
                    inboxes,
                    Some((expected_dones, report_to)),
                );
                self.store_handles(pid, handles);
            }
            RepairLayer::L2 => {
                let pid = self.membership.l2[index];
                let inboxes = self.router.register_sharded(pid, self.options.l2_shards);
                let handles = spawn_l2_shards(
                    index,
                    pid,
                    &self.membership,
                    &self.backend,
                    &self.options,
                    &self.router,
                    self.started,
                    &self.beats[pid.0],
                    &self.l2_stats[index],
                    &self.recorder,
                    inboxes,
                    Some((expected_dones, report_to)),
                );
                self.store_handles(pid, handles);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The deprecated pre-facade entry points must keep working until they
    /// are removed — this is the ONE in-repo call site that exercises them
    /// on purpose (everything else goes through `api::StoreBuilder` /
    /// `api::Admin`; CI's `-D deprecated` step enforces that).
    #[test]
    #[allow(deprecated)]
    fn deprecated_compat_wrappers_still_work() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::start(params, BackendKind::Replication);
        let mut client = cluster.client();
        client.write(0, b"compat".to_vec()).unwrap();
        cluster.kill_l2(1);
        assert!(!cluster.l2_is_live(1));
        cluster.repair_l2(1).unwrap();
        assert!(cluster.l2_is_live(1));
        cluster.kill_l1(0);
        assert!(!cluster.l1_is_live(0));
        cluster.repair_l1(0).unwrap();
        assert!(cluster.l1_is_live(0));
        assert_eq!(client.read(0).unwrap(), b"compat");
        drop(client);
        cluster.shutdown();

        let sharded = crate::ShardedCluster::start_with(
            2,
            params,
            BackendKind::Replication,
            ClusterOptions::default(),
        );
        let mut client = sharded.client();
        client.write(3, b"sharded compat".to_vec()).unwrap();
        sharded.shard(1).kill_l2(0);
        sharded.repair_l2(1, 0).unwrap();
        assert_eq!(client.read(3).unwrap(), b"sharded compat");
        drop(client);
        sharded.shutdown();
    }

    #[test]
    fn cluster_starts_and_shuts_down() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::launch(params, BackendKind::Mbr, ClusterOptions::default()).unwrap();
        assert_eq!(cluster.params().n1(), 4);
        assert_eq!(cluster.membership().n2(), 5);
        assert_eq!(cluster.router().len(), 9);
        cluster.shutdown();
        // All server inboxes are deregistered after shutdown.
        assert_eq!(cluster.router().len(), 0);
    }

    #[test]
    fn sharded_cluster_starts_and_shuts_down() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::launch(
            params,
            BackendKind::Mbr,
            ClusterOptions {
                l1_shards: 4,
                l2_shards: 2,
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        // Shards do not change the process count.
        assert_eq!(cluster.router().len(), 9);
        let mut client = cluster.client();
        client.write(11, b"sharded".to_vec()).unwrap();
        assert_eq!(client.read(11).unwrap(), b"sharded");
        drop(client);
        cluster.shutdown();
        assert_eq!(cluster.router().len(), 0);
    }

    #[test]
    fn stats_probes_publish_after_idle() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster =
            Cluster::launch(params, BackendKind::Replication, ClusterOptions::default()).unwrap();
        let mut client = cluster.client();
        for i in 0..5u64 {
            client.write(i, vec![7u8; 64]).unwrap();
        }
        // Give the shards a moment to drain their inboxes and publish.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let entries = cluster.total_l1_metadata_entries();
        assert!(entries > 0, "metadata probe never published");
        drop(client);
        cluster.shutdown();
    }

    #[test]
    fn kill_and_repair_l2_restores_budget() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::launch(params, BackendKind::Mbr, ClusterOptions::default()).unwrap();
        let mut client = cluster.client();
        for obj in 0..4u64 {
            client
                .write(obj, format!("pre-crash {obj}").into_bytes())
                .unwrap();
        }
        // A live server cannot be "repaired".
        assert!(matches!(
            cluster.repair_server(RepairLayer::L2, 1),
            Err(crate::RepairError::NotCrashed)
        ));
        cluster.kill_server(RepairLayer::L2, 1);
        assert!(!cluster.server_is_live(RepairLayer::L2, 1));
        client.write(9, b"during the outage".to_vec()).unwrap();

        let report = cluster
            .repair_server(RepairLayer::L2, 1)
            .expect("repair succeeds");
        assert!(cluster.server_is_live(RepairLayer::L2, 1));
        assert_eq!(report.index, 1);
        assert_eq!(report.helpers, 4);
        assert!(report.objects >= 1, "committed objects regenerated");
        assert!(
            report.bytes_total < report.fallback_bytes,
            "MBR repair moves less than the full-element fallback: {} vs {}",
            report.bytes_total,
            report.fallback_bytes
        );
        // Budget restored: a *different* L2 crash is tolerated again.
        cluster.kill_server(RepairLayer::L2, 3);
        client.write(2, b"after repair".to_vec()).unwrap();
        assert_eq!(client.read(2).unwrap(), b"after repair");
        drop(client);
        cluster.shutdown();
    }

    #[test]
    fn kill_and_repair_l1_restores_budget() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::launch(
            params,
            BackendKind::Replication,
            ClusterOptions {
                l1_shards: 2,
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        let mut client = cluster.client();
        for obj in 0..6u64 {
            client
                .write(obj, format!("metadata {obj}").into_bytes())
                .unwrap();
        }
        cluster.kill_server(RepairLayer::L1, 0);
        client.write(7, b"written while down".to_vec()).unwrap();

        let report = cluster
            .repair_server(RepairLayer::L1, 0)
            .expect("repair succeeds");
        assert_eq!(report.layer, crate::RepairLayer::L1);
        assert!(report.objects >= 6, "all written objects reconstructed");
        // Budget restored: a different L1 crash is tolerated again.
        cluster.kill_server(RepairLayer::L1, 2);
        for obj in 0..6u64 {
            assert_eq!(
                client.read(obj).unwrap(),
                format!("metadata {obj}").into_bytes()
            );
        }
        drop(client);
        cluster.shutdown();
    }

    #[test]
    fn concurrent_repairs_of_one_server_take_a_single_claim() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster =
            Cluster::launch(params, BackendKind::Replication, ClusterOptions::default()).unwrap();
        let mut client = cluster.client();
        for obj in 0..3u64 {
            client.write(obj, vec![obj as u8; 32]).unwrap();
        }
        cluster.kill_server(RepairLayer::L2, 2);
        // Two coordinators race on the same repair: exactly one drives it;
        // the loser is refused (claim held) or finds the server already
        // repaired (claim released after the winner finished).
        let racers: Vec<_> = (0..2)
            .map(|_| {
                let cluster = Arc::clone(&cluster);
                std::thread::spawn(move || cluster.repair_server(RepairLayer::L2, 2))
            })
            .collect();
        let outcomes: Vec<_> = racers.into_iter().map(|h| h.join().unwrap()).collect();
        let ok = outcomes.iter().filter(|o| o.is_ok()).count();
        assert_eq!(ok, 1, "exactly one concurrent repair wins: {outcomes:?}");
        assert!(outcomes.iter().any(|o| matches!(
            o,
            Err(crate::RepairError::RepairInProgress) | Err(crate::RepairError::NotCrashed)
        )));
        // The survivor is healthy: budget restored, traffic flows.
        assert!(cluster.server_is_live(RepairLayer::L2, 2));
        cluster.kill_server(RepairLayer::L2, 0);
        client.write(9, b"post-race".to_vec()).unwrap();
        assert_eq!(client.read(9).unwrap(), b"post-race");
        drop(client);
        cluster.shutdown();
    }

    #[test]
    fn admission_grants_turns_fairly() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let depths: Arc<Vec<Vec<Arc<DepthGauge>>>> =
            Arc::new(vec![vec![Arc::new(DepthGauge::default())]]);
        let admission = Admission::new(1, 1, &params, depths);
        let obj = ObjectId(0);
        assert!(admission.try_admit(1, obj, true), "empty queue: admitted");
        assert!(!admission.try_admit(2, obj, true), "no budget: queued");
        assert!(
            !admission.try_admit(3, obj, false),
            "greedy refused, not queued"
        );
        admission.release(obj);
        assert!(
            !admission.try_admit(3, obj, false),
            "freed budget is reserved for the queued client"
        );
        assert!(admission.try_admit(2, obj, true), "queued client's turn");
        admission.release(obj);
        assert!(
            admission.try_admit(3, obj, false),
            "queue drained: greedy admitted again"
        );
        admission.release(obj);
        // A waiter that vanishes (cancel/drop) must not wedge the queue.
        assert!(admission.try_admit(4, obj, true));
        assert!(!admission.try_admit(5, obj, true));
        admission.forget(5);
        admission.release(obj);
        assert!(
            admission.try_admit(6, obj, true),
            "forgotten waiter does not block the turn order"
        );
    }

    #[test]
    fn bounded_cluster_round_trips_and_tracks_admission() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::launch(
            params,
            BackendKind::Replication,
            ClusterOptions {
                inbox_cap: Some(2),
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        assert_eq!(cluster.inbox_cap(), Some(2));
        let mut client = cluster.client();
        for i in 0..6u64 {
            client
                .write(i, format!("bounded {i}").into_bytes())
                .unwrap();
            assert_eq!(client.read(i).unwrap(), format!("bounded {i}").into_bytes());
        }
        // Blocking operations complete one at a time: the budget drains back
        // to zero between them.
        assert_eq!(cluster.l1_admitted_ops(0), 0);
        drop(client);
        cluster.shutdown();
    }

    #[test]
    fn inbox_depth_probes_settle_to_zero() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster =
            Cluster::launch(params, BackendKind::Replication, ClusterOptions::default()).unwrap();
        let mut client = cluster.client();
        for i in 0..8u64 {
            client.submit_write(i, vec![3u8; 32]);
        }
        client.wait_all().unwrap();
        // Everything the workload enqueued was eventually claimed.
        std::thread::sleep(std::time::Duration::from_millis(100));
        for j in 0..cluster.params().n1() {
            assert_eq!(cluster.l1_inbox_depth(j), 0, "server {j} inbox drained");
            assert!(
                cluster.l1_max_inbox_depth(j) > 0,
                "high-water mark recorded"
            );
        }
        drop(client);
        cluster.shutdown();
    }
}
