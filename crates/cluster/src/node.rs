//! Server node threads and the [`Cluster`] handle.
//!
//! Each L1/L2 server process may run as several *worker shards*: identical
//! automaton instances that own disjoint partitions of the object space
//! (hash-routed by the [`Router`]). The LDS protocol keeps all per-object
//! state inside the server's per-object map, so cross-shard invariants are
//! trivial — a shard simply never sees messages for objects it does not own
//! — and independent objects are processed in parallel inside one node.

use crate::client::ClusterClient;
use crate::router::{Envelope, Router};
use lds_core::backend::{make_backend, BackendCodec, BackendKind};
use lds_core::membership::Membership;
use lds_core::messages::{LdsMessage, ProtocolEvent};
use lds_core::params::SystemParams;
use lds_core::server1::{L1Options, L1Server};
use lds_core::server2::{L2Options, L2Server};
use lds_core::tag::ClientId;
use lds_sim::{Context, Process, ProcessId, SimTime};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for a [`Cluster`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterOptions {
    /// Worker shards per L1 server. Each shard owns a disjoint object
    /// partition; `1` reproduces the original single-threaded server.
    pub l1_shards: usize,
    /// Worker shards per L2 server.
    pub l2_shards: usize,
    /// L1 server protocol options.
    pub l1: L1Options,
    /// L2 server protocol options.
    pub l2: L2Options,
    /// Default maximum number of operations a client created by
    /// [`Cluster::client`] keeps in flight.
    pub pipeline_depth: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            l1_shards: 1,
            l2_shards: 1,
            l1: L1Options::default(),
            l2: L2Options::default(),
            pipeline_depth: 16,
        }
    }
}

impl ClusterOptions {
    /// The high-throughput profile: every protocol-cost knob flipped towards
    /// fewer messages per operation (direct COMMIT-TAG broadcast, inline
    /// self-delivery, committed-value caching, `f1 + 1` offloaders, no L2
    /// write acks) plus `shards` worker shards per server. Paper-exact cost
    /// accounting is traded away; atomicity is not (see the stress tests).
    pub fn high_throughput(shards: usize) -> Self {
        ClusterOptions {
            l1_shards: shards,
            l2_shards: shards,
            l1: L1Options {
                direct_broadcast: true,
                cache_committed_value: true,
                frugal_offload: true,
                inline_self_broadcast: true,
            },
            l2: L2Options {
                ack_code_elem: false,
            },
            pipeline_depth: 32,
        }
    }
}

/// Occupancy numbers one server shard publishes whenever its inbox drains
/// (so reading them never contends with the protocol hot path).
#[derive(Default)]
struct ShardStats {
    temp_bytes: AtomicUsize,
    metadata_entries: AtomicUsize,
}

/// Drives one server automaton from its inbox until a stop request arrives.
///
/// The outgoing/events buffers are allocated once and reused for every step,
/// and outgoing messages are flushed as one batch per step (one routing-epoch
/// check instead of one table lookup per recipient).
fn run_node<P>(
    mut process: P,
    pid: ProcessId,
    router: Router,
    inbox: crossbeam::channel::Receiver<Envelope>,
    started: Instant,
    publish: impl Fn(&P),
) where
    P: Process<LdsMessage, ProtocolEvent>,
{
    let mut handle = router.handle();
    let mut outgoing: Vec<(ProcessId, LdsMessage)> = Vec::with_capacity(64);
    let mut events: Vec<(SimTime, ProcessId, ProtocolEvent)> = Vec::new();

    /// Processes one protocol message.
    #[allow(clippy::too_many_arguments)]
    fn step<P: Process<LdsMessage, ProtocolEvent>>(
        process: &mut P,
        pid: ProcessId,
        now: SimTime,
        handle: &mut crate::router::RouterHandle,
        outgoing: &mut Vec<(ProcessId, LdsMessage)>,
        events: &mut Vec<(SimTime, ProcessId, ProtocolEvent)>,
        from: ProcessId,
        msg: LdsMessage,
    ) {
        let mut ctx = Context::standalone(pid, now, outgoing, events);
        process.on_message(from, msg, &mut ctx);
        handle.send_batch(pid, outgoing.drain(..));
        // Server automata do not emit client events.
        events.clear();
    }

    'run: loop {
        // Only blocked (idle) shards publish stats, so probing them never
        // contends with the protocol hot path.
        publish(&process);
        let first = match inbox.recv() {
            Ok(e) => e,
            Err(_) => break 'run,
        };
        // One timestamp per batch: the clock feeds event timestamps only,
        // and a batch is processed within microseconds.
        let now = SimTime::new(started.elapsed().as_secs_f64());
        match first {
            Envelope::Stop => break 'run,
            Envelope::Protocol { from, msg } => {
                step(
                    &mut process,
                    pid,
                    now,
                    &mut handle,
                    &mut outgoing,
                    &mut events,
                    from,
                    msg,
                );
            }
        }
        // Drain the backlog as one batch: a single channel-lock acquisition
        // claims every queued message.
        let mut stop = false;
        for envelope in inbox.try_iter() {
            match envelope {
                Envelope::Stop => {
                    stop = true;
                    break;
                }
                Envelope::Protocol { from, msg } => {
                    step(
                        &mut process,
                        pid,
                        now,
                        &mut handle,
                        &mut outgoing,
                        &mut events,
                        from,
                        msg,
                    );
                }
            }
        }
        if stop {
            break 'run;
        }
    }
    publish(&process);
    router.deregister(pid);
}

/// A running in-process LDS cluster: `n1 + n2` server processes (each split
/// into one or more worker shard threads) plus any number of clients created
/// through [`Cluster::client`].
pub struct Cluster {
    params: SystemParams,
    membership: Membership,
    backend: Arc<dyn BackendCodec>,
    router: Router,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_client: AtomicU64,
    started: Instant,
    options: ClusterOptions,
    /// Per L1 server, per shard occupancy stats.
    l1_stats: Vec<Vec<Arc<ShardStats>>>,
}

impl Cluster {
    /// Starts the cluster with default options (one shard per server).
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot be constructed for `params`.
    pub fn start(params: SystemParams, backend_kind: BackendKind) -> Arc<Cluster> {
        Cluster::start_with(params, backend_kind, ClusterOptions::default())
    }

    /// Starts the cluster: spawns `l1_shards` threads per L1 server and
    /// `l2_shards` threads per L2 server.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot be constructed for `params` or a shard
    /// count is zero.
    pub fn start_with(
        params: SystemParams,
        backend_kind: BackendKind,
        options: ClusterOptions,
    ) -> Arc<Cluster> {
        assert!(options.l1_shards > 0, "l1_shards must be at least 1");
        assert!(options.l2_shards > 0, "l2_shards must be at least 1");
        let backend = make_backend(backend_kind, &params)
            .expect("backend construction for validated parameters");
        // Pre-warm the codec's memoized plans (decode / repair inversions for
        // the canonical quorums) so the first client operation runs at
        // steady-state speed.
        backend.warm_plans();
        let l1: Vec<ProcessId> = (0..params.n1()).map(ProcessId).collect();
        let l2: Vec<ProcessId> = (params.n1()..params.n1() + params.n2())
            .map(ProcessId)
            .collect();
        let membership = Membership::new(l1.clone(), l2.clone());
        let router = Router::new();
        let started = Instant::now();
        let mut handles =
            Vec::with_capacity(params.n1() * options.l1_shards + params.n2() * options.l2_shards);
        let mut l1_stats = Vec::with_capacity(params.n1());

        for (j, &pid) in l1.iter().enumerate() {
            let inboxes = router.register_sharded(pid, options.l1_shards);
            let mut shard_stats = Vec::with_capacity(options.l1_shards);
            for (s, inbox) in inboxes.into_iter().enumerate() {
                let server = L1Server::new(
                    j,
                    params,
                    membership.clone(),
                    Arc::clone(&backend),
                    options.l1,
                );
                let stats = Arc::new(ShardStats::default());
                shard_stats.push(Arc::clone(&stats));
                let router = router.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("lds-l1-{j}.{s}"))
                        .spawn(move || {
                            run_node(server, pid, router, inbox, started, move |p: &L1Server| {
                                stats
                                    .temp_bytes
                                    .store(p.temporary_storage_bytes(), Ordering::Relaxed);
                                stats
                                    .metadata_entries
                                    .store(p.metadata_entries(), Ordering::Relaxed);
                            })
                        })
                        .expect("spawn L1 thread"),
                );
            }
            l1_stats.push(shard_stats);
        }
        for (i, &pid) in l2.iter().enumerate() {
            let inboxes = router.register_sharded(pid, options.l2_shards);
            for (s, inbox) in inboxes.into_iter().enumerate() {
                let server =
                    L2Server::with_options(i, membership.clone(), Arc::clone(&backend), options.l2);
                let router = router.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("lds-l2-{i}.{s}"))
                        .spawn(move || run_node(server, pid, router, inbox, started, |_| {}))
                        .expect("spawn L2 thread"),
                );
            }
        }

        Arc::new(Cluster {
            params,
            membership,
            backend,
            router,
            handles: Mutex::new(handles),
            next_client: AtomicU64::new(1),
            started,
            options,
            l1_stats,
        })
    }

    /// The cluster's system parameters.
    pub fn params(&self) -> SystemParams {
        self.params
    }

    /// The cluster's membership.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// The options the cluster was started with.
    pub fn options(&self) -> ClusterOptions {
        self.options
    }

    pub(crate) fn router(&self) -> &Router {
        &self.router
    }

    pub(crate) fn backend(&self) -> Arc<dyn BackendCodec> {
        Arc::clone(&self.backend)
    }

    pub(crate) fn elapsed(&self) -> SimTime {
        SimTime::new(self.started.elapsed().as_secs_f64())
    }

    /// Bytes of values held in the temporary storage of L1 server `index`
    /// (summed over its shards), as last published when the shards idled.
    pub fn l1_temporary_bytes(&self, index: usize) -> usize {
        self.l1_stats[index]
            .iter()
            .map(|s| s.temp_bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-tag metadata entries held by L1 server `index` (summed over its
    /// shards), as last published when the shards idled. Bounded over long
    /// runs thanks to committed-tag garbage collection.
    pub fn l1_metadata_entries(&self, index: usize) -> usize {
        self.l1_stats[index]
            .iter()
            .map(|s| s.metadata_entries.load(Ordering::Relaxed))
            .sum()
    }

    /// Total temporary-storage bytes across every L1 server.
    pub fn total_l1_temporary_bytes(&self) -> usize {
        (0..self.l1_stats.len())
            .map(|j| self.l1_temporary_bytes(j))
            .sum()
    }

    /// Total per-tag metadata entries across every L1 server.
    pub fn total_l1_metadata_entries(&self) -> usize {
        (0..self.l1_stats.len())
            .map(|j| self.l1_metadata_entries(j))
            .sum()
    }

    /// Creates a client handle with the cluster's default pipeline depth.
    ///
    /// The handle supports both the blocking [`ClusterClient::write`] /
    /// [`ClusterClient::read`] calls and the pipelined
    /// [`ClusterClient::submit_write`] / [`ClusterClient::submit_read`] /
    /// [`ClusterClient::wait_all`] API. Each client gets a fresh client id
    /// and its own inbox.
    pub fn client(self: &Arc<Self>) -> ClusterClient {
        self.client_with_depth(self.options.pipeline_depth)
    }

    /// Creates a client handle that keeps at most `depth` operations in
    /// flight.
    pub fn client_with_depth(self: &Arc<Self>, depth: usize) -> ClusterClient {
        let client_number = self.next_client.fetch_add(1, Ordering::Relaxed);
        let client_id = ClientId(client_number);
        // Client process ids live above all server ids.
        let pid = ProcessId(self.params.n1() + self.params.n2() + client_number as usize);
        let inbox = self.router.register(pid);
        ClusterClient::new(Arc::clone(self), client_id, pid, inbox, depth)
    }

    /// Kills the L1 server with code index `index` (crash failure): every
    /// shard stops.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn kill_l1(&self, index: usize) {
        self.router.send_stop(self.membership.l1[index]);
    }

    /// Kills the L2 server with index `index` (crash failure): every shard
    /// stops.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn kill_l2(&self, index: usize) {
        self.router.send_stop(self.membership.l2[index]);
    }

    /// Stops every server thread and waits for them to exit.
    pub fn shutdown(&self) {
        for &pid in self.membership.l1.iter().chain(self.membership.l2.iter()) {
            self.router.send_stop(pid);
        }
        let mut handles = self.handles.lock();
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_starts_and_shuts_down() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::start(params, BackendKind::Mbr);
        assert_eq!(cluster.params().n1(), 4);
        assert_eq!(cluster.membership().n2(), 5);
        assert_eq!(cluster.router().len(), 9);
        cluster.shutdown();
        // All server inboxes are deregistered after shutdown.
        assert_eq!(cluster.router().len(), 0);
    }

    #[test]
    fn sharded_cluster_starts_and_shuts_down() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::start_with(
            params,
            BackendKind::Mbr,
            ClusterOptions {
                l1_shards: 4,
                l2_shards: 2,
                ..ClusterOptions::default()
            },
        );
        // Shards do not change the process count.
        assert_eq!(cluster.router().len(), 9);
        let mut client = cluster.client();
        client.write(11, b"sharded".to_vec()).unwrap();
        assert_eq!(client.read(11).unwrap(), b"sharded");
        drop(client);
        cluster.shutdown();
        assert_eq!(cluster.router().len(), 0);
    }

    #[test]
    fn stats_probes_publish_after_idle() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::start(params, BackendKind::Replication);
        let mut client = cluster.client();
        for i in 0..5u64 {
            client.write(i, vec![7u8; 64]).unwrap();
        }
        // Give the shards a moment to drain their inboxes and publish.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let entries = cluster.total_l1_metadata_entries();
        assert!(entries > 0, "metadata probe never published");
        drop(client);
        cluster.shutdown();
    }
}
