//! Online node repair & rejoin: regenerate a crashed server while the
//! cluster keeps serving traffic, restoring the failure budget.
//!
//! # Protocol
//!
//! The coordinator (the thread calling [`Cluster::repair_l1`] /
//! [`Cluster::repair_l2`]) drives the handover:
//!
//! 1. **Join** the dead server's worker threads. Every one of them has
//!    deregistered the process id on exit, so all stale routing state is
//!    retired before the replacement appears.
//! 2. **Rejoin**: a fresh automaton in *rebuilding mode* re-registers under
//!    the same process id — an epoch-bumped inbox swap, so router handles
//!    whose snapshot predates the crash drop their sends (disconnected old
//!    channels) and pick up the new inboxes on their next epoch check.
//!    From this moment the replacement absorbs the live write stream, which
//!    is how writes in flight during the repair catch it up.
//! 3. **Help**: every live peer receives a [`LdsMessage::RepairHelp`]
//!    (fanned out to each of its worker shards) and streams one
//!    [`LdsMessage::RepairShare`] per object to the replacement — `β`-sized
//!    MBR repair symbols from L2 helpers (full elements on the
//!    decode-and-re-encode backends), metadata snapshots from L1 peers —
//!    terminated by a [`LdsMessage::RepairDone`] marker.
//! 4. **Go live**: once every helper shard's marker has arrived, each
//!    replacement shard regenerates its objects at the highest
//!    repair-quorum tag (covering every completed `write-to-L2` /
//!    acknowledged write), merges tag-wise with what the live stream
//!    already delivered, reports its bandwidth accounting to the
//!    coordinator, and starts answering queries. Until then it answers
//!    none — for failure-budget purposes it is still crashed.
//!
//! The coordinator aggregates the per-shard reports into a
//! [`RepairReport`], whose per-helper byte counts are what
//! `exp_repair` records into `BENCH_REPAIR.json`.
//!
//! Repair assumes no *additional* failure strikes during the repair window
//! (the standard regenerating-code repair model); if one does, the
//! coordinator times out and returns the target to the crashed state.

use crate::node::Cluster;
use crate::router::Envelope;
use lds_core::messages::LdsMessage;
use lds_core::tag::ObjectId;
use lds_sim::ProcessId;
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Which layer a repaired server belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepairLayer {
    /// Edge layer (metadata reconstruction from peers).
    L1,
    /// Back-end layer (coded-element regeneration from helpers).
    L2,
}

impl fmt::Display for RepairLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairLayer::L1 => f.write_str("L1"),
            RepairLayer::L2 => f.write_str("L2"),
        }
    }
}

/// Outcome of a successful online repair, including the bandwidth
/// accounting that backs `BENCH_REPAIR.json`.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The repaired layer.
    pub layer: RepairLayer,
    /// The repaired server's layer index.
    pub index: usize,
    /// Objects the replacement restored from helper payloads.
    pub objects: u64,
    /// Repair payload bytes received per helper (by the helper's layer
    /// index), summed over the replacement's worker shards.
    pub helper_bytes: Vec<(usize, u64)>,
    /// Total repair payload bytes moved.
    pub bytes_total: u64,
    /// Bytes the same repair — same helpers participating — would have
    /// moved had each shipped its full stored element (the
    /// decode-and-re-encode fallback). For L1 metadata reconstruction there
    /// is no coded shortcut, so this equals [`RepairReport::bytes_total`].
    pub fallback_bytes: u64,
    /// Live helpers that contributed.
    pub helpers: usize,
    /// Wall-clock duration of the repair (join → replacement live).
    pub elapsed: Duration,
}

impl RepairReport {
    /// Average repair bytes moved per restored object.
    pub fn bytes_per_object(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.bytes_total as f64 / self.objects as f64
        }
    }

    /// Measured repair traffic as a fraction of the full-element fallback
    /// (`1.0` = no saving; MBR achieves `≈ 1/α`).
    pub fn bandwidth_ratio(&self) -> f64 {
        if self.fallback_bytes == 0 {
            1.0
        } else {
            self.bytes_total as f64 / self.fallback_bytes as f64
        }
    }
}

/// Why an online repair could not be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// The target server is live — there is nothing to repair.
    NotCrashed,
    /// Another coordinator is already repairing this server.
    RepairInProgress,
    /// Too few live peers to cover the regeneration (`needed` of `live`).
    TooFewHelpers {
        /// Helpers the backend's repair threshold requires.
        needed: usize,
        /// Live peers available.
        live: usize,
    },
    /// The repair did not complete in time (e.g. a helper crashed during
    /// the repair window); the target was returned to the crashed state.
    Timeout,
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::NotCrashed => write!(f, "server is not crashed"),
            RepairError::RepairInProgress => {
                write!(f, "another repair of this server is already in progress")
            }
            RepairError::TooFewHelpers { needed, live } => {
                write!(
                    f,
                    "repair needs {needed} live helpers, only {live} available"
                )
            }
            RepairError::Timeout => write!(f, "repair timed out"),
        }
    }
}

impl std::error::Error for RepairError {}

/// Exclusive claim on repairing one server: exactly one coordinator may
/// drive a given pid's repair at a time (a second concurrent `repair_*`
/// would re-register the pid and orphan the first replacement's inboxes).
/// Released on drop, so every early-error path gives the claim back.
///
/// The claim is taken **before** the crashed-check: only a claim holder
/// ever clears the killed state, so re-reading it after the claim is
/// authoritative — a racer that loses the claim and retries after the
/// winner finished sees the server live and backs off, instead of
/// "repairing" (and wedging on the worker threads of) a healthy server.
struct RepairClaim<'a> {
    cluster: &'a Cluster,
    pid: ProcessId,
    /// The pid's kill generation observed at claim time. The final
    /// budget-restoring removal only applies if no *new* kill arrived
    /// during the repair window.
    kill_generation: u64,
}

impl<'a> RepairClaim<'a> {
    fn acquire(cluster: &'a Cluster, pid: ProcessId) -> Result<Self, RepairError> {
        if !cluster.repairing_set().lock().insert(pid) {
            return Err(RepairError::RepairInProgress);
        }
        let mut claim = RepairClaim {
            cluster,
            pid,
            kill_generation: 0,
        };
        let Some(generation) = cluster.killed_set().lock().get(&pid).copied() else {
            return Err(RepairError::NotCrashed); // claim released by drop
        };
        claim.kill_generation = generation;
        Ok(claim)
    }

    /// Marks the repair successful: the server's killed state is cleared —
    /// unless it was killed *again* while the repair ran, in which case the
    /// newer kill wins and the server stays crashed.
    fn restore_budget(&self) {
        let mut killed = self.cluster.killed_set().lock();
        if killed.get(&self.pid) == Some(&self.kill_generation) {
            killed.remove(&self.pid);
        }
    }
}

impl Drop for RepairClaim<'_> {
    fn drop(&mut self) {
        self.cluster.repairing_set().lock().remove(&self.pid);
    }
}

/// Drives one online repair end to end (see the [module docs](self)).
/// `timeout` bounds how long the coordinator waits for the replacement to
/// report completion (from [`crate::ClusterOptions::repair_timeout`], or a
/// per-call override via [`crate::api::Admin::repair_with_timeout`]).
pub(crate) fn repair_server(
    cluster: &Cluster,
    layer: RepairLayer,
    index: usize,
    timeout: Duration,
) -> Result<RepairReport, RepairError> {
    let membership = cluster.membership().clone();
    let (pid, peers, shards) = match layer {
        RepairLayer::L1 => (
            membership.l1[index],
            membership.l1.clone(),
            cluster.options().l1_shards,
        ),
        RepairLayer::L2 => (
            membership.l2[index],
            membership.l2.clone(),
            cluster.options().l2_shards,
        ),
    };
    let _claim = RepairClaim::acquire(cluster, pid)?;
    let started = Instant::now();

    // 1. Join the dead server's shard threads: every deregister (and any
    //    straggling sends into the dying inboxes) completes before the
    //    replacement re-registers the pid.
    if let Some(handles) = cluster.take_handles(pid) {
        for handle in handles {
            let _ = handle.join();
        }
    }

    // 2. Determine the live helper set.
    let helpers: Vec<ProcessId> = {
        let killed = cluster.killed_set().lock();
        peers
            .iter()
            .copied()
            .filter(|p| *p != pid && !killed.contains_key(p))
            .collect()
    };
    let needed = match layer {
        RepairLayer::L1 => 1,
        RepairLayer::L2 => cluster.backend().repair_threshold(),
    };
    if helpers.len() < needed {
        return Err(RepairError::TooFewHelpers {
            needed,
            live: helpers.len(),
        });
    }
    if layer == RepairLayer::L2 {
        // Pay the one-time repair-plan inversion for the canonical helper
        // subset (lowest-indexed live helpers — the set the replacement's
        // deterministic finalization will pick) before payloads stream.
        let mut canonical: Vec<usize> = helpers
            .iter()
            .filter_map(|&p| membership.l2_index_of(p))
            .collect();
        canonical.sort_unstable();
        canonical.truncate(needed);
        let _ = cluster.backend().prepare_l2_repair(&canonical);
    }

    // 3. Rejoin: the replacement must be registered before any helper
    //    starts streaming, or early shares would be dropped.
    let coordinator = cluster.alloc_aux_pid();
    let inbox = cluster.router().register(coordinator);
    let expected_dones = helpers.len() * shards;
    cluster.respawn_rebuilding(layer, index, expected_dones, coordinator);

    // 4. Ask every live peer for help (fan-out to each of its shards).
    for &helper in &helpers {
        cluster.router().send(
            coordinator,
            helper,
            LdsMessage::RepairHelp {
                obj: ObjectId(0),
                failed: pid,
            },
        );
    }

    // 5. Await one completion report per replacement shard.
    let deadline = Instant::now() + timeout;
    let mut reports = 0usize;
    let mut objects = 0u64;
    let mut fallback_bytes = 0u64;
    let mut by_helper: BTreeMap<ProcessId, u64> = BTreeMap::new();
    'wait: while reports < shards {
        let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
            break 'wait;
        };
        let envelope = match inbox.rx.recv_timeout(remaining) {
            Ok(envelope) => envelope,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break 'wait,
        };
        let mut consume = |from: ProcessId, msg: LdsMessage| {
            if from != pid {
                return;
            }
            if let LdsMessage::RepairDone {
                objects: restored,
                bytes_by_helper,
                fallback_bytes: fallback,
                ..
            } = msg
            {
                reports += 1;
                objects += restored;
                fallback_bytes += fallback;
                for (helper, bytes) in bytes_by_helper {
                    *by_helper.entry(helper).or_insert(0) += bytes;
                }
            }
        };
        match envelope {
            Envelope::Protocol { from, msg } => {
                inbox.depth.sub(1);
                consume(from, msg);
            }
            Envelope::Batch { from, msgs } => {
                inbox.depth.sub(msgs.len());
                for msg in msgs {
                    consume(from, msg);
                }
            }
            Envelope::Stop => break 'wait,
            // Heartbeat probes are not addressed to coordinators, but the
            // aux pid namespace is shared — ignore them defensively.
            Envelope::Ping => {}
        }
    }
    cluster.router().deregister(coordinator);

    if reports < shards {
        // The repair stalled (e.g. a helper died mid-stream): return the
        // target to the crashed state so the caller can retry later.
        cluster.router().send_stop(pid);
        if let Some(handles) = cluster.take_handles(pid) {
            for handle in handles {
                let _ = handle.join();
            }
        }
        return Err(RepairError::Timeout);
    }

    // 6. The replacement is live: restore the failure budget (unless a new
    //    kill arrived during the repair window — then the kill wins).
    _claim.restore_budget();

    let helper_bytes: Vec<(usize, u64)> = by_helper
        .into_iter()
        .filter_map(|(p, bytes)| {
            let idx = match layer {
                RepairLayer::L1 => membership.l1_index_of(p),
                RepairLayer::L2 => membership.l2_index_of(p),
            };
            idx.map(|i| (i, bytes))
        })
        .collect();
    let bytes_total = helper_bytes.iter().map(|(_, b)| b).sum();
    Ok(RepairReport {
        layer,
        index,
        objects,
        helper_bytes,
        bytes_total,
        fallback_bytes,
        helpers: helpers.len(),
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_ratios() {
        let report = RepairReport {
            layer: RepairLayer::L2,
            index: 1,
            objects: 4,
            helper_bytes: vec![(0, 60), (2, 60)],
            bytes_total: 120,
            fallback_bytes: 600,
            helpers: 2,
            elapsed: Duration::from_millis(5),
        };
        assert_eq!(report.bytes_per_object(), 30.0);
        assert!((report.bandwidth_ratio() - 0.2).abs() < 1e-9);
        assert_eq!(RepairLayer::L2.to_string(), "L2");
        assert!(RepairError::Timeout.to_string().contains("timed out"));
    }

    #[test]
    fn empty_report_is_well_defined() {
        let report = RepairReport {
            layer: RepairLayer::L1,
            index: 0,
            objects: 0,
            helper_bytes: Vec::new(),
            bytes_total: 0,
            fallback_bytes: 0,
            helpers: 3,
            elapsed: Duration::ZERO,
        };
        assert_eq!(report.bytes_per_object(), 0.0);
        assert_eq!(report.bandwidth_ratio(), 1.0);
    }
}
