//! Synchronous client handles for the thread-based cluster.

use crate::node::Cluster;
use crate::router::Envelope;
use crossbeam::channel::Receiver;
use lds_core::messages::{LdsMessage, ProtocolEvent};
use lds_core::reader::ReaderClient;
use lds_core::tag::{ClientId, ObjectId, Tag};
use lds_core::value::Value;
use lds_core::writer::WriterClient;
use lds_sim::{Context, Process, ProcessId};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors returned by cluster client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The operation did not complete within the client's timeout — with
    /// more than `f1` / `f2` servers killed this is the expected outcome.
    Timeout,
    /// The cluster channels were disconnected (cluster already shut down).
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Timeout => write!(f, "operation timed out"),
            ClientError::Disconnected => write!(f, "cluster is shut down"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A synchronous client of a running [`Cluster`].
///
/// Internally the handle hosts the writer and reader automata from
/// `lds-core` and pumps their messages over the cluster's channels; `write`
/// and `read` block until the corresponding operation completes.
pub struct ClusterClient {
    cluster: Arc<Cluster>,
    pid: ProcessId,
    inbox: Receiver<Envelope>,
    writer: WriterClient,
    reader: ReaderClient,
    timeout: Duration,
    /// Completed operations (tag of the last one), useful for assertions.
    last_tag: Option<Tag>,
}

impl ClusterClient {
    pub(crate) fn new(
        cluster: Arc<Cluster>,
        id: ClientId,
        pid: ProcessId,
        inbox: Receiver<Envelope>,
    ) -> Self {
        let writer = WriterClient::new(id, cluster.params(), cluster.membership().clone());
        let reader = ReaderClient::new(
            id,
            cluster.params(),
            cluster.membership().clone(),
            cluster.backend(),
        );
        ClusterClient {
            cluster,
            pid,
            inbox,
            writer,
            reader,
            timeout: Duration::from_secs(10),
            last_tag: None,
        }
    }

    /// Sets the per-operation timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The tag of this client's most recently completed operation.
    pub fn last_tag(&self) -> Option<Tag> {
        self.last_tag
    }

    /// Writes `value` to object `obj`, blocking until the write is atomic-
    /// committed (acknowledged by `f1 + k` L1 servers).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Timeout`] if the operation does not complete in
    /// time (e.g. too many servers were killed) and
    /// [`ClientError::Disconnected`] after shutdown.
    pub fn write(&mut self, obj: u64, value: Vec<u8>) -> Result<Tag, ClientError> {
        let invoke = LdsMessage::InvokeWrite {
            obj: ObjectId(obj),
            value: Value::new(value),
        };
        let event = self.drive(true, invoke)?;
        match event {
            ProtocolEvent::WriteCompleted { tag, .. } => {
                self.last_tag = Some(tag);
                Ok(tag)
            }
            other => unreachable!("writer emitted a read completion: {other:?}"),
        }
    }

    /// Reads object `obj`, blocking until the read completes, and returns the
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Timeout`] or [`ClientError::Disconnected`] as
    /// for [`ClusterClient::write`].
    pub fn read(&mut self, obj: u64) -> Result<Vec<u8>, ClientError> {
        let invoke = LdsMessage::InvokeRead { obj: ObjectId(obj) };
        let event = self.drive(false, invoke)?;
        match event {
            ProtocolEvent::ReadCompleted { tag, value, .. } => {
                self.last_tag = Some(tag);
                Ok(value.as_bytes().to_vec())
            }
            other => unreachable!("reader emitted a write completion: {other:?}"),
        }
    }

    /// Feeds `invoke` into the appropriate automaton and pumps messages until
    /// it emits a completion event.
    fn drive(&mut self, is_write: bool, invoke: LdsMessage) -> Result<ProtocolEvent, ClientError> {
        let deadline = std::time::Instant::now() + self.timeout;
        let mut pending = vec![(ProcessId::EXTERNAL, invoke)];
        loop {
            // Step the automaton with everything we have buffered.
            for (from, msg) in pending.drain(..) {
                let mut outgoing = Vec::new();
                let mut events = Vec::new();
                let now = self.cluster.elapsed();
                let mut ctx = Context::standalone(self.pid, now, &mut outgoing, &mut events);
                if is_write {
                    self.writer.on_message(from, msg, &mut ctx);
                } else {
                    self.reader.on_message(from, msg, &mut ctx);
                }
                for (to, out) in outgoing {
                    self.cluster.router().send(self.pid, to, out);
                }
                if let Some((_, _, event)) = events.into_iter().next() {
                    return Ok(event);
                }
            }
            // Wait for the next message from the cluster.
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or(ClientError::Timeout)?;
            match self.inbox.recv_timeout(remaining) {
                Ok(Envelope::Protocol { from, msg }) => pending.push((from, msg)),
                Ok(Envelope::Stop) => return Err(ClientError::Disconnected),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    return Err(ClientError::Timeout)
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(ClientError::Disconnected)
                }
            }
        }
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        self.cluster.router().deregister(self.pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_core::backend::BackendKind;
    use lds_core::params::SystemParams;

    fn small_cluster() -> Arc<Cluster> {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        Cluster::start(params, BackendKind::Mbr)
    }

    #[test]
    fn write_then_read_over_threads() {
        let cluster = small_cluster();
        let mut writer = cluster.client();
        let mut reader = cluster.client();
        let tag = writer.write(0, b"threaded".to_vec()).unwrap();
        assert_eq!(writer.last_tag(), Some(tag));
        let value = reader.read(0).unwrap();
        assert_eq!(value, b"threaded");
        cluster.shutdown();
    }

    #[test]
    fn sequential_writes_are_ordered_by_tags() {
        let cluster = small_cluster();
        let mut client = cluster.client();
        let t1 = client.write(0, b"one".to_vec()).unwrap();
        let t2 = client.write(0, b"two".to_vec()).unwrap();
        assert!(t2 > t1);
        assert_eq!(client.read(0).unwrap(), b"two");
        cluster.shutdown();
    }

    #[test]
    fn tolerates_allowed_failures() {
        let cluster = small_cluster();
        let mut client = cluster.client();
        cluster.kill_l1(0);
        cluster.kill_l2(4);
        client.write(3, b"still alive".to_vec()).unwrap();
        assert_eq!(client.read(3).unwrap(), b"still alive");
        cluster.shutdown();
    }

    #[test]
    fn too_many_failures_time_out() {
        let cluster = small_cluster();
        let mut client = cluster.client();
        client.set_timeout(Duration::from_millis(300));
        // f1 = 1 but we kill 3 of the 4 L1 servers: quorums are unreachable.
        cluster.kill_l1(0);
        cluster.kill_l1(1);
        cluster.kill_l1(2);
        assert_eq!(
            client.write(0, b"doomed".to_vec()),
            Err(ClientError::Timeout)
        );
        cluster.shutdown();
    }

    #[test]
    fn concurrent_clients_from_multiple_threads() {
        let cluster = small_cluster();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cluster = Arc::clone(&cluster);
            handles.push(std::thread::spawn(move || {
                let mut client = cluster.client();
                for i in 0..5u64 {
                    let value = format!("writer-{t}-{i}").into_bytes();
                    client.write(0, value).unwrap();
                    let read = client.read(0).unwrap();
                    assert!(!read.is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        cluster.shutdown();
    }
}
