//! Client handles for the thread-based cluster: blocking and pipelined.
//!
//! A [`ClusterClient`] hosts the writer and reader automata from `lds-core`
//! and pumps their messages over the cluster's channels. Two usage styles
//! share one handle:
//!
//! * **Blocking** — [`ClusterClient::write`] / [`ClusterClient::read`] block
//!   until the operation completes, exactly like the original API. They are
//!   thin wrappers over the pipelined path with an immediate wait.
//! * **Pipelined** — [`ClusterClient::submit_write`] /
//!   [`ClusterClient::submit_read`] enqueue an operation and return an
//!   [`OpTicket`] immediately; up to `depth` operations run concurrently.
//!   Completions are harvested with [`ClusterClient::poll`] (non-blocking),
//!   [`ClusterClient::wait`] (one ticket) or [`ClusterClient::wait_all`].
//!
//! On a bounded-inbox cluster ([`crate::ClusterOptions::inbox_cap`]) there is
//! a third, fully non-blocking style: [`ClusterClient::try_submit_write`] /
//! [`ClusterClient::try_submit_read`] either start the operation immediately
//! or return [`WouldBlock`] — they never queue, so a slow or saturated server
//! shard pushes back on the submitter instead of letting work pile up.
//!
//! Operations on the *same* object are executed in submission order (FIFO
//! per object, one in flight at a time) — this keeps the per-writer tag
//! sequence monotonic and gives read-your-writes for a client's own
//! submissions. Operations on distinct objects proceed concurrently, which
//! is where the throughput comes from.

use crate::node::{Admission, Cluster};
use crate::obs::{phase, EventKind, ObsMetrics, TraceHandle};
use crate::router::{Envelope, Inbox, RouterHandle};
use lds_core::messages::{LdsMessage, ProtocolEvent};
use lds_core::reader::ReaderClient;
use lds_core::tag::{ClientId, ObjectId, OpId, Tag};
use lds_core::value::Value;
use lds_core::writer::WriterClient;
use lds_sim::{Context, ProcessId, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors returned by cluster client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The operation did not complete within the client's timeout — with
    /// more than `f1` / `f2` servers killed this is the expected outcome.
    /// Every outstanding operation of the handle is aborted.
    Timeout,
    /// The cluster channels were disconnected (cluster already shut down).
    Disconnected,
    /// The awaited ticket does not correspond to an outstanding or completed
    /// operation of this handle (already harvested, aborted, or foreign).
    UnknownTicket,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Timeout => write!(f, "operation timed out"),
            ClientError::Disconnected => write!(f, "cluster is shut down"),
            ClientError::UnknownTicket => write!(f, "ticket is not outstanding on this handle"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A non-blocking submission was refused: the pipeline is full, an earlier
/// operation on the same object is still outstanding, or (on a bounded-inbox
/// cluster) the object's partition has no admission budget / a destination
/// shard inbox is at its depth limit. Nothing was enqueued — harvest some
/// completions (or back off) and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WouldBlock;

impl fmt::Display for WouldBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "submission would exceed the pipeline or inbox budget")
    }
}

impl std::error::Error for WouldBlock {}

/// Identifies one submitted operation of a [`ClusterClient`]. Tickets are
/// handed out in submission order and are unique per handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpTicket(u64);

impl OpTicket {
    /// Crate-internal constructor for facade handles that mint their own
    /// ticket space (e.g. [`crate::ShardedClient`]).
    pub(crate) fn from_raw(n: u64) -> OpTicket {
        OpTicket(n)
    }
}

impl fmt::Display for OpTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The result of one completed operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// A write committed with this tag.
    Write {
        /// The tag the writer minted.
        tag: Tag,
    },
    /// A read returned this value.
    Read {
        /// The tag of the returned value.
        tag: Tag,
        /// The returned value.
        value: Vec<u8>,
    },
}

impl OpOutcome {
    /// The tag associated with the operation.
    pub fn tag(&self) -> Tag {
        match self {
            OpOutcome::Write { tag } | OpOutcome::Read { tag, .. } => *tag,
        }
    }
}

impl Completion {
    /// The typed key of the object the operation acted on.
    pub fn key(&self) -> ObjectId {
        ObjectId(self.obj)
    }
}

/// One harvested completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The ticket returned at submission.
    pub ticket: OpTicket,
    /// The object the operation acted on.
    pub obj: u64,
    /// What the operation produced.
    pub outcome: OpOutcome,
    /// Wall-clock time from submission to completion (includes any time the
    /// operation spent queued behind the pipeline depth or object FIFO).
    pub latency: Duration,
}

enum OpKind {
    Write(Value),
    Read,
}

struct QueuedOp {
    ticket: OpTicket,
    obj: ObjectId,
    kind: OpKind,
    submitted: Instant,
}

struct InFlight {
    ticket: OpTicket,
    submitted: Instant,
    /// Protocol phase the operation is in (see [`phase`]), advanced when
    /// the automaton's outgoing messages cross a phase boundary.
    phase: u64,
    /// When the current phase started — each boundary records the elapsed
    /// phase into the cluster's latency histograms.
    phase_started: Instant,
}

impl InFlight {
    fn new(ticket: OpTicket, submitted: Instant) -> InFlight {
        InFlight {
            ticket,
            submitted,
            phase: phase::TAG,
            phase_started: Instant::now(),
        }
    }
}

/// A client of a running [`Cluster`] supporting blocking and pipelined
/// operation. See the [module docs](self) for the two usage styles.
pub struct ClusterClient {
    cluster: Arc<Cluster>,
    /// This handle's client number — the identity the fair admission queue
    /// tracks turns by.
    client_num: u64,
    pid: ProcessId,
    inbox: Inbox,
    route: RouterHandle,
    writer: WriterClient,
    reader: ReaderClient,
    depth: usize,
    timeout: Duration,
    next_ticket: u64,
    /// Submitted operations not yet dispatched into an automaton (waiting
    /// for a pipeline slot, for their object's previous op, or for inbox
    /// admission).
    queue: VecDeque<QueuedOp>,
    /// Objects with a dispatched, unfinished operation. Each entry holds
    /// exactly one admission token when the cluster is bounded.
    busy_objects: HashSet<ObjectId>,
    write_ops: HashMap<OpId, InFlight>,
    read_ops: HashMap<OpId, InFlight>,
    /// Completed but not yet harvested operations.
    completions: Vec<Completion>,
    /// Tag of the last completed operation, useful for assertions.
    last_tag: Option<Tag>,
    /// Bounded-inbox admission state (None on an unbounded cluster).
    admission: Option<Admission>,
    /// Whether the last dispatch scan left an operation waiting on
    /// *admission* (as opposed to pipeline depth or per-object FIFO, which
    /// are always unblocked by one of this client's own inbox messages).
    /// Only then do blocking waits poll at the admission-retry cadence.
    admission_blocked: bool,
    /// Scratch buffers reused across automaton steps (hot path: one client
    /// processes tens of messages per completed operation).
    scratch_out: Vec<(ProcessId, LdsMessage)>,
    scratch_events: Vec<(SimTime, ProcessId, ProtocolEvent)>,
    scratch_inbox: Vec<Envelope>,
    /// Objects whose queued ops were skipped for admission in the current
    /// dispatch scan (preserves same-object FIFO across admission retries).
    scratch_deferred: HashSet<ObjectId>,
    /// The cluster's always-on latency/cache metrics registry.
    obs: Arc<ObsMetrics>,
    /// This handle's flight-recorder ring (one branch per record when
    /// tracing is off).
    trace: TraceHandle,
    /// Read-cache hit/miss counts already folded into `obs`, so repeated
    /// flushes add only the delta.
    flushed_cache_hits: u64,
    flushed_cache_misses: u64,
}

impl ClusterClient {
    pub(crate) fn new(
        cluster: Arc<Cluster>,
        id: ClientId,
        pid: ProcessId,
        inbox: Inbox,
        depth: usize,
    ) -> Self {
        assert!(depth > 0, "pipeline depth must be at least 1");
        let options = cluster.options();
        let mut writer = WriterClient::new(id, cluster.params(), cluster.membership().clone());
        writer.set_striping(options.l1.stripe_threshold, options.l1.stripe_size);
        let mut reader = ReaderClient::new(
            id,
            cluster.params(),
            cluster.membership().clone(),
            cluster.backend(),
        );
        reader.set_cache_entries(options.read_cache_entries);
        let route = cluster.router().handle();
        let admission = cluster.admission();
        let obs = Arc::clone(cluster.obs_metrics());
        let trace = cluster.recorder().handle();
        ClusterClient {
            cluster,
            client_num: id.0,
            pid,
            inbox,
            route,
            writer,
            reader,
            depth,
            timeout: Duration::from_secs(10),
            next_ticket: 0,
            queue: VecDeque::new(),
            busy_objects: HashSet::new(),
            write_ops: HashMap::new(),
            read_ops: HashMap::new(),
            completions: Vec::new(),
            last_tag: None,
            admission,
            admission_blocked: false,
            scratch_out: Vec::with_capacity(64),
            scratch_events: Vec::with_capacity(8),
            scratch_inbox: Vec::with_capacity(64),
            scratch_deferred: HashSet::new(),
            obs,
            trace,
            flushed_cache_hits: 0,
            flushed_cache_misses: 0,
        }
    }

    /// Sets the timeout for each blocking wait ([`ClusterClient::write`],
    /// [`ClusterClient::read`], [`ClusterClient::wait`],
    /// [`ClusterClient::wait_all`]).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The maximum number of operations this handle keeps in flight.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The tag of this client's most recently completed operation.
    pub fn last_tag(&self) -> Option<Tag> {
        self.last_tag
    }

    /// Reads served from this handle's tag-validated cache (the committed-tag
    /// quorum confirmed the cached tag, so the data-transfer phase was
    /// skipped). Always 0 unless [`crate::ClusterOptions::read_cache_entries`]
    /// is non-zero.
    pub fn cache_hits(&self) -> u64 {
        self.reader.cache_hits()
    }

    /// Reads that ran the full data-transfer phase although this handle's
    /// cache is enabled (the quorum-confirmed tag was newer than — or absent
    /// from — the cache). Always 0 when the cache is disabled, so
    /// `hits / (hits + misses)` is a meaningful hit ratio.
    pub fn cache_misses(&self) -> u64 {
        self.reader.cache_misses()
    }

    /// Operations submitted but not yet harvested: queued + in flight +
    /// completed-but-unharvested.
    pub fn pending_ops(&self) -> usize {
        self.queue.len() + self.in_flight() + self.completions.len()
    }

    /// Operations currently dispatched into the automata.
    pub fn in_flight(&self) -> usize {
        self.write_ops.len() + self.read_ops.len()
    }

    // ------------------------------------------------------------------
    // Pipelined API.
    // ------------------------------------------------------------------

    /// Enqueues a write of `value` to object `obj` and returns its ticket.
    /// The operation starts immediately if a pipeline slot is free, no
    /// earlier operation on `obj` is outstanding and (on a bounded cluster)
    /// the partition has admission budget; otherwise it waits in the
    /// client-local queue. For backpressure that refuses instead of queueing
    /// use [`ClusterClient::try_submit_write`].
    pub fn submit_write(&mut self, obj: u64, value: Vec<u8>) -> OpTicket {
        self.submit_write_value(obj, Value::new(value))
    }

    /// Enqueues a write of an already-framed [`Value`] — the zero-copy
    /// submission path: a `Value` holds its bytes behind an `Arc`, so
    /// callers that already share the payload (or submit the same value to
    /// several objects) hand it over without another copy. This is what the
    /// [`crate::api::Store`] implementations build on.
    pub fn submit_write_value(&mut self, obj: u64, value: Value) -> OpTicket {
        self.submit(ObjectId(obj), OpKind::Write(value))
    }

    /// Enqueues a read of object `obj` and returns its ticket.
    pub fn submit_read(&mut self, obj: u64) -> OpTicket {
        self.submit(ObjectId(obj), OpKind::Read)
    }

    /// Starts a write of `value` to object `obj` right now, or refuses with
    /// [`WouldBlock`] — never queues. Refusal means the pipeline is at
    /// depth, an earlier operation on `obj` is still outstanding, or the
    /// bounded cluster's partition budget / inbox depth limit is exhausted
    /// (i.e. the servers responsible for `obj` are saturated: back off).
    pub fn try_submit_write(&mut self, obj: u64, value: &[u8]) -> Result<OpTicket, WouldBlock> {
        self.try_submit(ObjectId(obj), || OpKind::Write(Value::new(value.to_vec())))
    }

    /// Starts a read of object `obj` right now, or refuses with
    /// [`WouldBlock`] — never queues. See
    /// [`ClusterClient::try_submit_write`] for the refusal conditions.
    pub fn try_submit_read(&mut self, obj: u64) -> Result<OpTicket, WouldBlock> {
        self.try_submit(ObjectId(obj), || OpKind::Read)
    }

    /// Processes every message that is already available without blocking
    /// and returns the completions harvested so far (possibly empty).
    pub fn poll(&mut self) -> Result<Vec<Completion>, ClientError> {
        self.pump_available()?;
        // Queued operations held back by partition admission are started by
        // *this* client when budget frees (another client's completion sends
        // us no message), so a poll-driven loop must retry dispatch here or
        // it would spin forever without ever starting them.
        if self.admission_blocked {
            self.try_dispatch();
        }
        Ok(std::mem::take(&mut self.completions))
    }

    /// Blocks up to `max_wait` for the next message batch and returns
    /// whatever completions were harvested (possibly none; the call may also
    /// return earlier than `max_wait` while queued operations await
    /// admission on a bounded cluster). Unlike
    /// [`ClusterClient::wait_next`], expiry of `max_wait` is *not* an error
    /// and does not abort outstanding operations — this is the building
    /// block [`crate::ShardedClient`] uses to multiplex several per-shard
    /// handles without committing to a blocking wait on any one of them.
    pub fn poll_wait(&mut self, max_wait: Duration) -> Result<Vec<Completion>, ClientError> {
        self.pump_available()?;
        if self.completions.is_empty() && self.outstanding() > 0 {
            match self.inbox.rx.recv_timeout(self.bounded_wait(max_wait)) {
                Ok(envelope) => {
                    self.consume_envelope(envelope)?;
                    self.pump_available()?;
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // Queued-but-unadmitted operations are dispatched by this
                    // client, not by an incoming message: retry admission.
                    self.try_dispatch();
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(ClientError::Disconnected)
                }
            }
        }
        Ok(std::mem::take(&mut self.completions))
    }

    /// Blocks until at least one completion is available (or every pending
    /// operation has completed) and returns all harvested completions.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] aborts every outstanding operation of this
    /// handle; [`ClientError::Disconnected`] after cluster shutdown.
    pub fn wait_next(&mut self) -> Result<Vec<Completion>, ClientError> {
        let deadline = Instant::now() + self.timeout;
        self.pump_available()?;
        while self.completions.is_empty() && self.outstanding() > 0 {
            self.pump_blocking(deadline)?;
        }
        Ok(std::mem::take(&mut self.completions))
    }

    /// Blocks until the operation behind `ticket` completes and returns its
    /// completion. Completions of other operations harvested along the way
    /// are retained for later `poll`/`wait` calls.
    ///
    /// # Errors
    ///
    /// [`ClientError::UnknownTicket`] if the ticket is not outstanding;
    /// [`ClientError::Timeout`] (which aborts every outstanding operation)
    /// or [`ClientError::Disconnected`] as for [`ClusterClient::wait_all`].
    pub fn wait(&mut self, ticket: OpTicket) -> Result<Completion, ClientError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            self.pump_available()?;
            if let Some(i) = self.completions.iter().position(|c| c.ticket == ticket) {
                return Ok(self.completions.remove(i));
            }
            if !self.is_outstanding(ticket) {
                return Err(ClientError::UnknownTicket);
            }
            self.pump_blocking(deadline)?;
        }
    }

    /// Blocks until every submitted operation has completed and returns all
    /// harvested completions in ticket order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] aborts every outstanding operation of this
    /// handle; [`ClientError::Disconnected`] after cluster shutdown.
    pub fn wait_all(&mut self) -> Result<Vec<Completion>, ClientError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            self.pump_available()?;
            if self.outstanding() == 0 {
                let mut done = std::mem::take(&mut self.completions);
                done.sort_by_key(|c| c.ticket);
                return Ok(done);
            }
            self.pump_blocking(deadline)?;
        }
    }

    /// Abandons every outstanding operation of this handle: queued
    /// operations are dropped, in-flight automaton state is cancelled, and
    /// their tickets are forgotten (admission tokens are returned on a
    /// bounded cluster). Already-harvested completions are retained. The
    /// handle remains usable.
    pub fn cancel_all(&mut self) {
        self.writer.cancel_all();
        self.reader.cancel_all();
        self.queue.clear();
        self.admission_blocked = false;
        if let Some(admission) = self.admission.clone() {
            for obj in self.busy_objects.drain() {
                admission.release(obj);
            }
            // Abandoned queued operations must not hold a fairness turn.
            admission.forget(self.client_num);
        } else {
            self.busy_objects.clear();
        }
        self.write_ops.clear();
        self.read_ops.clear();
    }

    // ------------------------------------------------------------------
    // Blocking wrappers.
    // ------------------------------------------------------------------

    /// Writes `value` to object `obj`, blocking until the write is atomic-
    /// committed (acknowledged by `f1 + k` L1 servers).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Timeout`] if the operation does not complete in
    /// time (e.g. too many servers were killed) and
    /// [`ClientError::Disconnected`] after shutdown.
    pub fn write(&mut self, obj: u64, value: Vec<u8>) -> Result<Tag, ClientError> {
        let ticket = self.submit_write(obj, value);
        let completion = self.wait(ticket)?;
        match completion.outcome {
            OpOutcome::Write { tag } => Ok(tag),
            OpOutcome::Read { .. } => unreachable!("write ticket yielded a read outcome"),
        }
    }

    /// Reads object `obj`, blocking until the read completes, and returns the
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Timeout`] or [`ClientError::Disconnected`] as
    /// for [`ClusterClient::write`].
    pub fn read(&mut self, obj: u64) -> Result<Vec<u8>, ClientError> {
        let ticket = self.submit_read(obj);
        let completion = self.wait(ticket)?;
        match completion.outcome {
            OpOutcome::Read { value, .. } => Ok(value),
            OpOutcome::Write { .. } => unreachable!("read ticket yielded a write outcome"),
        }
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn submit(&mut self, obj: ObjectId, kind: OpKind) -> OpTicket {
        let ticket = OpTicket(self.next_ticket);
        self.next_ticket += 1;
        self.queue.push_back(QueuedOp {
            ticket,
            obj,
            kind,
            submitted: Instant::now(),
        });
        self.try_dispatch();
        ticket
    }

    fn try_submit(
        &mut self,
        obj: ObjectId,
        kind: impl FnOnce() -> OpKind,
    ) -> Result<OpTicket, WouldBlock> {
        // Harvest whatever already arrived so completed ops free their slots
        // before we judge fullness. A disconnected cluster is reported by the
        // next poll/wait, not here (this path stays infallible w.r.t. I/O).
        let _ = self.pump_available();
        if self.in_flight() >= self.depth {
            return Err(WouldBlock);
        }
        if self.busy_objects.contains(&obj) || self.queue.iter().any(|q| q.obj == obj) {
            return Err(WouldBlock);
        }
        if let Some(admission) = &self.admission {
            // `try_submit_*` never queues, so it must not take a waiter-queue
            // slot either — but it still yields to queued waiters, which is
            // what stops a greedy try-submit loop from starving them.
            if !admission.try_admit(self.client_num, obj, false) {
                return Err(WouldBlock);
            }
        }
        let ticket = OpTicket(self.next_ticket);
        self.next_ticket += 1;
        self.start_op(ticket, obj, kind(), Instant::now());
        Ok(ticket)
    }

    /// Queued + dispatched (not yet completed) operations.
    fn outstanding(&self) -> usize {
        self.queue.len() + self.in_flight()
    }

    fn is_outstanding(&self, ticket: OpTicket) -> bool {
        self.queue.iter().any(|q| q.ticket == ticket)
            || self.write_ops.values().any(|f| f.ticket == ticket)
            || self.read_ops.values().any(|f| f.ticket == ticket)
    }

    /// Dispatches one operation into its automaton right now. The caller has
    /// already checked the pipeline depth, per-object FIFO and admission.
    fn start_op(&mut self, ticket: OpTicket, obj: ObjectId, kind: OpKind, submitted: Instant) {
        let mut outgoing = std::mem::take(&mut self.scratch_out);
        let mut events = std::mem::take(&mut self.scratch_events);
        let now = self.cluster.elapsed();
        {
            let mut ctx = Context::standalone(self.pid, now, &mut outgoing, &mut events);
            let in_flight = InFlight::new(ticket, submitted);
            match kind {
                OpKind::Write(value) => {
                    self.trace
                        .record(EventKind::OpSubmitted, obj.0, 0, ticket.0);
                    let op = self.writer.start_write(obj, value, &mut ctx);
                    self.write_ops.insert(op, in_flight);
                }
                OpKind::Read => {
                    self.trace
                        .record(EventKind::OpSubmitted, obj.0, 1, ticket.0);
                    let op = self.reader.start_read(obj, &mut ctx);
                    self.read_ops.insert(op, in_flight);
                }
            }
        }
        self.busy_objects.insert(obj);
        debug_assert!(events.is_empty(), "dispatch cannot complete an op");
        self.route.send_batch(self.pid, outgoing.drain(..));
        self.scratch_out = outgoing;
        self.scratch_events = events;
    }

    /// Starts as many queued operations as the pipeline depth, per-object
    /// FIFO and (on a bounded cluster) partition admission allow. Scanning in
    /// submission order — with objects deferred on a failed admission staying
    /// deferred for the rest of the scan — guarantees that of two queued
    /// operations on the same object, the earlier one always dispatches
    /// first.
    fn try_dispatch(&mut self) {
        if self.queue.is_empty() {
            self.admission_blocked = false;
            return;
        }
        let mut outgoing = std::mem::take(&mut self.scratch_out);
        let mut events = std::mem::take(&mut self.scratch_events);
        let now = self.cluster.elapsed();
        let mut i = 0;
        while i < self.queue.len() {
            if self.in_flight() >= self.depth {
                break;
            }
            let obj = self.queue[i].obj;
            if self.busy_objects.contains(&obj) {
                i += 1;
                continue;
            }
            if let Some(admission) = &self.admission {
                if self.scratch_deferred.contains(&obj)
                    || !admission.try_admit(self.client_num, obj, true)
                {
                    self.scratch_deferred.insert(obj);
                    i += 1;
                    continue;
                }
            }
            let q = self.queue.remove(i).expect("index checked");
            let mut ctx = Context::standalone(self.pid, now, &mut outgoing, &mut events);
            let in_flight = InFlight::new(q.ticket, q.submitted);
            match q.kind {
                OpKind::Write(value) => {
                    self.trace
                        .record(EventKind::OpSubmitted, q.obj.0, 0, q.ticket.0);
                    let op = self.writer.start_write(q.obj, value, &mut ctx);
                    self.write_ops.insert(op, in_flight);
                }
                OpKind::Read => {
                    self.trace
                        .record(EventKind::OpSubmitted, q.obj.0, 1, q.ticket.0);
                    let op = self.reader.start_read(q.obj, &mut ctx);
                    self.read_ops.insert(op, in_flight);
                }
            }
            self.busy_objects.insert(q.obj);
        }
        self.admission_blocked = !self.scratch_deferred.is_empty();
        self.scratch_deferred.clear();
        debug_assert!(events.is_empty(), "dispatch cannot complete an op");
        self.route.send_batch(self.pid, outgoing.drain(..));
        self.scratch_out = outgoing;
        self.scratch_events = events;
    }

    /// Feeds one protocol message into the owning automaton, forwards its
    /// outgoing batch, and harvests any completion.
    fn deliver(&mut self, from: ProcessId, msg: LdsMessage) {
        let mut outgoing = std::mem::take(&mut self.scratch_out);
        let mut events = std::mem::take(&mut self.scratch_events);
        let now = self.cluster.elapsed();
        let mut ctx = Context::standalone(self.pid, now, &mut outgoing, &mut events);
        match &msg {
            LdsMessage::TagResp { .. } | LdsMessage::AckPutData { .. } => {
                use lds_sim::Process;
                self.writer.on_message(from, msg, &mut ctx);
            }
            LdsMessage::CommTagResp { .. }
            | LdsMessage::DataResp { .. }
            | LdsMessage::AckPutTag { .. } => {
                use lds_sim::Process;
                self.reader.on_message(from, msg, &mut ctx);
            }
            // Anything else is not addressed to a client automaton.
            _ => {}
        }
        self.note_phases(&outgoing);
        self.route.send_batch(self.pid, outgoing.drain(..));
        self.scratch_out = outgoing;
        let completed = !events.is_empty();
        for (_, _, event) in events.drain(..) {
            self.finish(event);
        }
        self.scratch_events = events;
        if completed {
            // Freed slots / objects / admission budget: queued operations may
            // start now.
            self.try_dispatch();
        }
    }

    /// Phase stamps: the first PUT-DATA/PUT-STRIPE (write) or QUERY-DATA /
    /// PUT-TAG (read) an automaton step produced marks a phase boundary for
    /// its operation — the elapsed phase is recorded into the cluster's
    /// histograms and the transition traced. The writer fans PUT-DATA out to
    /// every L1 server, so only the first message of a kind advances the
    /// phase (later ones see the already-advanced state and do nothing).
    fn note_phases(&mut self, outgoing: &[(ProcessId, LdsMessage)]) {
        for (_, msg) in outgoing {
            match msg {
                // Write: tag-quorum round done, data transfer starts. The
                // commit wait (PUT-DATA fan-out through ACK-PUT-DATA quorum)
                // is part of the data phase — the client only observes the
                // final ack.
                LdsMessage::PutData { op, obj, .. } | LdsMessage::PutStripe { op, obj, .. } => {
                    if let Some(f) = self.write_ops.get_mut(op) {
                        if f.phase == phase::TAG {
                            let now = Instant::now();
                            let us =
                                now.saturating_duration_since(f.phase_started).as_micros() as u64;
                            self.obs.record_phase(phase::TAG, us);
                            f.phase = phase::DATA;
                            f.phase_started = now;
                            self.trace
                                .record(EventKind::OpPhase, obj.0, phase::DATA, f.ticket.0);
                        }
                    }
                }
                // Read: committed-tag quorum done, data transfer starts.
                LdsMessage::QueryData { op, obj, .. } => {
                    if let Some(f) = self.read_ops.get_mut(op) {
                        if f.phase == phase::TAG {
                            let now = Instant::now();
                            let us =
                                now.saturating_duration_since(f.phase_started).as_micros() as u64;
                            self.obs.record_phase(phase::TAG, us);
                            f.phase = phase::DATA;
                            f.phase_started = now;
                            self.trace
                                .record(EventKind::OpPhase, obj.0, phase::DATA, f.ticket.0);
                        }
                    }
                }
                // Read: value decoded, tag write-back (commit) starts. A
                // cache-hit read goes straight from the tag phase to the
                // commit phase — it never transferred data, so only the tag
                // sample is recorded.
                LdsMessage::PutTag { op, obj, .. } => {
                    if let Some(f) = self.read_ops.get_mut(op) {
                        if f.phase == phase::TAG || f.phase == phase::DATA {
                            let now = Instant::now();
                            let us =
                                now.saturating_duration_since(f.phase_started).as_micros() as u64;
                            self.obs.record_phase(f.phase, us);
                            f.phase = phase::COMMIT;
                            f.phase_started = now;
                            self.trace
                                .record(EventKind::OpPhase, obj.0, phase::COMMIT, f.ticket.0);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Folds this handle's read-cache hit/miss counters into the shared
    /// metrics registry (delta since the previous flush).
    fn flush_cache_counters(&mut self) {
        let hits = self.reader.cache_hits();
        let misses = self.reader.cache_misses();
        if hits != self.flushed_cache_hits || misses != self.flushed_cache_misses {
            self.obs.add_cache_traffic(
                hits - self.flushed_cache_hits,
                misses - self.flushed_cache_misses,
            );
            self.flushed_cache_hits = hits;
            self.flushed_cache_misses = misses;
        }
    }

    fn finish(&mut self, event: ProtocolEvent) {
        let now = Instant::now();
        match event {
            ProtocolEvent::WriteCompleted {
                op,
                obj,
                tag,
                value,
                ..
            } => {
                if let Some(f) = self.write_ops.remove(&op) {
                    self.busy_objects.remove(&obj);
                    if let Some(admission) = &self.admission {
                        admission.release(obj);
                    }
                    // A committed write fixes (tag → value): seed the read
                    // cache so this handle's next read of the object can skip
                    // the data-transfer phase if the tag is still current.
                    self.reader.cache_insert(obj, tag, value);
                    self.last_tag = Some(tag);
                    let latency = now.saturating_duration_since(f.submitted);
                    // Close the open phase (normally the data phase, which
                    // includes the commit wait) and the end-to-end sample.
                    self.obs.record_phase(
                        f.phase,
                        now.saturating_duration_since(f.phase_started).as_micros() as u64,
                    );
                    let us = latency.as_micros() as u64;
                    self.obs.write_us.record(us);
                    self.trace.record(EventKind::OpCompleted, obj.0, 0, us);
                    self.completions.push(Completion {
                        ticket: f.ticket,
                        obj: obj.0,
                        outcome: OpOutcome::Write { tag },
                        latency,
                    });
                }
            }
            ProtocolEvent::ReadCompleted {
                op,
                obj,
                tag,
                value,
                ..
            } => {
                if let Some(f) = self.read_ops.remove(&op) {
                    self.busy_objects.remove(&obj);
                    if let Some(admission) = &self.admission {
                        admission.release(obj);
                    }
                    self.last_tag = Some(tag);
                    let latency = now.saturating_duration_since(f.submitted);
                    // Close the open phase (normally the commit phase: the
                    // PUT-TAG write-back quorum) and the end-to-end sample.
                    self.obs.record_phase(
                        f.phase,
                        now.saturating_duration_since(f.phase_started).as_micros() as u64,
                    );
                    let us = latency.as_micros() as u64;
                    self.obs.read_us.record(us);
                    self.trace.record(EventKind::OpCompleted, obj.0, 1, us);
                    self.flush_cache_counters();
                    self.completions.push(Completion {
                        ticket: f.ticket,
                        obj: obj.0,
                        outcome: OpOutcome::Read {
                            tag,
                            value: value.as_bytes().to_vec(),
                        },
                        latency,
                    });
                }
            }
        }
    }

    /// Processes one claimed envelope (updating the inbox gauge).
    fn consume_envelope(&mut self, envelope: Envelope) -> Result<(), ClientError> {
        match envelope {
            Envelope::Protocol { from, msg } => {
                self.inbox.depth.sub(1);
                self.deliver(from, msg);
                Ok(())
            }
            Envelope::Batch { from, msgs } => {
                self.inbox.depth.sub(msgs.len());
                for msg in msgs {
                    self.deliver(from, msg);
                }
                Ok(())
            }
            Envelope::Stop => Err(ClientError::Disconnected),
            // Clients are never heartbeat-monitored; tolerate stray probes.
            Envelope::Ping => Ok(()),
        }
    }

    /// Processes every already-queued inbox message without blocking. The
    /// backlog is claimed in batches (one channel-lock acquisition each).
    fn pump_available(&mut self) -> Result<(), ClientError> {
        loop {
            let mut batch = std::mem::take(&mut self.scratch_inbox);
            batch.extend(self.inbox.rx.try_iter());
            if batch.is_empty() {
                self.scratch_inbox = batch;
                return Ok(());
            }
            let mut result = Ok(());
            for envelope in batch.drain(..) {
                if let Err(e) = self.consume_envelope(envelope) {
                    result = Err(e);
                    break;
                }
            }
            self.scratch_inbox = batch;
            result?;
        }
    }

    /// On a bounded cluster with operations queued for admission, blocking
    /// waits are capped at this cadence: the freeing of a partition's budget
    /// (another client's completion) does not send *this* client a message,
    /// so parking unboundedly on the inbox would sleep through it.
    const ADMISSION_RETRY: Duration = Duration::from_micros(500);

    /// The longest this client may park on its inbox without re-attempting
    /// dispatch of queued operations. Only admission-deferred queues need
    /// the retry cadence; operations waiting on pipeline depth or per-object
    /// FIFO are unblocked by one of this client's own completion messages,
    /// which wakes the `recv` directly.
    fn bounded_wait(&self, wanted: Duration) -> Duration {
        if self.admission_blocked {
            wanted.min(Self::ADMISSION_RETRY)
        } else {
            wanted
        }
    }

    /// Blocks for the next inbox message (up to `deadline`), processes it and
    /// then drains whatever else arrived.
    fn pump_blocking(&mut self, deadline: Instant) -> Result<(), ClientError> {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or_else(|| self.abort_timeout())?;
        match self.inbox.rx.recv_timeout(self.bounded_wait(remaining)) {
            Ok(envelope) => {
                self.consume_envelope(envelope)?;
                self.pump_available()
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                // Re-attempt admission of queued operations; only a true
                // deadline expiry is a timeout.
                self.try_dispatch();
                if Instant::now() >= deadline {
                    Err(self.abort_timeout())
                } else {
                    Ok(())
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(ClientError::Disconnected)
            }
        }
    }

    /// Aborts every outstanding operation (timeout semantics: the handle is
    /// reusable afterwards, but in-flight operations are abandoned and their
    /// tickets forgotten).
    fn abort_timeout(&mut self) -> ClientError {
        self.cancel_all();
        ClientError::Timeout
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        // Return any held admission tokens before disappearing, or a dropped
        // handle would shrink the partition budget forever.
        if let Some(admission) = self.admission.clone() {
            for obj in self.busy_objects.drain() {
                admission.release(obj);
            }
            admission.forget(self.client_num);
        }
        self.cluster.router().deregister(self.pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ClusterOptions;
    use crate::repair::RepairLayer;
    use lds_core::backend::BackendKind;
    use lds_core::params::SystemParams;

    fn small_cluster() -> Arc<Cluster> {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        Cluster::launch(params, BackendKind::Mbr, ClusterOptions::default()).unwrap()
    }

    #[test]
    fn write_then_read_over_threads() {
        let cluster = small_cluster();
        let mut writer = cluster.client();
        let mut reader = cluster.client();
        let tag = writer.write(0, b"threaded".to_vec()).unwrap();
        assert_eq!(writer.last_tag(), Some(tag));
        let value = reader.read(0).unwrap();
        assert_eq!(value, b"threaded");
        cluster.shutdown();
    }

    #[test]
    fn sequential_writes_are_ordered_by_tags() {
        let cluster = small_cluster();
        let mut client = cluster.client();
        let t1 = client.write(0, b"one".to_vec()).unwrap();
        let t2 = client.write(0, b"two".to_vec()).unwrap();
        assert!(t2 > t1);
        assert_eq!(client.read(0).unwrap(), b"two");
        cluster.shutdown();
    }

    #[test]
    fn tolerates_allowed_failures() {
        let cluster = small_cluster();
        let mut client = cluster.client();
        cluster.kill_server(RepairLayer::L1, 0);
        cluster.kill_server(RepairLayer::L2, 4);
        client.write(3, b"still alive".to_vec()).unwrap();
        assert_eq!(client.read(3).unwrap(), b"still alive");
        cluster.shutdown();
    }

    #[test]
    fn too_many_failures_time_out() {
        let cluster = small_cluster();
        let mut client = cluster.client();
        client.set_timeout(Duration::from_millis(300));
        // f1 = 1 but we kill 3 of the 4 L1 servers: quorums are unreachable.
        cluster.kill_server(RepairLayer::L1, 0);
        cluster.kill_server(RepairLayer::L1, 1);
        cluster.kill_server(RepairLayer::L1, 2);
        assert_eq!(
            client.write(0, b"doomed".to_vec()),
            Err(ClientError::Timeout)
        );
        assert_eq!(client.pending_ops(), 0, "timeout aborts outstanding ops");
        cluster.shutdown();
    }

    #[test]
    fn concurrent_clients_from_multiple_threads() {
        let cluster = small_cluster();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cluster = Arc::clone(&cluster);
            handles.push(std::thread::spawn(move || {
                let mut client = cluster.client();
                for i in 0..5u64 {
                    let value = format!("writer-{t}-{i}").into_bytes();
                    client.write(0, value).unwrap();
                    let read = client.read(0).unwrap();
                    assert!(!read.is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        cluster.shutdown();
    }

    #[test]
    fn pipelined_ops_across_objects_complete() {
        let cluster = small_cluster();
        let mut client = cluster.client_with_depth(8);
        let mut tickets = Vec::new();
        for obj in 0..8u64 {
            tickets.push(client.submit_write(obj, format!("v{obj}").into_bytes()));
        }
        // More submissions than the depth allows: the rest queue up.
        for obj in 0..8u64 {
            tickets.push(client.submit_read(obj));
        }
        let completions = client.wait_all().unwrap();
        assert_eq!(completions.len(), 16);
        // Ticket order is submission order.
        let got: Vec<OpTicket> = completions.iter().map(|c| c.ticket).collect();
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(got, sorted);
        // Every read (second half) observed its object's write (first half):
        // same-object FIFO means the read dispatched only after the write
        // completed.
        for c in &completions[8..] {
            match &c.outcome {
                OpOutcome::Read { value, .. } => {
                    assert_eq!(value, &format!("v{}", c.obj).into_bytes());
                }
                other => panic!("expected read outcome, got {other:?}"),
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn same_object_submissions_run_fifo() {
        let cluster = small_cluster();
        let mut client = cluster.client_with_depth(8);
        for i in 0..6u64 {
            client.submit_write(0, format!("gen-{i}").into_bytes());
        }
        client.submit_read(0);
        let completions = client.wait_all().unwrap();
        assert_eq!(completions.len(), 7);
        // Writes committed in submission order: tags strictly increase.
        let tags: Vec<Tag> = completions[..6].iter().map(|c| c.outcome.tag()).collect();
        for pair in tags.windows(2) {
            assert!(pair[0] < pair[1], "same-object writes out of order");
        }
        // The trailing read sees the last write.
        match &completions[6].outcome {
            OpOutcome::Read { value, .. } => assert_eq!(value, b"gen-5"),
            other => panic!("expected read outcome, got {other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn poll_is_nonblocking_and_wait_harvests_the_rest() {
        let cluster = small_cluster();
        let mut client = cluster.client_with_depth(4);
        let t0 = client.submit_write(0, b"a".to_vec());
        let t1 = client.submit_write(1, b"b".to_vec());
        // poll() never blocks; harvest whatever is ready.
        let mut harvested: Vec<Completion> = client.poll().unwrap();
        // Waiting on the second ticket retains the first one's completion if
        // it arrives meanwhile.
        let c1 = client.wait(t1).unwrap();
        assert_eq!(c1.ticket, t1);
        harvested.extend(client.wait_all().unwrap());
        let mut seen: Vec<OpTicket> = harvested.iter().map(|c| c.ticket).collect();
        seen.push(c1.ticket);
        seen.sort();
        assert_eq!(seen, vec![t0, t1]);
        // An already-harvested ticket is unknown.
        assert_eq!(client.wait(t0), Err(ClientError::UnknownTicket));
        cluster.shutdown();
    }

    #[test]
    fn pipelined_client_on_sharded_cluster() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::launch(
            params,
            BackendKind::Mbr,
            ClusterOptions {
                l1_shards: 3,
                l2_shards: 2,
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        let mut client = cluster.client_with_depth(16);
        for round in 0..3u64 {
            for obj in 0..16u64 {
                client.submit_write(obj, format!("r{round}-o{obj}").into_bytes());
            }
            let completions = client.wait_all().unwrap();
            assert_eq!(completions.len(), 16);
        }
        for obj in 0..16u64 {
            client.submit_read(obj);
        }
        let reads = client.wait_all().unwrap();
        for c in &reads {
            match &c.outcome {
                OpOutcome::Read { value, .. } => {
                    assert_eq!(value, &format!("r2-o{}", c.obj).into_bytes());
                }
                other => panic!("expected read outcome, got {other:?}"),
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn poll_wait_times_out_without_aborting() {
        let cluster = small_cluster();
        let mut client = cluster.client_with_depth(4);
        // Nothing outstanding: returns immediately, empty.
        assert!(client
            .poll_wait(Duration::from_millis(50))
            .unwrap()
            .is_empty());
        let t = client.submit_write(0, b"x".to_vec());
        // Harvest with short waits only; the op must survive expiries.
        let mut got = Vec::new();
        for _ in 0..200 {
            got.extend(client.poll_wait(Duration::from_millis(10)).unwrap());
            if !got.is_empty() {
                break;
            }
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ticket, t);
        cluster.shutdown();
    }

    #[test]
    fn try_submit_respects_pipeline_and_fifo() {
        let cluster = small_cluster();
        let mut client = cluster.client_with_depth(2);
        let t0 = client.try_submit_write(0, b"a").unwrap();
        // Same object: refused while the first op is in flight.
        assert_eq!(client.try_submit_write(0, b"b"), Err(WouldBlock));
        let _t1 = client.try_submit_write(1, b"c").unwrap();
        // Depth 2 reached: anything else is refused.
        assert_eq!(client.try_submit_read(2), Err(WouldBlock));
        let completions = client.wait_all().unwrap();
        assert_eq!(completions.len(), 2);
        assert_eq!(completions[0].ticket, t0);
        cluster.shutdown();
    }

    #[test]
    fn poll_only_client_recovers_admission_after_budget_frees() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::launch(
            params,
            BackendKind::Replication,
            ClusterOptions {
                inbox_cap: Some(1),
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        let mut holder = cluster.client_with_depth(4);
        let mut poller = cluster.client_with_depth(4);
        // The holder takes the partition's only admission slot and does not
        // harvest, so the slot stays occupied even after the op completes
        // server-side.
        let held = holder.submit_write(0, b"hold the slot".to_vec());
        std::thread::sleep(Duration::from_millis(50));
        // The poller's submission is queued, deferred on admission.
        let queued = poller.submit_write(1, b"queued behind budget".to_vec());
        assert_eq!(poller.in_flight(), 0, "no budget: op must stay queued");
        // Harvesting on the holder releases the budget — without sending the
        // poller any message.
        assert_eq!(holder.wait(held).unwrap().ticket, held);
        // A pure poll() loop (never a blocking wait) must still dispatch and
        // complete the queued op: poll retries admission when it was the
        // blocker.
        let mut done = Vec::new();
        for _ in 0..2000 {
            done.extend(poller.poll().unwrap());
            if !done.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(done.len(), 1, "poll-only client livelocked on admission");
        assert_eq!(done[0].ticket, queued);
        cluster.shutdown();
    }

    #[test]
    fn try_submit_hits_admission_cap_on_bounded_cluster() {
        let params = SystemParams::for_failures(1, 1, 2, 3).unwrap();
        let cluster = Cluster::launch(
            params,
            BackendKind::Replication,
            ClusterOptions {
                inbox_cap: Some(1),
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        // One partition (l1_shards = 1) with budget 1: with an op in flight,
        // a second client's submission on any object is refused.
        let mut a = cluster.client_with_depth(4);
        let mut b = cluster.client_with_depth(4);
        let t = a.try_submit_write(0, b"hold the slot").unwrap();
        let refused = b.try_submit_write(1, b"pushed back");
        // Either the slot is still held (refused) or op 0 already completed;
        // in the common case the refusal is observed.
        if refused == Err(WouldBlock) {
            assert_eq!(cluster.l1_admitted_ops(0), 1);
        }
        a.wait(t).unwrap();
        // After completion the budget frees up and b gets through.
        let mut t2 = b.try_submit_write(1, b"now it fits");
        for _ in 0..1000 {
            if t2.is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
            t2 = b.try_submit_write(1, b"now it fits");
        }
        b.wait(t2.expect("budget freed after completion")).unwrap();
        cluster.shutdown();
    }
}
