//! Declarative fault plans for the [`SimTransport`](super::SimTransport).
//!
//! A [`FaultPlan`] describes a deterministic network adversary: a seed, an
//! ordered list of probabilistic [`FaultRule`]s (drop / duplicate / delay /
//! reorder, optionally restricted to message classes and link endpoints),
//! and a list of scheduled [`PartitionSpec`]s. The plan is pure data — it is
//! validated against the deployment's [`SystemParams`] when
//! [`StoreBuilder::build`](crate::api::StoreBuilder::build) runs, and
//! compiled into a [`SimTransport`](super::SimTransport) per cluster shard.

use lds_core::params::SystemParams;
use std::time::Duration;

/// Every message class a [`FaultRule`] may target: the `kind()` strings of
/// the LDS wire messages plus `"PING"` for the heartbeat monitor's liveness
/// probes. Rule validation rejects class names outside this list, so a typo
/// like `"COMMITTAG"` fails at `build()` instead of silently matching
/// nothing.
pub const MESSAGE_CLASSES: &[&str] = &[
    "INVOKE-WRITE",
    "INVOKE-READ",
    "QUERY-TAG",
    "TAG-RESP",
    "PUT-DATA",
    "PUT-STRIPE",
    "ACK-PUT-DATA",
    "BCAST-SEND",
    "COMMIT-TAG",
    "QUERY-COMM-TAG",
    "COMM-TAG-RESP",
    "QUERY-DATA",
    "DATA-RESP",
    "PUT-TAG",
    "ACK-PUT-TAG",
    "WRITE-CODE-ELEM",
    "WRITE-CODE-STRIPE",
    "ACK-CODE-ELEM",
    "QUERY-CODE-ELEM",
    "SEND-HELPER-ELEM",
    "REPAIR-HELP",
    "REPAIR-SHARE",
    "REPAIR-DONE",
    "PING",
];

/// One endpoint of a cluster link, named in deployment terms rather than raw
/// process ids (which are an internal detail of the runtime's pid layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// The L1 (edge/metadata) server with this index, `0..n1`.
    L1(usize),
    /// The L2 (coded back-end) server with this index, `0..n2`.
    L2(usize),
    /// Every client handle (and any other non-server process, such as the
    /// repair coordinator's auxiliary pids).
    Clients,
}

/// A probabilistic per-link fault rule.
///
/// Rules are evaluated in plan order and the **first rule whose filters
/// match a message decides its fate** — later rules never see it. Each
/// matching message draws one seeded random number; the drop, duplicate,
/// delay and reorder probabilities partition `[0, 1)` in that order, so
/// their sum must not exceed `1.0` (the remainder delivers normally).
///
/// ```rust
/// use lds_cluster::transport::FaultRule;
/// use std::time::Duration;
///
/// // Delay every COMMIT-TAG broadcast by 1–5 ms, letting data overtake
/// // the metadata that commits it.
/// let rule = FaultRule::new()
///     .classes(&["COMMIT-TAG"])
///     .delay_prob(1.0)
///     .delay_window(Duration::from_millis(1), Duration::from_millis(5));
/// # let _ = rule;
/// ```
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Message classes the rule applies to (`kind()` strings, or `"PING"`);
    /// `None` matches every class. See [`MESSAGE_CLASSES`].
    pub classes: Option<Vec<String>>,
    /// Sender endpoints the rule applies to; `None` matches any sender.
    /// Liveness pings originate outside the membership and only ever match
    /// `None` here (target them via [`FaultRule::to`] / the `"PING"` class).
    pub from: Option<Vec<Endpoint>>,
    /// Destination endpoints the rule applies to; `None` matches any.
    pub to: Option<Vec<Endpoint>>,
    /// Probability a matching message is silently dropped.
    pub drop: f64,
    /// Probability a matching message is delivered twice (the duplicate is
    /// injected immediately and may overtake the original).
    pub duplicate: f64,
    /// Probability a matching message is held for a random duration drawn
    /// from [`FaultRule::delay_range`] before delivery.
    pub delay: f64,
    /// Probability a matching message is *reordered*: held like a delay (in
    /// an asynchronous system an unequal delay **is** a reorder — later
    /// messages on the link overtake it) but counted separately, so tests
    /// can assert reordering specifically.
    pub reorder: f64,
    /// `[min, max]` window delays and reorders are drawn from.
    pub delay_range: (Duration, Duration),
}

impl Default for FaultRule {
    fn default() -> Self {
        FaultRule::new()
    }
}

impl FaultRule {
    /// A rule matching every message with all fault probabilities zero.
    pub fn new() -> FaultRule {
        FaultRule {
            classes: None,
            from: None,
            to: None,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            reorder: 0.0,
            delay_range: (Duration::ZERO, Duration::from_millis(1)),
        }
    }

    /// Restricts the rule to these message classes (see [`MESSAGE_CLASSES`]).
    pub fn classes(mut self, classes: &[&str]) -> FaultRule {
        self.classes = Some(classes.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Restricts the rule to messages *sent by* these endpoints.
    pub fn only_from(mut self, endpoints: &[Endpoint]) -> FaultRule {
        self.from = Some(endpoints.to_vec());
        self
    }

    /// Restricts the rule to messages *sent to* these endpoints.
    pub fn only_to(mut self, endpoints: &[Endpoint]) -> FaultRule {
        self.to = Some(endpoints.to_vec());
        self
    }

    /// Sets the drop probability.
    pub fn drop_prob(mut self, p: f64) -> FaultRule {
        self.drop = p;
        self
    }

    /// Sets the duplicate probability.
    pub fn duplicate_prob(mut self, p: f64) -> FaultRule {
        self.duplicate = p;
        self
    }

    /// Sets the delay probability.
    pub fn delay_prob(mut self, p: f64) -> FaultRule {
        self.delay = p;
        self
    }

    /// Sets the reorder probability.
    pub fn reorder_prob(mut self, p: f64) -> FaultRule {
        self.reorder = p;
        self
    }

    /// Sets the `[min, max]` window delays/reorders are drawn from.
    pub fn delay_window(mut self, min: Duration, max: Duration) -> FaultRule {
        self.delay_range = (min, max);
        self
    }

    fn validate(&self, index: usize, params: &SystemParams) -> Result<(), String> {
        for p in [self.drop, self.duplicate, self.delay, self.reorder] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!(
                    "fault rule {index}: probabilities must be in [0, 1], got {p}"
                ));
            }
        }
        let sum = self.drop + self.duplicate + self.delay + self.reorder;
        if sum > 1.0 {
            return Err(format!(
                "fault rule {index}: drop+duplicate+delay+reorder must not exceed 1.0, got {sum}"
            ));
        }
        if self.delay_range.0 > self.delay_range.1 {
            return Err(format!(
                "fault rule {index}: delay window min exceeds max ({:?} > {:?})",
                self.delay_range.0, self.delay_range.1
            ));
        }
        if let Some(classes) = &self.classes {
            if classes.is_empty() {
                return Err(format!(
                    "fault rule {index}: empty class list matches nothing"
                ));
            }
            for class in classes {
                if !MESSAGE_CLASSES.contains(&class.as_str()) {
                    return Err(format!(
                        "fault rule {index}: unknown message class {class:?}"
                    ));
                }
            }
        }
        for (side, endpoints) in [("from", &self.from), ("to", &self.to)] {
            if let Some(endpoints) = endpoints {
                if endpoints.is_empty() {
                    return Err(format!(
                        "fault rule {index}: empty {side} endpoint list matches nothing"
                    ));
                }
                validate_endpoints(endpoints, params)
                    .map_err(|e| format!("fault rule {index} ({side}): {e}"))?;
            }
        }
        Ok(())
    }
}

/// Which direction(s) of traffic crossing a partition boundary are blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionDirection {
    /// Traffic is blocked in both directions (a classic network split).
    #[default]
    Symmetric,
    /// Only traffic *into* the partitioned group is blocked — the group can
    /// still talk out (a one-way link failure).
    Inbound,
    /// Only traffic *out of* the partitioned group is blocked — the group
    /// still hears the rest of the cluster but cannot answer.
    Outbound,
}

/// A scheduled partition isolating a group of endpoints from everything
/// outside it. Traffic *within* the group, and traffic that never crosses
/// the boundary, is unaffected. Pings cross the boundary like any message,
/// so a symmetric or inbound partition makes the group's heartbeats go
/// stale — exactly as a real network split would.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// The isolated endpoints.
    pub group: Vec<Endpoint>,
    /// Which crossing directions are blocked.
    pub direction: PartitionDirection,
    /// When the partition begins, measured from cluster construction.
    pub start: Duration,
    /// When the partition heals; `None` means it never does.
    pub heal: Option<Duration>,
}

impl PartitionSpec {
    /// A symmetric partition isolating `group` from startup, never healing.
    pub fn isolate(group: &[Endpoint]) -> PartitionSpec {
        PartitionSpec {
            group: group.to_vec(),
            direction: PartitionDirection::Symmetric,
            start: Duration::ZERO,
            heal: None,
        }
    }

    /// Sets the blocked crossing direction(s).
    pub fn direction(mut self, direction: PartitionDirection) -> PartitionSpec {
        self.direction = direction;
        self
    }

    /// Schedules the partition to begin `start` after cluster construction.
    pub fn starting_at(mut self, start: Duration) -> PartitionSpec {
        self.start = start;
        self
    }

    /// Schedules the partition to heal `heal` after cluster construction.
    pub fn healing_at(mut self, heal: Duration) -> PartitionSpec {
        self.heal = Some(heal);
        self
    }

    fn validate(&self, index: usize, params: &SystemParams) -> Result<(), String> {
        if self.group.is_empty() {
            return Err(format!("partition {index}: empty group partitions nothing"));
        }
        if let Some(heal) = self.heal {
            if heal < self.start {
                return Err(format!(
                    "partition {index}: heals at {heal:?} before it starts at {:?}",
                    self.start
                ));
            }
        }
        validate_endpoints(&self.group, params).map_err(|e| format!("partition {index}: {e}"))
    }
}

fn validate_endpoints(endpoints: &[Endpoint], params: &SystemParams) -> Result<(), String> {
    for endpoint in endpoints {
        match *endpoint {
            Endpoint::L1(i) if i >= params.n1() => {
                return Err(format!("L1 index {i} out of range (n1 = {})", params.n1()));
            }
            Endpoint::L2(i) if i >= params.n2() => {
                return Err(format!("L2 index {i} out of range (n2 = {})", params.n2()));
            }
            _ => {}
        }
    }
    Ok(())
}

/// A seeded, declarative network adversary (see the [`transport`](crate::transport) module docs).
///
/// ```rust
/// use lds_cluster::transport::{Endpoint, FaultPlan, FaultRule, PartitionSpec};
/// use std::time::Duration;
///
/// let plan = FaultPlan::seeded(0xC4A0_5EED)
///     .rule(
///         FaultRule::new()
///             .classes(&["PUT-STRIPE", "WRITE-CODE-STRIPE"])
///             .duplicate_prob(0.3),
///     )
///     .partition(
///         PartitionSpec::isolate(&[Endpoint::L1(0)])
///             .starting_at(Duration::from_millis(100))
///             .healing_at(Duration::from_millis(400)),
///     );
/// # let _ = plan;
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the deterministic fault stream. The same seed over the same
    /// message sequence replays the same decisions.
    pub seed: u64,
    /// Probabilistic fault rules, first match wins.
    pub rules: Vec<FaultRule>,
    /// Scheduled partitions. Partitions are checked before the rules: a
    /// message blocked by an active partition is dropped without drawing
    /// from the probabilistic stream.
    pub partitions: Vec<PartitionSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults) with this seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Appends a fault rule (rules are evaluated in insertion order).
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Appends a scheduled partition.
    pub fn partition(mut self, spec: PartitionSpec) -> FaultPlan {
        self.partitions.push(spec);
        self
    }

    /// A copy of the plan under a different seed — used by the sharded
    /// topology to give every cluster shard an independent fault stream
    /// derived from the plan's seed.
    pub fn reseeded(&self, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..self.clone()
        }
    }

    /// Validates the plan against the deployment's parameters: probabilities
    /// in range and summing to at most 1 per rule, known message classes,
    /// endpoint indices within `n1`/`n2`, delay windows and partition
    /// schedules ordered.
    pub fn validate(&self, params: &SystemParams) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            rule.validate(i, params)?;
        }
        for (i, spec) in self.partitions.iter().enumerate() {
            spec.validate(i, params)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_core::messages::LdsMessage;
    use lds_core::tag::ObjectId;
    use lds_sim::DataSize;

    fn params() -> SystemParams {
        SystemParams::for_failures(1, 1, 2, 3).unwrap()
    }

    #[test]
    fn class_list_matches_the_wire_kinds() {
        // Spot-check that the validated class names really are the `kind()`
        // strings of the messages tests target most.
        assert_eq!(
            LdsMessage::InvokeRead { obj: ObjectId(0) }.kind(),
            "INVOKE-READ"
        );
        assert!(MESSAGE_CLASSES.contains(&"COMMIT-TAG"));
        assert!(MESSAGE_CLASSES.contains(&"PUT-STRIPE"));
        assert!(MESSAGE_CLASSES.contains(&"WRITE-CODE-STRIPE"));
        assert!(MESSAGE_CLASSES.contains(&"REPAIR-SHARE"));
        assert!(MESSAGE_CLASSES.contains(&"PING"));
    }

    #[test]
    fn valid_plan_passes() {
        let plan = FaultPlan::seeded(7)
            .rule(
                FaultRule::new()
                    .classes(&["COMMIT-TAG"])
                    .delay_prob(0.5)
                    .duplicate_prob(0.25),
            )
            .partition(
                PartitionSpec::isolate(&[Endpoint::L1(0), Endpoint::L2(4)])
                    .starting_at(Duration::from_millis(10))
                    .healing_at(Duration::from_millis(20)),
            );
        assert!(plan.validate(&params()).is_ok());
    }

    #[test]
    fn probability_bounds_are_enforced() {
        let params = params();
        let over = FaultPlan::seeded(1).rule(FaultRule::new().drop_prob(1.5));
        assert!(over.validate(&params).unwrap_err().contains("[0, 1]"));
        let sum = FaultPlan::seeded(1).rule(FaultRule::new().drop_prob(0.6).delay_prob(0.6));
        assert!(sum.validate(&params).unwrap_err().contains("exceed 1.0"));
        let neg = FaultPlan::seeded(1).rule(FaultRule::new().reorder_prob(-0.1));
        assert!(neg.validate(&params).is_err());
    }

    #[test]
    fn unknown_class_and_bad_endpoints_are_rejected() {
        let params = params();
        let typo = FaultPlan::seeded(1).rule(FaultRule::new().classes(&["COMMITTAG"]));
        assert!(typo.validate(&params).unwrap_err().contains("COMMITTAG"));
        let l1 = FaultPlan::seeded(1).rule(FaultRule::new().only_to(&[Endpoint::L1(4)]));
        assert!(l1.validate(&params).unwrap_err().contains("out of range"));
        let l2 = FaultPlan::seeded(1).partition(PartitionSpec::isolate(&[Endpoint::L2(5)]));
        assert!(l2.validate(&params).unwrap_err().contains("out of range"));
        let empty = FaultPlan::seeded(1).partition(PartitionSpec::isolate(&[]));
        assert!(empty.validate(&params).is_err());
    }

    #[test]
    fn schedule_and_window_ordering_is_enforced() {
        let params = params();
        let window = FaultPlan::seeded(1).rule(
            FaultRule::new()
                .delay_prob(0.1)
                .delay_window(Duration::from_millis(5), Duration::from_millis(1)),
        );
        assert!(window.validate(&params).is_err());
        let heal = FaultPlan::seeded(1).partition(
            PartitionSpec::isolate(&[Endpoint::L1(0)])
                .starting_at(Duration::from_millis(10))
                .healing_at(Duration::from_millis(5)),
        );
        assert!(heal
            .validate(&params)
            .unwrap_err()
            .contains("before it starts"));
    }

    #[test]
    fn reseeding_keeps_rules_and_partitions() {
        let plan = FaultPlan::seeded(1)
            .rule(FaultRule::new().drop_prob(0.1))
            .partition(PartitionSpec::isolate(&[Endpoint::L1(0)]));
        let reseeded = plan.reseeded(99);
        assert_eq!(reseeded.seed, 99);
        assert_eq!(reseeded.rules.len(), 1);
        assert_eq!(reseeded.partitions.len(), 1);
    }
}
