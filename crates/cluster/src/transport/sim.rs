//! The seeded fault-injecting transport.
//!
//! [`SimTransport`] compiles a [`FaultPlan`] against the deployment's
//! parameters — endpoints resolved to process ids, probabilities to integer
//! thresholds — and then adjudicates every message the router sends. The
//! random stream is a splitmix64 mix of the plan's seed and a global message
//! counter, so a given seed replays the same decision *sequence*; thread
//! scheduling still decides which concrete message draws which tick, which
//! is exactly the asynchrony the protocol must tolerate anyway.
//!
//! Delayed messages are parked in a deadline-ordered heap drained by one
//! `lds-sim-transport` pump thread, which re-injects them through the
//! router's [`DirectSender`] — re-injection bypasses `decide`, so a delayed
//! message cannot be faulted twice.

use super::plan::{Endpoint, FaultPlan, PartitionDirection, MESSAGE_CLASSES};
use super::{Decision, FaultCounters, Transport};
use crate::obs::{EventKind, TraceHandle};
use crate::router::DirectSender;
use lds_core::messages::LdsMessage;
use lds_core::params::SystemParams;
use lds_sim::{DataSize, ProcessId};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The set of process ids an endpoint list denotes, against the pid layout
/// of one cluster: L1 index `j` is pid `j`, L2 index `i` is pid `n1 + i`,
/// and every pid at or above `n1 + n2` is a client (or auxiliary) process.
#[derive(Debug, Clone)]
struct PidSet {
    servers: Vec<bool>,
    clients: bool,
}

impl PidSet {
    fn resolve(endpoints: &[Endpoint], params: &SystemParams) -> PidSet {
        let mut servers = vec![false; params.n1() + params.n2()];
        let mut clients = false;
        for endpoint in endpoints {
            match *endpoint {
                Endpoint::L1(j) => servers[j] = true,
                Endpoint::L2(i) => servers[params.n1() + i] = true,
                Endpoint::Clients => clients = true,
            }
        }
        PidSet { servers, clients }
    }

    fn contains(&self, pid: ProcessId) -> bool {
        match self.servers.get(pid.0) {
            Some(&s) => s,
            None => self.clients,
        }
    }
}

/// A [`FaultRule`](super::FaultRule) with endpoints resolved and the
/// cumulative probability thresholds scaled to the `u64` draw space.
struct CompiledRule {
    classes: Option<Vec<String>>,
    from: Option<PidSet>,
    to: Option<PidSet>,
    t_drop: u64,
    t_dup: u64,
    t_delay: u64,
    t_reorder: u64,
    delay_min_ns: u64,
    delay_span_ns: u64,
}

impl CompiledRule {
    /// Whether the rule's filters match a message of `kind` on the link
    /// `from → to`. `from == None` is a liveness ping's external sender: it
    /// only matches rules with no sender filter.
    fn matches(&self, from: Option<ProcessId>, to: ProcessId, kind: &str) -> bool {
        if let Some(classes) = &self.classes {
            if !classes.iter().any(|c| c == kind) {
                return false;
            }
        }
        if let Some(set) = &self.from {
            match from {
                Some(pid) if set.contains(pid) => {}
                _ => return false,
            }
        }
        if let Some(set) = &self.to {
            if !set.contains(to) {
                return false;
            }
        }
        true
    }
}

struct CompiledPartition {
    group: PidSet,
    direction: PartitionDirection,
    start: Duration,
    heal: Option<Duration>,
}

impl CompiledPartition {
    fn active(&self, elapsed: Duration) -> bool {
        elapsed >= self.start && self.heal.is_none_or(|h| elapsed < h)
    }

    /// Whether the partition blocks a message crossing its boundary.
    /// `from == None` (a liveness ping's monitor) is always outside the
    /// group, so symmetric and inbound partitions starve the group's beats.
    fn blocks(&self, from: Option<ProcessId>, to: ProcessId) -> bool {
        let in_from = from.is_some_and(|f| self.group.contains(f));
        let in_to = self.group.contains(to);
        if in_from == in_to {
            return false; // both inside or both outside: not a crossing
        }
        match self.direction {
            PartitionDirection::Symmetric => true,
            PartitionDirection::Inbound => in_to,
            PartitionDirection::Outbound => in_from,
        }
    }
}

/// A message (or ping) held back by a delay/reorder decision.
struct Held {
    at: Instant,
    seq: u64,
    payload: Payload,
}

enum Payload {
    Msg {
        from: ProcessId,
        to: ProcessId,
        msg: LdsMessage,
    },
    Ping {
        to: ProcessId,
    },
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Default)]
struct PumpQueue {
    heap: BinaryHeap<Held>,
    next_seq: u64,
    stop: bool,
}

#[derive(Default)]
struct Pump {
    queue: Mutex<PumpQueue>,
    cvar: Condvar,
}

#[derive(Default)]
struct Counters {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
    partitioned: AtomicU64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scales a probability to a threshold in the full `u64` draw space.
fn threshold(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64
}

/// The seeded fault-injecting [`Transport`] (see the [`transport`](crate::transport) module docs).
pub struct SimTransport {
    seed: u64,
    tick: AtomicU64,
    rules: Vec<CompiledRule>,
    partitions: Vec<CompiledPartition>,
    /// Partition schedules are measured from transport construction.
    epoch: Instant,
    counters: Counters,
    pump: std::sync::Arc<Pump>,
    worker: Mutex<Option<JoinHandle<()>>>,
    /// Flight-recorder handle for injected faults, attached by the cluster
    /// when tracing is on. Locked only when a fault actually fires — clean
    /// deliveries never touch it.
    trace: Mutex<Option<TraceHandle>>,
}

impl SimTransport {
    /// Compiles `plan` against the deployment's parameters. The plan should
    /// already have passed [`FaultPlan::validate`]; endpoint indices out of
    /// range panic here.
    pub fn new(plan: &FaultPlan, params: &SystemParams) -> SimTransport {
        let rules = plan
            .rules
            .iter()
            .map(|r| {
                let sum_dup = r.drop + r.duplicate;
                let sum_delay = sum_dup + r.delay;
                let sum_reorder = sum_delay + r.reorder;
                CompiledRule {
                    classes: r.classes.clone(),
                    from: r.from.as_deref().map(|e| PidSet::resolve(e, params)),
                    to: r.to.as_deref().map(|e| PidSet::resolve(e, params)),
                    t_drop: threshold(r.drop),
                    t_dup: threshold(sum_dup),
                    t_delay: threshold(sum_delay),
                    t_reorder: threshold(sum_reorder),
                    delay_min_ns: r.delay_range.0.as_nanos() as u64,
                    delay_span_ns: (r.delay_range.1 - r.delay_range.0).as_nanos() as u64,
                }
            })
            .collect();
        let partitions = plan
            .partitions
            .iter()
            .map(|p| CompiledPartition {
                group: PidSet::resolve(&p.group, params),
                direction: p.direction,
                start: p.start,
                heal: p.heal,
            })
            .collect();
        SimTransport {
            seed: plan.seed,
            tick: AtomicU64::new(0),
            rules,
            partitions,
            epoch: Instant::now(),
            counters: Counters::default(),
            pump: std::sync::Arc::new(Pump::default()),
            worker: Mutex::new(None),
            trace: Mutex::new(None),
        }
    }

    /// Attaches a flight-recorder handle: every injected fault is recorded
    /// as a [`EventKind::TransportFault`] event.
    pub fn attach_trace(&self, handle: TraceHandle) {
        *self.trace.lock().expect("trace slot poisoned") = Some(handle);
    }

    /// Records one injected fault (`decision` per the [`EventKind`] payload
    /// table: 0 drop, 1 duplicate, 2 delay, 3 partition). Cold path — only
    /// reached when a fault fires.
    fn trace_fault(&self, decision: u64, to: ProcessId, kind: &str) {
        let mut slot = self.trace.lock().expect("trace slot poisoned");
        if let Some(trace) = slot.as_mut() {
            let class = MESSAGE_CLASSES
                .iter()
                .position(|c| *c == kind)
                .unwrap_or(MESSAGE_CLASSES.len()) as u64;
            trace.record(EventKind::TransportFault, decision, class, to.0 as u64);
        }
    }

    /// One seeded draw from the fault stream.
    fn draw(&self) -> u64 {
        let t = self.tick.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn sample_delay(&self, rule: &CompiledRule, draw: u64) -> Duration {
        // A second mix of the decision draw keeps the delay deterministic
        // per tick without consuming another tick.
        let r = splitmix64(draw);
        let ns = rule.delay_min_ns + r % (rule.delay_span_ns + 1);
        Duration::from_nanos(ns)
    }

    /// The shared adjudication path: partitions first (no random draw),
    /// then the first matching probabilistic rule.
    fn decide_link(&self, from: Option<ProcessId>, to: ProcessId, kind: &str) -> Decision {
        if !self.partitions.is_empty() {
            let elapsed = self.epoch.elapsed();
            for partition in &self.partitions {
                if partition.active(elapsed) && partition.blocks(from, to) {
                    self.counters.partitioned.fetch_add(1, Ordering::Relaxed);
                    self.trace_fault(3, to, kind);
                    return Decision::Drop;
                }
            }
        }
        for rule in &self.rules {
            if !rule.matches(from, to, kind) {
                continue;
            }
            let r = self.draw();
            return if r < rule.t_drop {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                self.trace_fault(0, to, kind);
                Decision::Drop
            } else if r < rule.t_dup {
                self.counters.duplicated.fetch_add(1, Ordering::Relaxed);
                self.trace_fault(1, to, kind);
                Decision::Duplicate
            } else if r < rule.t_delay {
                self.counters.delayed.fetch_add(1, Ordering::Relaxed);
                self.trace_fault(2, to, kind);
                Decision::Delay(self.sample_delay(rule, r))
            } else if r < rule.t_reorder {
                self.counters.reordered.fetch_add(1, Ordering::Relaxed);
                // A reorder manifests as a (short) delayed redelivery.
                self.trace_fault(2, to, kind);
                Decision::Delay(self.sample_delay(rule, r))
            } else {
                Decision::Deliver
            };
        }
        Decision::Deliver
    }

    fn park(&self, payload: Payload, delay: Duration) {
        let mut queue = self.pump.queue.lock().expect("pump queue poisoned");
        if queue.stop {
            return; // shutting down: discard, like a message to a dead pid
        }
        let seq = queue.next_seq;
        queue.next_seq += 1;
        queue.heap.push(Held {
            at: Instant::now() + delay,
            seq,
            payload,
        });
        self.pump.cvar.notify_one();
    }
}

impl Transport for SimTransport {
    fn is_faulty(&self) -> bool {
        true
    }

    fn decide(&self, from: ProcessId, to: ProcessId, msg: &LdsMessage) -> Decision {
        self.decide_link(Some(from), to, msg.kind())
    }

    fn decide_ping(&self, to: ProcessId) -> Decision {
        self.decide_link(None, to, "PING")
    }

    fn hold(&self, from: ProcessId, to: ProcessId, msg: LdsMessage, delay: Duration) {
        self.park(Payload::Msg { from, to, msg }, delay);
    }

    fn hold_ping(&self, to: ProcessId, delay: Duration) {
        self.park(Payload::Ping { to }, delay);
    }

    fn attach(&self, sender: DirectSender) {
        let pump = std::sync::Arc::clone(&self.pump);
        let handle = std::thread::Builder::new()
            .name("lds-sim-transport".into())
            .spawn(move || {
                let mut queue = pump.queue.lock().expect("pump queue poisoned");
                loop {
                    if queue.stop {
                        break;
                    }
                    let Some(next_at) = queue.heap.peek().map(|h| h.at) else {
                        queue = pump.cvar.wait(queue).expect("pump queue poisoned");
                        continue;
                    };
                    let now = Instant::now();
                    if next_at <= now {
                        let held = queue.heap.pop().expect("peeked entry");
                        drop(queue);
                        match held.payload {
                            Payload::Msg { from, to, msg } => sender.deliver(from, to, msg),
                            Payload::Ping { to } => sender.deliver_ping(to),
                        }
                        queue = pump.queue.lock().expect("pump queue poisoned");
                    } else {
                        queue = pump
                            .cvar
                            .wait_timeout(queue, next_at - now)
                            .expect("pump queue poisoned")
                            .0;
                    }
                }
            })
            .expect("spawn sim-transport pump");
        *self.worker.lock().expect("worker slot poisoned") = Some(handle);
    }

    fn fault_counters(&self) -> FaultCounters {
        FaultCounters {
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            duplicated: self.counters.duplicated.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
            reordered: self.counters.reordered.load(Ordering::Relaxed),
            partitioned: self.counters.partitioned.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        {
            let mut queue = self.pump.queue.lock().expect("pump queue poisoned");
            queue.stop = true;
            queue.heap.clear();
        }
        self.pump.cvar.notify_all();
        if let Some(handle) = self.worker.lock().expect("worker slot poisoned").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SimTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::super::plan::{FaultRule, PartitionSpec};
    use super::*;
    use lds_core::tag::ObjectId;

    fn params() -> SystemParams {
        SystemParams::for_failures(1, 1, 2, 3).unwrap() // n1 = 4, n2 = 5
    }

    fn msg() -> LdsMessage {
        LdsMessage::InvokeRead { obj: ObjectId(0) }
    }

    #[test]
    fn same_seed_replays_the_same_decision_sequence() {
        let plan = FaultPlan::seeded(42).rule(
            FaultRule::new()
                .drop_prob(0.25)
                .duplicate_prob(0.25)
                .delay_prob(0.25),
        );
        let a = SimTransport::new(&plan, &params());
        let b = SimTransport::new(&plan, &params());
        let decisions_a: Vec<_> = (0..256)
            .map(|_| a.decide(ProcessId(0), ProcessId(1), &msg()))
            .collect();
        let decisions_b: Vec<_> = (0..256)
            .map(|_| b.decide(ProcessId(0), ProcessId(1), &msg()))
            .collect();
        assert_eq!(decisions_a, decisions_b);
        assert_eq!(a.fault_counters(), b.fault_counters());
        assert!(
            a.fault_counters().total() > 0,
            "some fault fired in 256 draws"
        );
        let c = SimTransport::new(&plan.reseeded(43), &params());
        let decisions_c: Vec<_> = (0..256)
            .map(|_| c.decide(ProcessId(0), ProcessId(1), &msg()))
            .collect();
        assert_ne!(decisions_a, decisions_c, "different seed, different stream");
    }

    #[test]
    fn first_matching_rule_wins_and_filters_apply() {
        // Rule 0 drops every COMMIT-TAG to L1(0); rule 1 would drop
        // everything, but only messages unmatched by rule 0 reach it.
        let plan = FaultPlan::seeded(7)
            .rule(
                FaultRule::new()
                    .classes(&["INVOKE-READ"])
                    .only_to(&[Endpoint::L1(0)])
                    .drop_prob(1.0),
            )
            .rule(
                FaultRule::new()
                    .classes(&["INVOKE-READ"])
                    .duplicate_prob(1.0),
            );
        let t = SimTransport::new(&plan, &params());
        assert_eq!(t.decide(ProcessId(9), ProcessId(0), &msg()), Decision::Drop);
        assert_eq!(
            t.decide(ProcessId(9), ProcessId(1), &msg()),
            Decision::Duplicate
        );
        // Other classes match neither rule.
        let other = LdsMessage::InvokeWrite {
            obj: ObjectId(0),
            value: lds_core::value::Value::new(vec![1]),
        };
        assert_eq!(
            t.decide(ProcessId(9), ProcessId(0), &other),
            Decision::Deliver
        );
        let c = t.fault_counters();
        assert_eq!((c.dropped, c.duplicated), (1, 1));
    }

    #[test]
    fn client_endpoints_cover_every_nonserver_pid() {
        let plan = FaultPlan::seeded(1).rule(
            FaultRule::new()
                .only_from(&[Endpoint::Clients])
                .drop_prob(1.0),
        );
        let t = SimTransport::new(&plan, &params());
        // n1 + n2 = 9: pid 9 and anything above is a client.
        assert_eq!(t.decide(ProcessId(9), ProcessId(0), &msg()), Decision::Drop);
        assert_eq!(
            t.decide(ProcessId(37), ProcessId(0), &msg()),
            Decision::Drop
        );
        // Server senders are untouched.
        assert_eq!(
            t.decide(ProcessId(3), ProcessId(0), &msg()),
            Decision::Deliver
        );
    }

    #[test]
    fn symmetric_partition_blocks_both_crossings_and_pings() {
        let plan = FaultPlan::seeded(1).partition(PartitionSpec::isolate(&[Endpoint::L1(0)]));
        let t = SimTransport::new(&plan, &params());
        // Into the group, out of the group, and pings (monitor is outside).
        assert_eq!(t.decide(ProcessId(1), ProcessId(0), &msg()), Decision::Drop);
        assert_eq!(t.decide(ProcessId(0), ProcessId(1), &msg()), Decision::Drop);
        assert_eq!(t.decide_ping(ProcessId(0)), Decision::Drop);
        // Traffic not crossing the boundary flows.
        assert_eq!(
            t.decide(ProcessId(1), ProcessId(2), &msg()),
            Decision::Deliver
        );
        assert_eq!(t.decide_ping(ProcessId(1)), Decision::Deliver);
        assert_eq!(t.fault_counters().partitioned, 3);
    }

    #[test]
    fn directed_partitions_block_one_crossing_only() {
        let inbound = FaultPlan::seeded(1).partition(
            PartitionSpec::isolate(&[Endpoint::L2(0)]).direction(PartitionDirection::Inbound),
        );
        let t = SimTransport::new(&inbound, &params());
        // L2(0) is pid 4. Inbound: traffic to it is blocked, from it flows.
        assert_eq!(t.decide(ProcessId(0), ProcessId(4), &msg()), Decision::Drop);
        assert_eq!(
            t.decide(ProcessId(4), ProcessId(0), &msg()),
            Decision::Deliver
        );
        assert_eq!(t.decide_ping(ProcessId(4)), Decision::Drop);

        let outbound = FaultPlan::seeded(1).partition(
            PartitionSpec::isolate(&[Endpoint::L2(0)]).direction(PartitionDirection::Outbound),
        );
        let t = SimTransport::new(&outbound, &params());
        assert_eq!(
            t.decide(ProcessId(0), ProcessId(4), &msg()),
            Decision::Deliver
        );
        assert_eq!(t.decide(ProcessId(4), ProcessId(0), &msg()), Decision::Drop);
        // An outbound-only partition does not starve the group's beats.
        assert_eq!(t.decide_ping(ProcessId(4)), Decision::Deliver);
    }

    #[test]
    fn partition_windows_respect_the_schedule() {
        // Starts far in the future: inactive now.
        let future = FaultPlan::seeded(1).partition(
            PartitionSpec::isolate(&[Endpoint::L1(0)]).starting_at(Duration::from_secs(3600)),
        );
        let t = SimTransport::new(&future, &params());
        assert_eq!(
            t.decide(ProcessId(1), ProcessId(0), &msg()),
            Decision::Deliver
        );
        // Already healed: inactive.
        let healed = FaultPlan::seeded(1)
            .partition(PartitionSpec::isolate(&[Endpoint::L1(0)]).healing_at(Duration::ZERO));
        let t = SimTransport::new(&healed, &params());
        assert_eq!(
            t.decide(ProcessId(1), ProcessId(0), &msg()),
            Decision::Deliver
        );
        assert_eq!(t.fault_counters().partitioned, 0);
    }

    #[test]
    fn delay_durations_stay_inside_the_rule_window() {
        let plan = FaultPlan::seeded(5).rule(
            FaultRule::new()
                .delay_prob(1.0)
                .delay_window(Duration::from_millis(2), Duration::from_millis(9)),
        );
        let t = SimTransport::new(&plan, &params());
        for _ in 0..128 {
            match t.decide(ProcessId(9), ProcessId(0), &msg()) {
                Decision::Delay(d) => {
                    assert!((Duration::from_millis(2)..=Duration::from_millis(9)).contains(&d))
                }
                other => panic!("expected a delay, got {other:?}"),
            }
        }
        assert_eq!(t.fault_counters().delayed, 128);
    }

    #[test]
    fn shutdown_discards_held_messages_and_is_idempotent() {
        let plan = FaultPlan::seeded(1);
        let t = SimTransport::new(&plan, &params());
        t.hold(ProcessId(0), ProcessId(1), msg(), Duration::from_secs(60));
        t.hold_ping(ProcessId(1), Duration::from_secs(60));
        t.shutdown();
        // Post-shutdown holds are discarded rather than queued forever.
        t.hold(ProcessId(0), ProcessId(1), msg(), Duration::from_secs(60));
        t.shutdown();
        assert_eq!(t.pump.queue.lock().unwrap().heap.len(), 0);
    }
}
