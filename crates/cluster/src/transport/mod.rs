//! The transport seam under the router.
//!
//! Every message the cluster runtime sends — protocol traffic through a
//! [`RouterHandle`](crate::router::RouterHandle), one-off sends and liveness
//! pings through the [`Router`](crate::router::Router) — passes a
//! [`Transport`] before it reaches a destination inbox:
//!
//! ```text
//!   Router / RouterHandle
//!            │ decide(from, to, &msg)
//!            ▼
//!        Transport ──► InProcTransport   (default: deliver, zero overhead)
//!                  ──► SimTransport      (seeded fault plan: drop / dup /
//!                  │                      delay / reorder / partition)
//!                  ──► TcpTransport      (real network: per-peer TCP links
//!                                         for a multi-daemon deployment)
//! ```
//!
//! The default [`InProcTransport`] answers [`Decision::Deliver`] for
//! everything and reports [`Transport::is_faulty`]` == false`; the router
//! caches that flag and keeps its steady-state path byte-for-byte what it
//! was before the seam existed — no allocation, no lock, no virtual call
//! per send. A faulty transport (the seeded [`SimTransport`]) is consulted
//! per message and may drop it, duplicate it, or hold it for later
//! re-injection through a [`DirectSender`].
//!
//! Two envelopes are **never** intercepted: `Stop` (crash injection and
//! shutdown must always land) and messages a transport re-injects itself
//! (a held message is not re-decided, so a delay cannot recurse).

mod plan;
mod sim;
mod tcp;

pub use crate::router::DirectSender;
pub use plan::{
    Endpoint, FaultPlan, FaultRule, PartitionDirection, PartitionSpec, MESSAGE_CLASSES,
};
pub use sim::SimTransport;
pub use tcp::{TcpTopology, TcpTransport};

use lds_core::messages::LdsMessage;
use lds_sim::ProcessId;
use std::time::Duration;

/// What a [`Transport`] decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Deliver normally.
    Deliver,
    /// Silently drop the message (a lossy link, or an active partition).
    Drop,
    /// Deliver the message twice. The duplicate is routed immediately and
    /// may overtake the original in a batched flush.
    Duplicate,
    /// Hold the message for this long, then re-inject it via
    /// [`Transport::hold`]. Messages queued behind it on the same link
    /// overtake it — in an asynchronous network a delay *is* a reorder.
    Delay(Duration),
}

/// Counters of faults a transport has injected since construction.
///
/// The default [`InProcTransport`] always reports zeros; a seeded
/// [`SimTransport`] counts every non-[`Deliver`](Decision::Deliver)
/// decision. Surfaced per deployment through
/// [`MetricsSnapshot`](crate::api::MetricsSnapshot).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages dropped by a probabilistic rule.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held and re-injected late by a delay rule.
    pub delayed: u64,
    /// Messages held and re-injected late by a reorder rule.
    pub reordered: u64,
    /// Messages dropped because an active partition blocked their link.
    pub partitioned: u64,
}

impl FaultCounters {
    /// Total faults injected across all categories.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.reordered + self.partitioned
    }
}

/// A message-fate policy under the router (see the [module docs](self)).
///
/// All methods have defaults matching the fault-free in-process transport,
/// so [`InProcTransport`] is an empty impl. Implementations must be cheap
/// and thread-safe: `decide` runs on every sender thread's hot path once
/// the router has seen [`Transport::is_faulty`] return `true`.
pub trait Transport: Send + Sync {
    /// Whether the transport may ever answer something other than
    /// [`Decision::Deliver`]. The router caches this at handle creation:
    /// when `false`, sends skip the per-message `decide` call entirely and
    /// keep the original lock-free path.
    fn is_faulty(&self) -> bool {
        false
    }

    /// Decides the fate of one protocol message about to be routed.
    fn decide(&self, _from: ProcessId, _to: ProcessId, _msg: &LdsMessage) -> Decision {
        Decision::Deliver
    }

    /// Decides the fate of a liveness ping to `to`. Pings carry no payload,
    /// but a partition must block them so the target's heartbeat goes stale
    /// exactly as it would across a real network split.
    fn decide_ping(&self, _to: ProcessId) -> Decision {
        Decision::Deliver
    }

    /// Takes custody of a message the transport decided to
    /// [`Delay`](Decision::Delay); the transport re-injects it through its
    /// [`DirectSender`] once the delay elapses. Only called after `decide`
    /// returned `Delay`, so the default (which drops the message) is never
    /// reached on a transport that never delays.
    fn hold(&self, _from: ProcessId, _to: ProcessId, _msg: LdsMessage, _delay: Duration) {}

    /// [`Transport::hold`] for a liveness ping.
    fn hold_ping(&self, _to: ProcessId, _delay: Duration) {}

    /// Hands the transport a re-injection path into the router. Called once
    /// when the transport is installed; a transport that never delays can
    /// ignore it.
    fn attach(&self, _sender: DirectSender) {}

    /// Counters of every fault injected so far.
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Stops any background machinery (delay pumps). Pending held messages
    /// are discarded. Called from cluster shutdown.
    fn shutdown(&self) {}
}

/// The default transport: the in-process channel fabric, fault-free.
///
/// This is the path every deployment used before the seam existed. It makes
/// no decisions, holds nothing and counts nothing — and because it reports
/// [`Transport::is_faulty`]` == false` the router never even consults it on
/// the per-message path.
#[derive(Debug, Default, Clone, Copy)]
pub struct InProcTransport;

impl Transport for InProcTransport {}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_core::tag::ObjectId;

    #[test]
    fn inproc_transport_is_transparent() {
        let t = InProcTransport;
        assert!(!t.is_faulty());
        let msg = LdsMessage::InvokeRead { obj: ObjectId(0) };
        assert_eq!(
            t.decide(ProcessId(0), ProcessId(1), &msg),
            Decision::Deliver
        );
        assert_eq!(t.decide_ping(ProcessId(1)), Decision::Deliver);
        assert_eq!(t.fault_counters(), FaultCounters::default());
        assert_eq!(t.fault_counters().total(), 0);
        t.shutdown();
    }

    #[test]
    fn counter_totals_sum_every_category() {
        let c = FaultCounters {
            dropped: 1,
            duplicated: 2,
            delayed: 3,
            reordered: 4,
            partitioned: 5,
        };
        assert_eq!(c.total(), 15);
    }
}
