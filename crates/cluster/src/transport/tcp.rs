//! The real-network transport: per-peer TCP links under the router.
//!
//! A [`TcpTransport`] connects one daemon to every other daemon of a static
//! membership. It sits behind the same [`Transport`] seam as the in-process
//! and fault-injection transports:
//!
//! ```text
//!               sender thread (node loop / client)
//!                         │ decide(from, to, &msg)
//!                         ▼
//!    local pid? ──yes──► Decision::Deliver (in-process inbox, unchanged)
//!        │no
//!        ▼
//!    enqueue on the owner daemon's link ──► Decision::Drop (consumed here)
//!                         │
//!                  writer thread (one per peer)
//!                  encode → TcpStream, reconnect with backoff
//!                         │
//!                  ═══════╪══════ network ══════════════
//!                         ▼
//!                  reader thread (one per accepted conn)
//!                  frame → decode → DirectSender::deliver
//!                         │
//!                         ▼
//!                  destination inbox on the remote router
//! ```
//!
//! Ownership of a destination pid is decided by [`TcpTopology::owner_of`]:
//! server pids map through the configured membership, client and auxiliary
//! pids are striped across daemons by their allocation residue (each daemon
//! allocates client numbers `base + k·step` with `base = index + 1`,
//! `step = daemons`), and [`ProcessId::EXTERNAL`] is always local.
//!
//! Failure semantics are honest about what TCP gives us: a link that is down
//! or backed up **drops** messages (counted in
//! [`FaultCounters::dropped`]) rather than blocking the protocol's sender
//! threads — the LDS protocol is designed for lossy asynchronous networks,
//! and the quorum logic, not the transport, provides reliability. Writer
//! threads reconnect with exponential backoff, so a restarted peer daemon
//! re-joins the mesh without any coordination.

use super::{Decision, FaultCounters, Transport};
use crate::router::DirectSender;
use lds_core::messages::LdsMessage;
use lds_core::wire::{self, Frame, WireError, HEADER_LEN};
use lds_sim::ProcessId;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

/// Per-peer outgoing queue bound, in messages. A link that is down or slow
/// beyond this backlog starts dropping (counted); the protocol's quorums
/// tolerate the loss.
const LINK_QUEUE_CAP: usize = 8192;

/// First reconnect delay; doubles up to [`RECONNECT_MAX`].
const RECONNECT_BASE: Duration = Duration::from_millis(50);

/// Ceiling on the reconnect backoff.
const RECONNECT_MAX: Duration = Duration::from_secs(2);

/// How often a blocked writer/acceptor re-checks the stop flag.
const STOP_POLL: Duration = Duration::from_millis(100);

/// The static placement of a deployment's processes onto daemons.
///
/// Shared verbatim by every daemon of a deployment (each knows its own
/// `index`); the pid → daemon rules are documented at the top of this
/// source file.
#[derive(Debug, Clone)]
pub struct TcpTopology {
    /// Number of L1 servers (`pids 0..n1`).
    pub n1: usize,
    /// Number of L2 servers (`pids n1..n1+n2`).
    pub n2: usize,
    /// This daemon's index in `peers`.
    pub index: usize,
    /// Every daemon's mesh listen address, indexed by daemon.
    pub peers: Vec<SocketAddr>,
    /// Owning daemon of each server pid (`len == n1 + n2`).
    pub server_owner: Vec<usize>,
}

impl TcpTopology {
    /// Number of daemons in the mesh.
    pub fn daemons(&self) -> usize {
        self.peers.len()
    }

    /// The daemon that hosts `pid`'s inbox.
    pub fn owner_of(&self, pid: ProcessId) -> usize {
        if pid == ProcessId::EXTERNAL {
            return self.index;
        }
        let servers = self.n1 + self.n2;
        if pid.0 < servers {
            return self.server_owner[pid.0];
        }
        // Clients and auxiliary pids: daemon `d` allocates numbers
        // `d + 1 + k·daemons` above the server range.
        (pid.0 - servers - 1) % self.daemons()
    }

    /// Whether `pid` lives on this daemon.
    pub fn is_local(&self, pid: ProcessId) -> bool {
        self.owner_of(pid) == self.index
    }

    /// The first client number this daemon allocates (see
    /// [`HostScope`](crate::node::HostScope)).
    pub fn client_base(&self) -> u64 {
        self.index as u64 + 1
    }

    /// The stride between client numbers this daemon allocates.
    pub fn client_step(&self) -> u64 {
        self.daemons() as u64
    }
}

/// One outgoing unit on a peer link.
enum Outgoing {
    Msg {
        from: ProcessId,
        to: ProcessId,
        msg: LdsMessage,
    },
    Ping {
        to: ProcessId,
    },
}

/// A peer link's sender side: unbounded channel + explicit depth bound.
struct Link {
    tx: crossbeam::channel::Sender<Outgoing>,
    depth: Arc<AtomicUsize>,
}

/// Counters shared by every link and reader thread.
#[derive(Default)]
struct Counters {
    /// Messages lost: queue overflow, link down mid-write, or undecodable
    /// inbound frames.
    dropped: AtomicU64,
    /// Successful (re)connects across all peer links.
    connects: AtomicU64,
    /// Frames received and delivered into the local router.
    delivered: AtomicU64,
}

/// The TCP transport: real per-peer network links behind the
/// [`Transport`] seam (threading model at the top of this source file).
pub struct TcpTransport {
    topo: TcpTopology,
    links: Vec<Option<Link>>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    /// Accepted inbound streams, tracked so shutdown can unblock their
    /// reader threads.
    inbound: Arc<Mutex<Vec<TcpStream>>>,
    listener: TcpListener,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Binds the mesh listener at `topo.peers[topo.index]` and starts one
    /// writer thread per remote peer. Reader threads start when the router
    /// installs the transport ([`Transport::attach`]).
    ///
    /// Binding eagerly means an unusable listen address is a construction
    /// error the daemon can report, not a background failure.
    pub fn bind(topo: TcpTopology) -> std::io::Result<TcpTransport> {
        assert_eq!(
            topo.server_owner.len(),
            topo.n1 + topo.n2,
            "server_owner must cover every server pid"
        );
        assert!(topo.index < topo.peers.len(), "daemon index out of range");
        let listener = TcpListener::bind(topo.peers[topo.index])?;
        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut links = Vec::with_capacity(topo.peers.len());
        let mut threads = Vec::new();
        for (peer, &addr) in topo.peers.iter().enumerate() {
            if peer == topo.index {
                links.push(None);
                continue;
            }
            let (tx, rx) = crossbeam::channel::unbounded::<Outgoing>();
            let depth = Arc::new(AtomicUsize::new(0));
            let handle = std::thread::Builder::new()
                .name(format!("lds-tcp-writer-{peer}"))
                .spawn({
                    let depth = Arc::clone(&depth);
                    let counters = Arc::clone(&counters);
                    let stop = Arc::clone(&stop);
                    let me = topo.index as u64;
                    move || run_writer(addr, me, rx, depth, counters, stop)
                })
                .expect("spawn tcp writer thread");
            links.push(Some(Link { tx, depth }));
            threads.push(handle);
        }
        Ok(TcpTransport {
            topo,
            links,
            counters,
            stop,
            inbound: Arc::new(Mutex::new(Vec::new())),
            listener,
            threads: Mutex::new(threads),
        })
    }

    /// The placement this transport routes by.
    pub fn topology(&self) -> &TcpTopology {
        &self.topo
    }

    /// The address the mesh listener actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("listener has a local address")
    }

    /// Frames received from peers and delivered into the local router.
    pub fn frames_delivered(&self) -> u64 {
        self.counters.delivered.load(Ordering::Relaxed)
    }

    /// Successful (re)connects across all peer links.
    pub fn connects(&self) -> u64 {
        self.counters.connects.load(Ordering::Relaxed)
    }

    /// Enqueues one unit for the writer thread of daemon `owner`.
    fn enqueue(&self, owner: usize, item: Outgoing) {
        let Some(link) = &self.links[owner] else {
            // Addressed to ourselves — the router delivers locally.
            return;
        };
        if link.depth.load(Ordering::Relaxed) >= LINK_QUEUE_CAP {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        link.depth.fetch_add(1, Ordering::Relaxed);
        if link.tx.send(item).is_err() {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Transport for TcpTransport {
    fn is_faulty(&self) -> bool {
        // Not a fault *injector*, but every message must be adjudicated so
        // remote-bound traffic can be intercepted.
        true
    }

    fn decide(&self, from: ProcessId, to: ProcessId, msg: &LdsMessage) -> Decision {
        if self.topo.is_local(to) {
            return Decision::Deliver;
        }
        self.enqueue(
            self.topo.owner_of(to),
            Outgoing::Msg {
                from,
                to,
                msg: msg.clone(),
            },
        );
        // Consumed by the network path; nothing to route locally.
        Decision::Drop
    }

    fn decide_ping(&self, to: ProcessId) -> Decision {
        if self.topo.is_local(to) {
            return Decision::Deliver;
        }
        self.enqueue(self.topo.owner_of(to), Outgoing::Ping { to });
        Decision::Drop
    }

    fn attach(&self, sender: DirectSender) {
        let listener = self
            .listener
            .try_clone()
            .expect("clone mesh listener for accept thread");
        let sender = Arc::new(sender);
        let counters = Arc::clone(&self.counters);
        let stop = Arc::clone(&self.stop);
        let inbound = Arc::clone(&self.inbound);
        let handle = std::thread::Builder::new()
            .name("lds-tcp-accept".into())
            .spawn(move || run_acceptor(listener, sender, counters, stop, inbound))
            .expect("spawn tcp accept thread");
        self.threads.lock().push(handle);
    }

    fn fault_counters(&self) -> FaultCounters {
        FaultCounters {
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            ..FaultCounters::default()
        }
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.local_addr());
        // Unblock reader threads parked on half-open inbound streams.
        for stream in self.inbound.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("index", &self.topo.index)
            .field("peers", &self.topo.peers)
            .finish_non_exhaustive()
    }
}

/// Writer-thread body: connect (with backoff) → `Hello` → drain the queue,
/// encoding into one reusable buffer. A failed write abandons the current
/// message (counted) and reconnects.
fn run_writer(
    addr: SocketAddr,
    me: u64,
    rx: crossbeam::channel::Receiver<Outgoing>,
    depth: Arc<AtomicUsize>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
) {
    let mut backoff = RECONNECT_BASE;
    let mut buf = Vec::with_capacity(4096);
    'outer: while !stop.load(Ordering::Relaxed) {
        let mut stream = match TcpStream::connect_timeout(&addr, RECONNECT_MAX) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                stream
            }
            Err(_) => {
                // Peer not up (yet): drain nothing, retry with backoff. The
                // queue keeps absorbing traffic up to its cap meanwhile.
                let waited = std::time::Instant::now();
                while waited.elapsed() < backoff {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    std::thread::sleep(STOP_POLL.min(backoff));
                }
                backoff = (backoff * 2).min(RECONNECT_MAX);
                continue;
            }
        };
        buf.clear();
        if wire::encode_frame(&Frame::Hello { daemon: me }, &mut buf).is_err()
            || stream.write_all(&buf).is_err()
        {
            backoff = (backoff * 2).min(RECONNECT_MAX);
            continue;
        }
        counters.connects.fetch_add(1, Ordering::Relaxed);
        backoff = RECONNECT_BASE;
        loop {
            if stop.load(Ordering::Relaxed) {
                break 'outer;
            }
            let item = match rx.recv_timeout(STOP_POLL) {
                Ok(item) => item,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break 'outer,
            };
            depth.fetch_sub(1, Ordering::Relaxed);
            buf.clear();
            let frame = match item {
                Outgoing::Msg { from, to, msg } => Frame::Msg {
                    from: from.0 as u64,
                    to: to.0 as u64,
                    msg,
                },
                Outgoing::Ping { to } => Frame::Ping { to: to.0 as u64 },
            };
            if wire::encode_frame(&frame, &mut buf).is_err() {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if stream.write_all(&buf).is_err() {
                // Link died under us: this message is lost, reconnect.
                counters.dropped.fetch_add(1, Ordering::Relaxed);
                continue 'outer;
            }
        }
    }
}

/// Accept-thread body: every inbound connection gets its own reader thread.
/// Readers are detached (they exit when their stream dies); shutdown
/// unblocks them by closing the tracked streams.
fn run_acceptor(
    listener: TcpListener,
    sender: Arc<DirectSender>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    inbound: Arc<Mutex<Vec<TcpStream>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Ok(tracked) = stream.try_clone() {
            inbound.lock().push(tracked);
        }
        let sender = Arc::clone(&sender);
        let counters = Arc::clone(&counters);
        let stop = Arc::clone(&stop);
        // Reader threads self-terminate on stream close; shutdown closes
        // every tracked stream, so none outlives the transport.
        let _ = std::thread::Builder::new()
            .name("lds-tcp-reader".into())
            .spawn(move || run_reader(stream, sender, counters, stop));
    }
}

/// Reads one frame (header + body) from `stream`, or `None` on EOF/error.
fn read_frame(stream: &mut TcpStream, body: &mut Vec<u8>) -> Option<Result<Frame, WireError>> {
    let mut header = [0u8; HEADER_LEN];
    if stream.read_exact(&mut header).is_err() {
        return None;
    }
    let len = match wire::frame_len(header) {
        Ok(len) => len,
        Err(e) => return Some(Err(e)),
    };
    body.resize(len, 0);
    if stream.read_exact(body).is_err() {
        return None;
    }
    Some(wire::decode_frame(body))
}

/// Reader-thread body: validate the `Hello`, then deliver every decoded
/// frame into the local router. Any decode error poisons the connection
/// (framing is lost), so the stream is dropped and the peer reconnects.
fn run_reader(
    mut stream: TcpStream,
    sender: Arc<DirectSender>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
) {
    let mut body = Vec::with_capacity(4096);
    match read_frame(&mut stream, &mut body) {
        Some(Ok(Frame::Hello { .. })) => {}
        // Shutdown's throwaway self-connection lands here too: no Hello,
        // just EOF.
        _ => return,
    }
    while !stop.load(Ordering::Relaxed) {
        match read_frame(&mut stream, &mut body) {
            Some(Ok(Frame::Msg { from, to, msg })) => {
                counters.delivered.fetch_add(1, Ordering::Relaxed);
                sender.deliver(ProcessId(from as usize), ProcessId(to as usize), msg);
            }
            Some(Ok(Frame::Ping { to })) => {
                counters.delivered.fetch_add(1, Ordering::Relaxed);
                sender.deliver_ping(ProcessId(to as usize));
            }
            Some(Ok(_)) => {
                // RPC frames do not belong on the mesh port.
                counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some(Err(_)) => {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Router;
    use lds_core::tag::ObjectId;

    fn loopback(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    /// Two routers over two TcpTransports on loopback: a message sent to a
    /// pid owned by the other daemon crosses the wire and lands in its
    /// inbox.
    #[test]
    fn message_crosses_the_wire() {
        // Bind both listeners on ephemeral ports first, then build the
        // shared topology from the resolved addresses.
        let probe_a = TcpListener::bind(loopback(0)).unwrap();
        let probe_b = TcpListener::bind(loopback(0)).unwrap();
        let addr_a = probe_a.local_addr().unwrap();
        let addr_b = probe_b.local_addr().unwrap();
        drop((probe_a, probe_b));
        let topo = |index| TcpTopology {
            n1: 1,
            n2: 1,
            index,
            peers: vec![addr_a, addr_b],
            server_owner: vec![0, 1],
        };
        let ta = Arc::new(TcpTransport::bind(topo(0)).unwrap());
        let tb = Arc::new(TcpTransport::bind(topo(1)).unwrap());
        let ra = Router::with_transport(ta.clone() as Arc<dyn Transport>);
        let rb = Router::with_transport(tb.clone() as Arc<dyn Transport>);
        let _inbox_a = ra.register(ProcessId(0));
        let inbox_b = rb.register(ProcessId(1));

        let msg = LdsMessage::InvokeRead { obj: ObjectId(42) };
        let mut handle = ra.handle();
        // The writer link may still be connecting; the queue absorbs the
        // send either way.
        handle.send(ProcessId(0), ProcessId(1), msg.clone());

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut got = None;
        while std::time::Instant::now() < deadline {
            if let Some(envelope) = inbox_b.rx.try_recv() {
                got = Some(envelope);
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let envelope = got.expect("message should cross the wire within 10s");
        match envelope {
            crate::router::Envelope::Protocol { from, msg: m } => {
                assert_eq!(from, ProcessId(0));
                assert_eq!(m, msg);
            }
            other => panic!("unexpected envelope {other:?}"),
        }
        assert!(tb.frames_delivered() >= 1);
        ta.shutdown();
        tb.shutdown();
    }

    #[test]
    fn ownership_rules() {
        let topo = TcpTopology {
            n1: 2,
            n2: 3,
            index: 1,
            peers: vec![loopback(1), loopback(2), loopback(3)],
            server_owner: vec![0, 1, 1, 2, 2],
        };
        assert_eq!(topo.owner_of(ProcessId(0)), 0);
        assert_eq!(topo.owner_of(ProcessId(2)), 1);
        assert_eq!(topo.owner_of(ProcessId(4)), 2);
        // Client pids: daemon d allocates numbers d + 1 + k·3 above the
        // server range (5 servers).
        assert_eq!(topo.owner_of(ProcessId(5 + 1)), 0);
        assert_eq!(topo.owner_of(ProcessId(5 + 2)), 1);
        assert_eq!(topo.owner_of(ProcessId(5 + 3)), 2);
        assert_eq!(topo.owner_of(ProcessId(5 + 4)), 0);
        assert!(topo.is_local(ProcessId::EXTERNAL));
        assert_eq!(topo.client_base(), 2);
        assert_eq!(topo.client_step(), 3);
    }
}
